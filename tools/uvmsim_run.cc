/**
 * @file
 * uvmsim_run -- the command-line front end to the simulator.
 *
 * Runs any workload under any configuration and dumps the results:
 * headline numbers, the full statistics table (or CSV), and optionally
 * the access-pattern analysis.
 *
 * A comma-separated --workload list runs every named workload under
 * the same configuration, concurrently on a RunExecutor pool sized by
 * --jobs, and prints one result block per workload in list order.
 *
 * Examples:
 *   uvmsim_run --workload=hotspot
 *   uvmsim_run --workload=nw --oversubscription=110 \
 *              --prefetcher=TBNp --prefetcher-after=TBNp \
 *              --eviction=TBNe --reserve=10 --stats
 *   uvmsim_run --workload=kmeans --stats-csv --analyze
 *   uvmsim_run --workload=hotspot,nw,srad --oversubscription=110 --jobs=3
 *   uvmsim_run --list
 */

#include <cstdio>
#include <iostream>

#include "api/run_executor.hh"
#include "api/simulator.hh"
#include "sim/options.hh"
#include "sim/stats.hh"
#include "workloads/trace_file.hh"

using namespace uvmsim;

namespace
{

void
usage()
{
    std::printf(
        "uvmsim_run -- GPU UVM simulator (Ganguly et al., ISCA'19 "
        "reproduction)\n\n"
        "options:\n"
        "  --workload=NAME[,NAME..] benchmark(s) to run (--list to "
        "enumerate)\n"
        "  --jobs=N                 concurrent runs for a workload "
        "list (default: hardware concurrency)\n"
        "  --replay=PATH            replay a memory trace file instead "
        "(see src/workloads/trace_file.hh)\n"
        "  --scale=F                problem size multiplier "
        "(default 1.0)\n"
        "  --iterations=N           override iteration count\n"
        "  --workload-seed=N        workload-generation seed "
        "(default 42)\n"
        "  --oversubscription=PCT   working set as %% of device memory "
        "(0 = fits)\n"
        "  --device-mb=N            device memory override in MiB\n"
        "  --prefetcher=P           before capacity: "
        "none|Rp|SLp|TBNp|SGp|ZLp\n"
        "  --prefetcher-after=P     after capacity (default none)\n"
        "  --eviction=E             LRU4K|Re|SLe|TBNe|LRU2MB|MRU4K\n"
        "  --buffer=PCT             free-page buffer %%\n"
        "  --reserve=PCT            LRU reservation %%\n"
        "  --fault-us=N             fault service latency (default 45)\n"
        "  --fault-batch=N          faults per service window\n"
        "  --user-prefetch          prefetch the footprint up front\n"
        "  --sms=N --warps=N        GPU geometry overrides\n"
        "  --seed=N                 policy RNG seed\n"
        "  --audit                  verify cross-subsystem state after "
        "every fault/eviction (slow; see docs)\n"
        "  --trace=SPEC             event tracing: all, or a comma "
        "list of fault,prefetch,migration,eviction,pcie,kernel\n"
        "  --trace-out=PATH         artifact base path (default "
        "uvmsim): writes PATH.trace.json + PATH.epochs.csv\n"
        "  --epoch-ticks=N          time-series epoch length in ticks "
        "(1 tick = 1 ps; default 100us)\n"
        "  --stats / --stats-csv    dump the full statistics table\n"
        "  --analyze                print the access-pattern analysis\n"
        "  --list                   list available workloads\n"
        "  --help                   print this text\n");
}

void
printResult(const SimConfig &cfg, const RunResult &r,
            const Options &opts, const AccessPatternAnalyzer *analyzer)
{
    std::printf("workload        : %s\n", r.workload.c_str());
    std::printf("config          : prefetch %s -> %s, evict %s, "
                "oversub %.0f%%\n",
                toString(cfg.prefetcher_before).c_str(),
                toString(cfg.prefetcher_after).c_str(),
                toString(cfg.eviction).c_str(),
                cfg.oversubscription_percent);
    std::printf("footprint       : %.1f MB (device %.1f MB)\n",
                static_cast<double>(r.footprint_bytes) / (1 << 20),
                static_cast<double>(r.device_memory_bytes) / (1 << 20));
    std::printf("kernel time     : %.3f ms\n", r.kernelTimeMs());
    std::printf("far faults      : %.0f\n", r.farFaults());
    std::printf("pages migrated  : %.0f (evicted %.0f, thrashed %.0f)\n",
                r.pagesMigrated(), r.pagesEvicted(), r.pagesThrashed());
    std::printf("PCI-e read BW   : %.2f GB/s\n",
                r.avgReadBandwidthGBps());

    if (analyzer)
        std::printf("access pattern  : %s\n",
                    analyzer->report().c_str());

    // Full-precision rendering: %g's 6 significant digits would
    // truncate byte/tick counters (e.g. 4456448 -> 4.45645e+06).
    if (opts.getBool("stats-csv")) {
        std::printf("\nstat,value\n");
        for (const auto &[stat, value] : r.stats)
            std::printf("%s,%s\n", stat.c_str(),
                        stats::renderValue(value).c_str());
    } else if (opts.getBool("stats")) {
        std::printf("\n");
        for (const auto &[stat, value] : r.stats)
            std::printf("%-36s %s\n", stat.c_str(),
                        stats::renderValue(value).c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (opts.getBool("list")) {
        std::printf("paper suite :");
        for (const auto &n : allWorkloadNames())
            std::printf(" %s", n.c_str());
        std::printf("\nextensions  :");
        for (const auto &n : extraWorkloadNames())
            std::printf(" %s", n.c_str());
        std::printf("\n");
        return 0;
    }

    SimConfig cfg;
    cfg.oversubscription_percent = opts.getDouble("oversubscription", 0.0);
    cfg.device_memory_bytes = opts.getUint("device-mb", 0) * sizeMiB;
    cfg.prefetcher_before =
        prefetcherFromString(opts.get("prefetcher", "TBNp"));
    cfg.prefetcher_after = prefetcherFromString(
        opts.get("prefetcher-after", opts.get("prefetcher", "TBNp")));
    cfg.eviction = evictionFromString(opts.get("eviction", "TBNe"));
    cfg.free_buffer_percent = opts.getDouble("buffer", 0.0);
    cfg.lru_reserve_percent = opts.getDouble("reserve", 0.0);
    cfg.fault_latency = microseconds(opts.getUint("fault-us", 45));
    cfg.fault_batch_size =
        static_cast<std::uint32_t>(opts.getUint("fault-batch", 1));
    cfg.user_prefetch_footprint = opts.getBool("user-prefetch");
    cfg.seed = opts.getUint("seed", 1);
    cfg.audit = opts.getBool("audit");
    cfg.trace_spec = opts.get("trace", "");
    if (!cfg.trace_spec.empty()) {
        cfg.trace_out = opts.get("trace-out", "uvmsim");
        cfg.epoch_ticks = opts.getUint("epoch-ticks", cfg.epoch_ticks);
    } else if (opts.has("trace-out") || opts.has("epoch-ticks")) {
        fatal("--trace-out/--epoch-ticks need --trace=<spec> "
              "(did you mean --replay=PATH?)");
    }
    if (opts.has("sms"))
        cfg.gpu.num_sms =
            static_cast<std::uint32_t>(opts.getUint("sms", 28));
    if (opts.has("warps"))
        cfg.gpu.max_warps_per_sm =
            static_cast<std::uint32_t>(opts.getUint("warps", 16));

    WorkloadParams params;
    params.size_scale = opts.getDouble("scale", 1.0);
    params.iterations = opts.getUint("iterations", 0);
    params.seed = opts.getUint("workload-seed", 42);

    bool analyze = opts.getBool("analyze");
    auto workload_names = opts.getList("workload", {"hotspot"});
    if (workload_names.empty())
        fatal("--workload lists no names");

    // A workload list: fan the runs out over the executor and print
    // one result block per workload, in list order.
    if (!opts.has("replay") && workload_names.size() > 1) {
        if (analyze)
            fatal("--analyze supports a single workload, got %zu",
                  workload_names.size());
        std::vector<RunJob> jobs;
        for (std::size_t i = 0; i < workload_names.size(); ++i) {
            RunJob job{workload_names[i], cfg, params};
            // Concurrent traced runs each need their own artifacts.
            if (!cfg.trace_out.empty())
                job.config.trace_out = cfg.trace_out + "-" +
                                       workload_names[i] + "-" +
                                       std::to_string(i);
            jobs.push_back(std::move(job));
        }
        RunExecutor executor(
            static_cast<std::size_t>(opts.getUint("jobs", 0)));
        std::vector<RunResult> results = executor.runBatch(jobs);
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i > 0)
                std::printf("\n");
            printResult(cfg, results[i], opts, nullptr);
        }
        return 0;
    }

    std::unique_ptr<Workload> workload;
    if (opts.has("replay")) {
        workload =
            makeTraceWorkloadFromFile(opts.get("replay"), params);
    } else {
        workload = makeWorkload(workload_names.front(), params);
    }

    Simulator sim(cfg);
    AccessPatternAnalyzer analyzer;
    if (analyze)
        attachAnalyzer(sim, analyzer);

    RunResult r = sim.run(*workload);
    printResult(cfg, r, opts, analyze ? &analyzer : nullptr);
    return 0;
}
