/**
 * @file
 * uvmsim_lint -- domain-aware static analysis over the repo's own
 * sources and docs.
 *
 * Generic linters cannot know that every CLI flag a tool consumes must
 * be documented and exercised by a test, that docs/STATS.md must match
 * the StatRegistry exactly, or that a stray randomness or wall-clock
 * read silently breaks run determinism.  This library encodes those
 * repo-specific rules as six checks, each unit-testable against
 * fixture trees (see
 * tests/tools/lint_test.cc) and runnable against the real repo by the
 * uvmsim_lint binary:
 *
 *   flags        -- every option a tool consumes appears in its own
 *                   usage text, in README/EXPERIMENTS/docs, and in at
 *                   least one test; no stale flag references survive.
 *                   Bench harness flags (bench/) need docs only.
 *   stats        -- the names the live StatRegistry registers and the
 *                   docs/STATS.md tables agree exactly, both ways.
 *   trace        -- every trace::Category is parseable by parseSpec,
 *                   named consistently, covered by allCategories, and
 *                   documented.
 *   determinism  -- libc rand/srand, the std random engines and
 *                   device entropy, and wall-clock reads (libc
 *                   time, clock, get-time-of-day, the std::chrono
 *                   clocks) are banned outside
 *                   src/sim/rng.hh; waive a line with
 *                   "lint:allow(determinism)" on it or the line above.
 *   headers      -- headers use "#pragma once" (convertible from
 *                   #ifndef guards with --fix) and never say
 *                   "using namespace" at file scope.
 *   jobkey       -- every field of SimConfig, GpuConfig and
 *                   WorkloadParams is serialized by runJobKey, so a
 *                   newly added field can never silently alias result
 *                   cache/store entries.
 *
 * The binary exits 0 when the tree is clean, 1 when any finding
 * remains, and 2 on usage errors; --json emits machine-readable
 * findings for CI tooling.
 */

#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace uvmsim::lint
{

/** One rule violation, pointing as precisely as the rule allows. */
struct Finding
{
    /** Which check produced this ("flags", "stats", ...). */
    std::string check;

    /** Repo-relative path; empty for repo-level findings. */
    std::string file;

    /** 1-based line number; 0 when the finding is file- or repo-wide. */
    std::size_t line = 0;

    /** Human-readable description of the violation. */
    std::string message;

    /** Mechanical remedy, when one exists (empty otherwise). */
    std::string suggestion;
};

/** What to lint and how. */
struct Config
{
    /** Repo root to analyze. */
    std::string root = ".";

    /** Subset of checks to run; empty runs every check. */
    std::vector<std::string> checks;

    /** Apply mechanical fixes (currently: header guard conversion). */
    bool fix = false;
};

/** Names of every available check, in execution order. */
const std::vector<std::string> &allCheckNames();

/**
 * Flag registry consistency.  Scans tools/ sources for Options
 * accessor calls (opts.get("name"), getUint, getBool, ...), diffs the
 * consumed set against the flags the same file mentions as "--name"
 * (usage text and examples), and requires each consumed flag to appear
 * in README.md, EXPERIMENTS.md or docs/ and in at least one test
 * (tests/, an add_test in any CMakeLists.txt, or a CI workflow).
 * bench/ harness flags are held to the documentation rule only.
 */
std::vector<Finding> checkFlags(const std::string &root);

/**
 * Stats registry vs docs/STATS.md, both directions.  `registered` is
 * the ground-truth stat-name set -- pass enumerateRegisteredStats()
 * for the real simulator, or a synthetic set in tests.  Per-SM names
 * are normalized (sm0.tlb.hits -> smN.tlb.hits) to match the docs
 * convention.
 */
std::vector<Finding> checkStats(const std::string &root,
                                const std::set<std::string> &registered);

/**
 * Trace-category coverage: the trace.hh Category enum, the trace.cc
 * parseSpec table, the allCategories constant and the docs must all
 * agree on the exact category set.
 */
std::vector<Finding> checkTrace(const std::string &root);

/** Determinism bans (see file comment) over src/tools/tests/bench/
 *  examples sources. */
std::vector<Finding> checkDeterminism(const std::string &root);

/**
 * Header hygiene over src/tools/bench headers: #pragma once guards
 * (with `fix` the legacy #ifndef/#define/#endif guards are rewritten
 * in place) and no file-scope "using namespace".
 */
std::vector<Finding> checkHeaders(const std::string &root, bool fix);

/**
 * Result-key completeness: parses the field declarations of
 * SimConfig (src/api/simulator.hh), GpuConfig (src/gpu/gpu_config.hh)
 * and WorkloadParams (src/workloads/workload.hh) and requires every
 * field to be read (".field") inside src/api/run_executor.cc, where
 * runJobKey serializes the job.  A field missing from the key would
 * let two distinct configurations alias the same cache/store entry.
 */
std::vector<Finding> checkJobKey(const std::string &root);

/**
 * Every stat name the real simulator registers, normalized, obtained
 * by building and running a miniature simulation (backprop at 5% scale
 * on one SM) and reading back RunResult::stats.
 */
std::set<std::string> enumerateRegisteredStats();

/** Run the configured checks against config.root. */
std::vector<Finding> runChecks(const Config &config);

/** Render findings as a JSON array (stable field order). */
std::string toJson(const std::vector<Finding> &findings);

/**
 * The uvmsim_lint command-line entry point (argv without argv[0]);
 * returns the process exit status.  Kept in the library so tests can
 * drive the real CLI surface.
 */
int runCli(const std::vector<std::string> &args);

} // namespace uvmsim::lint
