/**
 * @file
 * uvmsim_lint -- domain-aware static analysis over the repo's own
 * sources and docs.
 *
 * Generic linters cannot know that every CLI flag a tool consumes must
 * be documented and exercised by a test, that docs/STATS.md must match
 * the StatRegistry exactly, or that a stray randomness or wall-clock
 * read silently breaks run determinism.  This library encodes those
 * repo-specific rules as nine check families.  The doc-crosscheck
 * families (flags, stats, trace) work on text, where the ground truth
 * itself is text; the semantic families run over a real token /
 * declaration / call-graph model of the C++ sources
 * (cxx_model.{hh,cc}), so a banned name in a comment or string can
 * never false-positive and reachability is computed, not guessed:
 *
 *   flags        -- every option a tool consumes appears in its own
 *                   usage text, in README/EXPERIMENTS/docs, and in at
 *                   least one test; no stale flag references survive.
 *                   Bench harness flags (bench/) need docs only.
 *   stats        -- the names the live StatRegistry registers and the
 *                   docs/STATS.md tables agree exactly, both ways.
 *   trace        -- every trace::Category is parseable by parseSpec,
 *                   named consistently, covered by allCategories, and
 *                   documented.
 *   determinism  -- randomness and wall-clock bans (token-level, only
 *                   src/sim/rng.hh is exempt); iteration over
 *                   unordered containers in functions reachable from
 *                   stats/trace/CSV/oracle emission paths (a
 *                   collect-then-sort snapshot in the same function is
 *                   recognized and allowed); pointer-keyed ordered
 *                   containers; float accumulation inside unordered
 *                   iteration.  Waive with "lint:allow(det)" (the
 *                   legacy "lint:allow(determinism)" tag also works).
 *   headers      -- headers use "#pragma once" (convertible from
 *                   #ifndef guards with --fix) and never say
 *                   "using namespace" at file scope.
 *   jobkey       -- every field of SimConfig, GpuConfig and
 *                   WorkloadParams is serialized by runJobKey, so a
 *                   newly added field can never silently alias result
 *                   cache/store entries.
 *   forksafety   -- every fork() site flushes stdio first, constructs
 *                   no thread-owning object before forking, restricts
 *                   the child branch to repo-defined functions plus an
 *                   async-signal-safe-ish allowlist, and terminates
 *                   the child through _Exit/_exit -- including
 *                   transitively: a function reachable from the child
 *                   branch may only call exit() if it is fork-aware
 *                   (carries its own guarded _Exit path, like
 *                   uvmsim::fatal).  Waive with
 *                   "lint:allow(forksafety)".
 *   lifetime     -- scheduleCall/emplacePod context arguments must not
 *                   point at stack locals, by-reference lambda
 *                   captures must not escape into the pooled event
 *                   arena through schedule(), and an EventId must not
 *                   be reused after deschedule() except to reassign or
 *                   compare it.  Waive with "lint:allow(lifetime)".
 *   layering     -- the include graph must satisfy the layer diagram
 *                   declared in DESIGN.md's ```lint-layers block
 *                   (sim at the bottom; tools/tests/testing may reach
 *                   anywhere).  Waive with "lint:allow(layering)".
 *
 * The binary exits 0 when the tree is clean, 1 when any finding
 * remains, and 2 on usage errors; --json emits machine-readable
 * findings for CI tooling.  --fix applies the mechanical rewrites
 * (header guards; sorted-key snapshots for waivable unordered
 * iteration; TODO-annotated waiver stanzas for provably
 * order-independent aggregation loops).
 */

#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "cxx_model.hh"

namespace uvmsim::lint
{

/** One rule violation, pointing as precisely as the rule allows. */
struct Finding
{
    /** Which check produced this ("flags", "stats", ...). */
    std::string check;

    /** Repo-relative path; empty for repo-level findings. */
    std::string file;

    /** 1-based line number; 0 when the finding is file- or repo-wide. */
    std::size_t line = 0;

    /** Human-readable description of the violation. */
    std::string message;

    /** Mechanical remedy, when one exists (empty otherwise). */
    std::string suggestion;
};

/** What to lint and how. */
struct Config
{
    /** Repo root to analyze. */
    std::string root = ".";

    /** Subset of checks to run; empty runs every check. */
    std::vector<std::string> checks;

    /** Apply mechanical fixes (header guards, sorted-key snapshots,
     *  proven-benign waiver stanzas). */
    bool fix = false;
};

/** Names of every available check, in execution order. */
const std::vector<std::string> &allCheckNames();

/**
 * Build the semantic model the determinism/forksafety/lifetime/
 * layering families analyze: every C++ source under src/, tools/,
 * bench/, examples/ and tests/, lexed and scanned for declarations,
 * function bodies and the call graph.  Include directories follow the
 * build's compile_commands.json when one exists.
 */
cxx::Model buildRepoModel(const std::string &root);

/**
 * Flag registry consistency.  Scans tools/ sources for Options
 * accessor calls (opts.get("name"), getUint, getBool, ...), diffs the
 * consumed set against the flags the same file mentions as "--name"
 * (usage text and examples), and requires each consumed flag to appear
 * in README.md, EXPERIMENTS.md or docs/ and in at least one test
 * (tests/, an add_test in any CMakeLists.txt, or a CI workflow).
 * bench/ harness flags are held to the documentation rule only.
 */
std::vector<Finding> checkFlags(const std::string &root);

/**
 * Stats registry vs docs/STATS.md, both directions.  `registered` is
 * the ground-truth stat-name set -- pass enumerateRegisteredStats()
 * for the real simulator, or a synthetic set in tests.  Per-SM names
 * are normalized (sm0.tlb.hits -> smN.tlb.hits) to match the docs
 * convention.
 */
std::vector<Finding> checkStats(const std::string &root,
                                const std::set<std::string> &registered);

/**
 * Trace-category coverage: the trace.hh Category enum, the trace.cc
 * parseSpec table, the allCategories constant and the docs must all
 * agree on the exact category set.
 */
std::vector<Finding> checkTrace(const std::string &root);

/**
 * The determinism family (see file comment): token-level randomness
 * and clock bans, emission-reachable unordered iteration,
 * pointer-keyed ordered containers, float accumulation in unordered
 * loops.  With `fix`, waivable unordered iteration sites in the
 * canonical structured-binding form are rewritten to sorted-key
 * snapshots, and provably order-independent aggregation loops get a
 * TODO-annotated waiver stanza.
 */
std::vector<Finding> checkDeterminism(const std::string &root,
                                      const cxx::Model &model, bool fix);

/** The fork-safety family (see file comment). */
std::vector<Finding> checkForkSafety(const cxx::Model &model);

/** The event/arena callback lifetime family (see file comment). */
std::vector<Finding> checkLifetime(const cxx::Model &model);

/** The include-graph layering family, checked against the
 *  ```lint-layers block in DESIGN.md. */
std::vector<Finding> checkLayering(const std::string &root,
                                   const cxx::Model &model);

/**
 * Header hygiene over src/tools/bench headers: #pragma once guards
 * (with `fix` the legacy #ifndef/#define/#endif guards are rewritten
 * in place) and no file-scope "using namespace".
 */
std::vector<Finding> checkHeaders(const std::string &root, bool fix);

/**
 * Result-key completeness: parses the field declarations of
 * SimConfig (src/api/simulator.hh), GpuConfig (src/gpu/gpu_config.hh)
 * and WorkloadParams (src/workloads/workload.hh) and requires every
 * field to be read (".field") inside src/api/run_executor.cc, where
 * runJobKey serializes the job.  A field missing from the key would
 * let two distinct configurations alias the same cache/store entry.
 */
std::vector<Finding> checkJobKey(const std::string &root);

/**
 * Every stat name the real simulator registers, normalized, obtained
 * by building and running a miniature simulation (backprop at 5% scale
 * on one SM) and reading back RunResult::stats.
 */
std::set<std::string> enumerateRegisteredStats();

/** Run the configured checks against config.root. */
std::vector<Finding> runChecks(const Config &config);

/** Render findings as a JSON array (stable field order). */
std::string toJson(const std::vector<Finding> &findings);

/**
 * The uvmsim_lint command-line entry point (argv without argv[0]);
 * returns the process exit status.  Kept in the library so tests can
 * drive the real CLI surface.
 */
int runCli(const std::vector<std::string> &args);

} // namespace uvmsim::lint
