/**
 * @file
 * uvmsim_lint -- the repo's domain-aware static checker (see lint.hh
 * for the rules).  Runs clean on a healthy tree; every finding is a
 * drift between code, docs and tests that a generic linter cannot see.
 *
 * Examples:
 *   uvmsim_lint                          # lint the source tree
 *   uvmsim_lint --root=/path/to/repo
 *   uvmsim_lint --checks=headers --fix   # convert legacy guards
 *   uvmsim_lint --json                   # machine-readable findings
 *   uvmsim_lint --list-checks
 */

#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return uvmsim::lint::runCli(args);
}
