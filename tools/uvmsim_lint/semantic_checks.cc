/**
 * @file
 * The semantic check families (determinism, fork-safety, callback
 * lifetime, layering), running over the cxx_model token / declaration
 * / call-graph model instead of line regexes.  Working on tokens means
 * a banned name inside a comment or a usage string can never
 * false-positive, and "reachable from an emission path" is a computed
 * property of the call graph, not a guess.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace fs = std::filesystem;

namespace uvmsim::lint
{

using cxx::ContainerDecl;
using cxx::FunctionDef;
using cxx::Model;
using cxx::SourceFile;
using cxx::TokKind;
using cxx::Token;

namespace
{

// ---------------------------------------------------------- token helpers

/** Index one past the token matching `open` (an "(" / "[" / "{"). */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open)
{
    const std::string &o = toks[open].text;
    const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
    std::size_t depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == o)
            ++depth;
        else if (toks[i].text == c && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

/** All-caps identifiers are macro invocations (EXPECT_EQ, O_CREAT). */
bool
looksLikeMacro(const std::string &name)
{
    bool has_alpha = false;
    for (char c : name) {
        if (std::islower(static_cast<unsigned char>(c)))
            return false;
        if (std::isupper(static_cast<unsigned char>(c)))
            has_alpha = true;
    }
    return has_alpha;
}

std::string
lowercased(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

std::string
slurpText(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::vector<std::string>
toLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size())
                lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool
writeLines(const fs::path &path, const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    for (const std::string &line : lines)
        out << line << '\n';
    return true;
}

// ----------------------------------------------------- determinism family

bool
detWaived(const SourceFile &sf, std::size_t line)
{
    return sf.waived("det", line) || sf.waived("determinism", line);
}

/** One range-based for statement. */
struct RangeFor
{
    std::size_t for_tok = 0;
    std::size_t body_begin = 0; //!< first token of the body
    std::size_t body_end = 0;   //!< one past the body
    std::string range_var;      //!< last identifier of the range expr
    std::size_t line = 0;
    bool braced = false;
};

std::vector<RangeFor>
rangeFors(const SourceFile &sf)
{
    const std::vector<Token> &toks = sf.toks;
    std::vector<RangeFor> out;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "for") || toks[i + 1].text != "(")
            continue;
        const std::size_t close = matchForward(toks, i + 1) - 1;
        if (close >= toks.size())
            continue;
        // The range ':' at paren depth 1 (the lexer keeps "::" whole,
        // so a bare ":" is unambiguous).
        std::size_t colon = 0;
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            const std::string &t = toks[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (t == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        RangeFor rf;
        rf.for_tok = i;
        rf.line = toks[i].line;
        for (std::size_t j = colon + 1; j < close; ++j)
            if (toks[j].kind == TokKind::Identifier)
                rf.range_var = toks[j].text;
        if (close + 1 >= toks.size())
            continue;
        if (toks[close + 1].text == "{") {
            rf.braced = true;
            rf.body_begin = close + 2;
            rf.body_end = matchForward(toks, close + 1) - 1;
        } else {
            rf.body_begin = close + 1;
            rf.body_end = rf.body_begin;
            while (rf.body_end < toks.size() &&
                   toks[rf.body_end].text != ";")
                ++rf.body_end;
        }
        out.push_back(rf);
    }
    return out;
}

/**
 * Functions on emission paths: stats/trace/CSV/JSON/oracle output and
 * the audit/differential compare machinery, located by name or by
 * home file.  Everything they reach (transitively) inherits the
 * ordering obligation.
 */
std::set<std::size_t>
emissionReachable(const Model &model)
{
    static const char *const name_needles[] = {
        "dump", "emit",   "render", "publish",
        "csv",  "tojson", "report", "export"};
    static const char *const file_needles[] = {
        "auditor", "oracle", "stats", "trace", "timeline",
        "differential"};
    std::set<std::size_t> roots;
    for (std::size_t i = 0; i < model.functions.size(); ++i) {
        const FunctionDef &fn = model.functions[i];
        const std::string name = lowercased(fn.name);
        const std::string file = lowercased(model.files[fn.file].rel);
        for (const char *needle : name_needles)
            if (name.find(needle) != std::string::npos)
                roots.insert(i);
        for (const char *needle : file_needles)
            if (file.find(needle) != std::string::npos)
                roots.insert(i);
    }
    return model.reachableFrom(roots);
}

/** True when the function sorts something after this loop -- the
 *  collect-then-sort snapshot idiom (e.g. FarFaultMshr's sorted
 *  pendingPageList), which restores a deterministic order. */
bool
sortedAfterLoop(const SourceFile &sf, const FunctionDef &fn,
                const RangeFor &rf)
{
    for (std::size_t i = rf.body_end; i + 1 < fn.body_end; ++i)
        if (isIdent(sf.toks[i], "sort") && sf.toks[i + 1].text == "(")
            return true;
    return false;
}

/** Loop bodies that only bump integer counters are order-independent:
 *  no calls, and only ++/--/integer += mutations. */
bool
orderIndependentAggregation(const SourceFile &sf, const RangeFor &rf)
{
    bool mutates = false;
    for (std::size_t i = rf.body_begin; i < rf.body_end; ++i) {
        const Token &t = sf.toks[i];
        if (t.kind == TokKind::Identifier && i + 1 < rf.body_end &&
            sf.toks[i + 1].text == "(")
            return false; // calls may observe order
        if (t.text == "++" || t.text == "--") {
            mutates = true;
        } else if (t.text == "+=") {
            if (i + 1 >= rf.body_end ||
                sf.toks[i + 1].kind != TokKind::Number)
                return false;
            mutates = true;
        } else if (t.text == "=" || t.text == "-=" || t.text == "<<") {
            return false;
        }
    }
    return mutates;
}

/** A banned-token finding, or nothing. */
struct Ban
{
    std::size_t line = 0;
    const char *what = nullptr;
};

std::vector<Ban>
bannedTokens(const SourceFile &sf)
{
    const std::vector<Token> &toks = sf.toks;
    std::vector<Ban> out;
    static const std::set<std::string> engines = {
        "mt19937",      "mt19937_64",   "minstd_rand",
        "minstd_rand0", "ranlux24",     "ranlux48",
        "default_random_engine"};
    static const std::set<std::string> clock_calls = {
        "gettimeofday", "clock_gettime", "timespec_get"};
    static const std::set<std::string> chrono_clocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier)
            continue;
        const bool calls =
            i + 1 < toks.size() && toks[i + 1].text == "(";
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        if ((t.text == "rand" || t.text == "srand") && calls &&
            prev != "." && prev != "->") {
            out.push_back({t.line,
                           "libc rand/srand breaks run determinism; "
                           "draw from uvmsim::Rng"});
        } else if (t.text == "random_device") {
            out.push_back({t.line,
                           "device entropy is nondeterministic; seed "
                           "an uvmsim::Rng instead"});
        } else if (engines.count(t.text)) {
            out.push_back({t.line,
                           "std library engines bypass the seeded "
                           "uvmsim::Rng"});
        } else if (t.text == "time" && calls && prev != "." &&
                   prev != "->" && prev != "::" &&
                   (i + 2 < toks.size() &&
                    (toks[i + 2].text == ")" ||
                     toks[i + 2].text == "NULL" ||
                     toks[i + 2].text == "nullptr" ||
                     toks[i + 2].text == "0"))) {
            out.push_back({t.line,
                           "wall-clock time reads break run "
                           "determinism"});
        } else if (clock_calls.count(t.text) && calls) {
            out.push_back({t.line,
                           "wall-clock reads break run determinism"});
        } else if (t.text == "clock" && calls &&
                   i + 2 < toks.size() && toks[i + 2].text == ")" &&
                   prev != "." && prev != "->" && prev != "::") {
            out.push_back({t.line,
                           "libc clock reads host time; use "
                           "simulation Ticks"});
        } else if (chrono_clocks.count(t.text)) {
            out.push_back({t.line,
                           "std::chrono clock reads break run "
                           "determinism; use simulation Ticks (bench "
                           "wall-timing lives in "
                           "scripts/bench_timing.sh)"});
        } else if (t.text == "now" && calls && prev == "::") {
            out.push_back({t.line,
                           "clock now() reads wall time and breaks "
                           "run determinism"});
        }
    }
    return out;
}

// --fix machinery: collected per file, applied bottom-up so line
// numbers stay valid.

struct LineFix
{
    std::size_t line = 0; //!< 1-based
    enum Kind
    {
        SnapshotRewrite,
        WaiverStanza
    } kind = WaiverStanza;
    std::string key_type;
    std::string container;
};

bool
applyFixes(const fs::path &path, std::vector<LineFix> fixes)
{
    std::vector<std::string> lines = toLines(slurpText(path));
    if (lines.empty())
        return false;
    std::sort(fixes.begin(), fixes.end(),
              [](const LineFix &a, const LineFix &b) {
                  return a.line > b.line;
              });
    static const std::regex binding_for(
        R"re(^(\s*)for\s*\(\s*const\s+auto\s*&\s*\[\s*([A-Za-z_]\w*)\s*,\s*([A-Za-z_]\w*)\s*\]\s*:\s*([A-Za-z_]\w*)\s*\)\s*\{\s*$)re");
    bool changed = false;
    for (const LineFix &fix : fixes) {
        if (fix.line == 0 || fix.line > lines.size())
            continue;
        std::string &text = lines[fix.line - 1];
        if (fix.kind == LineFix::WaiverStanza) {
            const std::string indent =
                text.substr(0, text.find_first_not_of(" \t"));
            lines.insert(
                lines.begin() +
                    static_cast<std::ptrdiff_t>(fix.line - 1),
                indent +
                    "// lint:allow(det) TODO(lint --fix): "
                    "order-independent aggregation over an unordered "
                    "container; keep, or sort the walk");
            changed = true;
            continue;
        }
        std::smatch m;
        if (!std::regex_match(text, m, binding_for))
            continue;
        const std::string indent = m[1].str();
        const std::string key = m[2].str();
        const std::string val = m[3].str();
        const std::string cont = m[4].str();
        const std::string keys = cont + "_sorted_keys";
        std::vector<std::string> repl = {
            indent + "// lint:fix(det): sorted key snapshot for a "
                     "stable iteration order",
            indent + "std::vector<" + fix.key_type + "> " + keys + ";",
            indent + keys + ".reserve(" + cont + ".size());",
            indent + "for (const auto &" + cont + "_kv : " + cont +
                ") // lint:allow(det): keys sorted below",
            indent + "    " + keys + ".push_back(" + cont +
                "_kv.first);",
            indent + "std::sort(" + keys + ".begin(), " + keys +
                ".end());",
            indent + "for (const auto &" + key + " : " + keys + ") {",
            indent + "    const auto &" + val + " = " + cont + ".at(" +
                key + ");",
        };
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(fix.line - 1));
        lines.insert(lines.begin() +
                         static_cast<std::ptrdiff_t>(fix.line - 1),
                     repl.begin(), repl.end());
        changed = true;
    }
    return changed && writeLines(path, lines);
}

} // namespace

std::vector<Finding>
checkDeterminism(const std::string &root, const Model &model, bool fix)
{
    std::vector<Finding> findings;
    const std::set<std::size_t> reachable = emissionReachable(model);
    std::map<std::size_t, std::vector<LineFix>> fixes_by_file;

    for (std::size_t fi = 0; fi < model.files.size(); ++fi) {
        const SourceFile &sf = model.files[fi];
        if (sf.rel == "src/sim/rng.hh")
            continue; // the sanctioned home of randomness

        // 1. Token-level randomness / wall-clock bans.
        for (const Ban &ban : bannedTokens(sf)) {
            if (detWaived(sf, ban.line))
                continue;
            findings.push_back({"determinism", sf.rel, ban.line,
                                ban.what,
                                "use uvmsim::Rng / simulation Ticks, "
                                "or waive with lint:allow(det)"});
        }

        // 2. Unordered-container iteration in emission-reachable code.
        for (const RangeFor &rf : rangeFors(sf)) {
            if (rf.range_var.empty())
                continue;
            const ContainerDecl *decl =
                model.containerFor(fi, rf.range_var);
            if (!decl || !decl->unordered())
                continue;
            const FunctionDef *fn =
                model.enclosingFunction(fi, rf.for_tok);
            if (!fn)
                continue;
            bool on_emission_path = false;
            for (std::size_t idx = 0; idx < model.functions.size();
                 ++idx) {
                if (&model.functions[idx] == fn &&
                    reachable.count(idx)) {
                    on_emission_path = true;
                    break;
                }
            }
            if (!on_emission_path)
                continue;
            if (sortedAfterLoop(sf, *fn, rf))
                continue; // collect-then-sort snapshot idiom
            if (detWaived(sf, rf.line))
                continue;
            if (fix) {
                // Mutating the container inside the body defeats the
                // snapshot rewrite; require the body to not mention it.
                bool body_uses_container = false;
                for (std::size_t i = rf.body_begin; i < rf.body_end;
                     ++i)
                    if (isIdent(sf.toks[i], rf.range_var.c_str()))
                        body_uses_container = true;
                if (!body_uses_container && rf.braced) {
                    fixes_by_file[fi].push_back(
                        {rf.line, LineFix::SnapshotRewrite,
                         decl->key_type, decl->var});
                    continue;
                }
                if (orderIndependentAggregation(sf, rf)) {
                    fixes_by_file[fi].push_back(
                        {rf.line, LineFix::WaiverStanza, "", ""});
                    continue;
                }
            }
            findings.push_back(
                {"determinism", sf.rel, rf.line,
                 "iteration over unordered container '" + decl->var +
                     "' in function '" + fn->name +
                     "', which is reachable from a stats/trace/CSV/"
                     "oracle emission path",
                 "iterate a sorted snapshot (run --fix for the "
                 "mechanical rewrite) or waive with lint:allow(det)"});
        }

        // 4. Float accumulation across unordered iteration (order
        //    changes the rounding, so the emitted value).
        for (const RangeFor &rf : rangeFors(sf)) {
            if (rf.range_var.empty())
                continue;
            const ContainerDecl *decl =
                model.containerFor(fi, rf.range_var);
            if (!decl || !decl->unordered())
                continue;
            for (std::size_t i = rf.body_begin; i < rf.body_end; ++i) {
                if (sf.toks[i].text != "+=" || i == 0)
                    continue;
                const Token &target = sf.toks[i - 1];
                if (target.kind != TokKind::Identifier)
                    continue;
                // Is the accumulator declared floating-point?
                bool is_float = false;
                for (std::size_t j = 0; j + 1 < sf.toks.size(); ++j)
                    if ((isIdent(sf.toks[j], "double") ||
                         isIdent(sf.toks[j], "float")) &&
                        sf.toks[j + 1].text == target.text)
                        is_float = true;
                if (!is_float || detWaived(sf, sf.toks[i].line))
                    continue;
                findings.push_back(
                    {"determinism", sf.rel, sf.toks[i].line,
                     "floating-point accumulation into '" +
                         target.text +
                         "' across unordered iteration: the "
                         "summation order, and so the rounding, "
                         "depends on the hash layout",
                     "accumulate over a sorted snapshot or waive "
                     "with lint:allow(det)"});
            }
        }
    }

    // 3. Pointer-keyed ordered containers order by address.
    for (const ContainerDecl &decl : model.containers) {
        if (decl.unordered() ||
            decl.key_type.find('*') == std::string::npos)
            continue;
        const SourceFile &sf = model.files[decl.file];
        if (sf.rel == "src/sim/rng.hh" || detWaived(sf, decl.line))
            continue;
        findings.push_back(
            {"determinism", sf.rel, decl.line,
             "'" + decl.var + "' is a " + decl.container +
                 " keyed by a pointer (" + decl.key_type +
                 "): its order is the allocation order of the "
                 "heap, different every run",
             "key by a stable id or waive with lint:allow(det)"});
    }

    for (const auto &[fi, fixes] : fixes_by_file)
        applyFixes(fs::path(root) / model.files[fi].rel, fixes);
    return findings;
}

// ----------------------------------------------------- forksafety family

namespace
{

/** Calls considered async-signal-safe-ish for a forked child. */
const std::set<std::string> &
forkChildAllowlist()
{
    static const std::set<std::string> allow = {
        "_Exit",  "_exit", "getpid", "getppid", "raise",  "kill",
        "signal", "alarm", "read",   "write",   "close",  "dup",
        "dup2",   "open",  "fflush", "setsid",  "chdir",  "umask",
        "execv",  "execvp", "execve", "execl",  "abort"};
    return allow;
}

/** True for a process-fork call site (not Rng::fork or a method). */
bool
isProcessFork(const std::vector<Token> &toks, std::size_t i)
{
    if (!isIdent(toks[i], "fork") || i + 1 >= toks.size() ||
        toks[i + 1].text != "(")
        return false;
    if (i == 0)
        return true;
    const std::string &prev = toks[i - 1].text;
    if (prev == "::") {
        // `::fork()` is the process fork; `Rng::fork()` (definition or
        // qualified call) is the repo's RNG-splitting method.
        return i < 2 || toks[i - 2].kind != TokKind::Identifier;
    }
    return prev == "=" || prev == ";" || prev == "{" || prev == "(" ||
           prev == "," || prev == "return";
}

/** Does this function's body contain an _Exit/_exit call? */
bool
forkAware(const SourceFile &sf, const FunctionDef &fn)
{
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i)
        if (isIdent(sf.toks[i], "_Exit") || isIdent(sf.toks[i], "_exit"))
            return true;
    return false;
}

} // namespace

std::vector<Finding>
checkForkSafety(const Model &model)
{
    std::vector<Finding> findings;
    static const std::set<std::string> thread_types = {
        "thread", "jthread", "RunExecutor", "async"};

    for (std::size_t fi = 0; fi < model.files.size(); ++fi) {
        const SourceFile &sf = model.files[fi];
        const std::vector<Token> &toks = sf.toks;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!isProcessFork(toks, i))
                continue;
            const std::size_t fork_line = toks[i].line;
            const FunctionDef *fn = model.enclosingFunction(fi, i);
            if (!fn || sf.waived("forksafety", fork_line))
                continue;

            // (a) Flush stdio before forking, or any buffered bytes
            // are duplicated into the child.
            bool flushed = false;
            for (std::size_t j = fn->body_begin; j < i; ++j)
                if (isIdent(toks[j], "fflush"))
                    flushed = true;
            if (!flushed)
                findings.push_back(
                    {"forksafety", sf.rel, fork_line,
                     "fork() without flushing stdio first: buffered "
                     "output is duplicated into the child",
                     "fflush(stdout)/fflush(stderr) before forking, "
                     "or waive with lint:allow(forksafety)"});

            // (b) No thread-owning object constructed before fork():
            // only the forking thread survives in the child, so any
            // held lock or live pool deadlocks or corrupts.
            for (std::size_t j = fn->body_begin; j < i; ++j) {
                if (toks[j].kind != TokKind::Identifier ||
                    !thread_types.count(toks[j].text))
                    continue;
                if (j + 1 < toks.size() && toks[j + 1].text == "::")
                    continue; // static member access, not an object
                findings.push_back(
                    {"forksafety", sf.rel, toks[j].line,
                     "thread-owning '" + toks[j].text +
                         "' constructed before fork(): the child "
                         "inherits its locks and dead threads",
                     "create pools after forking (workers build "
                     "their own executors), or waive with "
                     "lint:allow(forksafety)"});
            }

            // Locate the child branch: the next `if (...== 0...)`
            // block after the fork call.
            std::size_t child_begin = 0;
            std::size_t child_end = 0;
            for (std::size_t j = i; j + 1 < toks.size() &&
                                    j < fn->body_end;
                 ++j) {
                if (!isIdent(toks[j], "if") || toks[j + 1].text != "(")
                    continue;
                const std::size_t cond_end =
                    matchForward(toks, j + 1);
                bool zero_check = false;
                for (std::size_t k = j + 2; k + 1 < cond_end; ++k)
                    if (toks[k].text == "==" &&
                        (toks[k + 1].text == "0" ||
                         toks[k - 1].text == "0"))
                        zero_check = true;
                if (!zero_check)
                    continue;
                if (cond_end < toks.size() &&
                    toks[cond_end].text == "{") {
                    child_begin = cond_end + 1;
                    child_end = matchForward(toks, cond_end) - 1;
                } else {
                    child_begin = cond_end;
                    child_end = child_begin;
                    while (child_end < toks.size() &&
                           toks[child_end].text != ";")
                        ++child_end;
                }
                break;
            }
            if (child_begin == 0) {
                findings.push_back(
                    {"forksafety", sf.rel, fork_line,
                     "cannot identify the fork() child branch (no "
                     "pid == 0 test after the call)",
                     "structure the child as `if (pid == 0) { ... "
                     "_Exit(rc); }`"});
                continue;
            }

            // (c) The child branch may only call repo functions, the
            // async-signal-safe-ish allowlist, or macros -- and must
            // be able to terminate through _Exit/_exit.
            bool child_exits = false;
            std::set<std::string> child_callees;
            static const std::set<std::string> control_words = {
                "if",     "for",    "while", "switch",
                "return", "sizeof", "catch"};
            for (std::size_t j = child_begin; j < child_end; ++j) {
                if (toks[j].kind != TokKind::Identifier ||
                    j + 1 >= toks.size() || toks[j + 1].text != "(")
                    continue;
                const std::string &name = toks[j].text;
                if (control_words.count(name))
                    continue;
                if (name == "_Exit" || name == "_exit") {
                    child_exits = true;
                    continue;
                }
                if (looksLikeMacro(name) ||
                    forkChildAllowlist().count(name))
                    continue;
                if (model.functions_by_name.count(name)) {
                    child_callees.insert(name);
                    continue;
                }
                if (sf.waived("forksafety", toks[j].line))
                    continue;
                findings.push_back(
                    {"forksafety", sf.rel, toks[j].line,
                     "'" + name +
                         "' in the fork child branch is neither "
                         "repo-defined nor on the async-signal-safe-"
                         "ish allowlist",
                     "move the work behind a repo function or waive "
                     "with lint:allow(forksafety)"});
            }

            // (d) Transitively: anything the child can reach must not
            // run exit() -- in a forked child exit() re-flushes stdio
            // buffers inherited from the parent and runs the parent's
            // atexit/static-destructor state.  A fork-aware function
            // (one that guards its own _Exit path, like fatal()) is
            // fine.
            std::set<std::size_t> child_roots;
            for (const std::string &name : child_callees) {
                auto [lo, hi] = model.functions_by_name.equal_range(name);
                for (auto it = lo; it != hi; ++it)
                    child_roots.insert(it->second);
            }
            bool reaches_exit_safely = child_exits;
            for (std::size_t idx : model.reachableFrom(child_roots)) {
                const FunctionDef &callee = model.functions[idx];
                const SourceFile &home = model.files[callee.file];
                if (forkAware(home, callee)) {
                    reaches_exit_safely = true;
                    continue;
                }
                for (std::size_t j = callee.body_begin;
                     j + 1 < callee.body_end; ++j) {
                    if (!isIdent(home.toks[j], "exit") ||
                        home.toks[j + 1].text != "(")
                        continue;
                    if (home.waived("forksafety", home.toks[j].line))
                        continue;
                    findings.push_back(
                        {"forksafety", home.rel, home.toks[j].line,
                         "exit() in '" + callee.name +
                             "', reachable from the fork child "
                             "branch at " +
                             sf.rel +
                             ": a forked child must die through "
                             "_Exit (exit() replays inherited stdio "
                             "buffers and parent atexit state)",
                         "guard with an inForkedChild() check that "
                         "calls _Exit, or waive with "
                         "lint:allow(forksafety)"});
                    break;
                }
            }
            if (!reaches_exit_safely)
                findings.push_back(
                    {"forksafety", sf.rel, fork_line,
                     "the fork child branch has no _Exit/_exit "
                     "termination path",
                     "end the child with _Exit(rc)"});
        }
    }
    return findings;
}

// ------------------------------------------------------- lifetime family

namespace
{

/**
 * True when the enclosing function drains the event queue after the
 * schedule call: `eq.run()` (or runUntil/step/drain) before the frame
 * returns means nothing scheduled here outlives the frame, which is
 * the dominant -- and safe -- idiom in tests and benchmarks.
 */
bool
drainedInFrame(const SourceFile &sf, const FunctionDef &fn,
               std::size_t from)
{
    static const std::set<std::string> drains = {
        "run", "runOne", "runUntil", "runFor", "step", "drain"};
    for (std::size_t i = from; i + 1 < fn.body_end; ++i)
        if (sf.toks[i].kind == TokKind::Identifier &&
            drains.count(sf.toks[i].text) &&
            sf.toks[i + 1].text == "(")
            return true;
    return false;
}

} // namespace

std::vector<Finding>
checkLifetime(const Model &model)
{
    std::vector<Finding> findings;
    static const std::set<std::string> pod_schedulers = {
        "scheduleCall", "scheduleCallAfter", "emplacePod"};
    static const std::set<std::string> lambda_schedulers = {
        "schedule", "scheduleAfter", "scheduleCall",
        "scheduleCallAfter"};

    for (std::size_t fi = 0; fi < model.files.size(); ++fi) {
        const SourceFile &sf = model.files[fi];
        const std::vector<Token> &toks = sf.toks;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                toks[i + 1].text != "(")
                continue;
            const std::string &name = toks[i].text;
            const std::size_t call_line = toks[i].line;
            const std::size_t close = matchForward(toks, i + 1);
            const FunctionDef *fn = model.enclosingFunction(fi, i);

            // Stack addresses must not ride into the event arena: the
            // callback outlives the frame that scheduled it.
            if (pod_schedulers.count(name) && fn) {
                for (std::size_t j = i + 2; j + 1 < close; ++j) {
                    if (toks[j].text != "&" ||
                        toks[j + 1].kind != TokKind::Identifier)
                        continue;
                    const std::string &prev = toks[j - 1].text;
                    if (prev != "," && prev != "(")
                        continue; // binary &, not address-of an arg
                    const std::string &var = toks[j + 1].text;
                    if (var == "this" || var.back() == '_')
                        continue; // members live with the object
                    // Declared locally in this function?
                    bool local = false;
                    for (std::size_t k = fn->body_begin; k < i; ++k) {
                        if (toks[k].kind != TokKind::Identifier ||
                            toks[k].text != var || k == 0)
                            continue;
                        const Token &before = toks[k - 1];
                        const std::string &after = toks[k + 1].text;
                        if ((before.kind == TokKind::Identifier ||
                             before.text == ">" || before.text == "*" ||
                             before.text == "&") &&
                            (after == "=" || after == ";" ||
                             after == "{" || after == "("))
                            local = true;
                    }
                    if (!local ||
                        sf.waived("lifetime", toks[j].line))
                        continue;
                    if (drainedInFrame(sf, *fn, close))
                        continue; // queue drains before frame exits
                    findings.push_back(
                        {"lifetime", sf.rel, toks[j].line,
                         "'" + name + "' captures the address of "
                         "stack local '" + var +
                             "': the callback outlives this frame "
                             "and fires on a dangling pointer",
                         "pass owned state (an arena slot index, a "
                         "member) or waive with "
                         "lint:allow(lifetime)"});
                }
            }

            // By-reference lambda captures escaping into the arena.
            if (lambda_schedulers.count(name)) {
                for (std::size_t j = i + 2; j + 1 < close; ++j) {
                    if (toks[j].text != "[")
                        continue;
                    const std::string &prev = toks[j - 1].text;
                    if (prev != "(" && prev != ",")
                        continue; // indexing, not a lambda intro
                    if (toks[j + 1].text != "&")
                        continue;
                    if (sf.waived("lifetime", toks[j].line))
                        continue;
                    if (fn && drainedInFrame(sf, *fn, close))
                        continue; // queue drains before frame exits
                    findings.push_back(
                        {"lifetime", sf.rel, toks[j].line,
                         "by-reference lambda capture passed to '" +
                             name +
                             "': the closure escapes into the event "
                             "arena and outlives the captured frame",
                         "capture by value (or capture `this`), or "
                         "waive with lint:allow(lifetime)"});
                }
            }

            // EventId reuse after deschedule: the slot may already be
            // recycled, so anything but reassignment or comparison is
            // a stale-handle bug.
            if (name == "deschedule" && fn) {
                if (i + 3 >= toks.size() ||
                    toks[i + 2].kind != TokKind::Identifier ||
                    toks[i + 3].text != ")")
                    continue;
                const std::string &id = toks[i + 2].text;
                for (std::size_t j = close; j < fn->body_end; ++j) {
                    if (toks[j].kind != TokKind::Identifier ||
                        toks[j].text != id)
                        continue;
                    const std::string &after =
                        j + 1 < toks.size() ? toks[j + 1].text : "";
                    const std::string &before =
                        j > 0 ? toks[j - 1].text : "";
                    if (after == "=" &&
                        (j + 2 >= toks.size() ||
                         toks[j + 2].text != "="))
                        break; // reassigned: handle is fresh again
                    if (after == "==" || after == "!=" ||
                        before == "==" || before == "!=")
                        continue; // comparing a stale id is fine
                    if (before == "(" && j >= 2 &&
                        isIdent(toks[j - 2], "deschedule"))
                        continue; // double-deschedule is a safe no-op
                    if (sf.waived("lifetime", toks[j].line))
                        continue;
                    findings.push_back(
                        {"lifetime", sf.rel, toks[j].line,
                         "EventId '" + id +
                             "' used after deschedule(): the arena "
                             "slot may already be recycled",
                         "reassign the id (e.g. to invalidEventId) "
                         "before reuse, or waive with "
                         "lint:allow(lifetime)"});
                    break;
                }
            }
            (void)call_line;
        }
    }
    return findings;
}

// ------------------------------------------------------- layering family

namespace
{

/** The repo layer a file belongs to, or "" when unconstrained. */
std::string
layerOf(const std::string &rel)
{
    const std::size_t slash = rel.find('/');
    if (slash == std::string::npos)
        return "";
    const std::string top = rel.substr(0, slash);
    if (top == "src") {
        const std::size_t next = rel.find('/', slash + 1);
        if (next == std::string::npos)
            return "";
        return rel.substr(slash + 1, next - slash - 1);
    }
    return top;
}

} // namespace

std::vector<Finding>
checkLayering(const std::string &root, const Model &model)
{
    std::vector<Finding> findings;
    const std::string design =
        slurpText(fs::path(root) / "DESIGN.md");

    // Parse the ```lint-layers fenced block: `layer: dep dep` lines,
    // with `*` meaning unconstrained.
    std::map<std::string, std::set<std::string>> allowed;
    std::set<std::string> wildcard;
    bool in_block = false;
    bool block_seen = false;
    for (const std::string &line : toLines(design)) {
        if (line.rfind("```", 0) == 0) {
            if (!in_block &&
                line.find("lint-layers") != std::string::npos) {
                in_block = true;
                block_seen = true;
            } else if (in_block) {
                in_block = false;
            }
            continue;
        }
        if (!in_block)
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = line.substr(0, colon);
        name.erase(std::remove_if(name.begin(), name.end(),
                                  [](char c) { return c == ' '; }),
                   name.end());
        std::istringstream deps(line.substr(colon + 1));
        std::string dep;
        allowed[name]; // a layer with no deps is still declared
        while (deps >> dep) {
            if (dep == "*")
                wildcard.insert(name);
            else
                allowed[name].insert(dep);
        }
    }
    if (!block_seen) {
        findings.push_back(
            {"layering", "DESIGN.md", 0,
             "no ```lint-layers block found: the layering check has "
             "no ground truth to enforce",
             "declare the layer dependency diagram in DESIGN.md"});
        return findings;
    }

    for (const SourceFile &sf : model.files) {
        const std::string layer = layerOf(sf.rel);
        if (layer.empty() || !allowed.count(layer))
            continue;
        if (wildcard.count(layer))
            continue;
        for (const cxx::IncludeDirective &inc : sf.includes) {
            if (inc.angled)
                continue;
            const std::size_t slash = inc.target.find('/');
            if (slash == std::string::npos)
                continue; // same-directory include
            const std::string target = inc.target.substr(0, slash);
            if (!allowed.count(target) || target == layer)
                continue;
            if (allowed.at(layer).count(target))
                continue;
            if (sf.waived("layering", inc.line))
                continue;
            findings.push_back(
                {"layering", sf.rel, inc.line,
                 "layer '" + layer + "' must not include '" +
                     inc.target + "' (allowed: " +
                     [&] {
                         std::string deps;
                         for (const std::string &d :
                              allowed.at(layer))
                             deps += (deps.empty() ? "" : " ") + d;
                         return deps.empty() ? std::string("nothing")
                                             : deps;
                     }() +
                     ")",
                 "invert the dependency or update the DESIGN.md "
                 "layer diagram deliberately"});
        }
    }
    return findings;
}

cxx::Model
buildRepoModel(const std::string &root)
{
    return cxx::buildModel(
        root, {"src", "tools", "bench", "examples", "tests"});
}

} // namespace uvmsim::lint
