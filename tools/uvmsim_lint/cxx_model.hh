/**
 * @file
 * A lightweight semantic model of the repo's C++ sources, built for
 * uvmsim_lint's analysis families (determinism, fork-safety, callback
 * lifetime, layering).
 *
 * This is deliberately not a compiler front end.  The model is a real
 * lexer (comments and string literals separated from code tokens, so
 * a banned name inside a doc comment or a usage string can never
 * false-positive) plus three shallow semantic layers recovered from
 * the token stream:
 *
 *   - declarations: container variables (map/set families with their
 *     key-type text) and function definitions with body extents,
 *   - a name-based intra-repo call graph (an over-approximation:
 *     callees are matched by name across translation units, which is
 *     exactly the right bias for a linter -- missing an edge hides a
 *     bug, inventing one costs a waiver),
 *   - include edges, resolved against the include directories the
 *     real build uses (parsed out of compile_commands.json when the
 *     build tree has one; a source-layout fallback otherwise).
 *
 * Everything is plain data; the checks in lint.cc walk these vectors.
 */

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace uvmsim::lint::cxx
{

enum class TokKind
{
    Identifier,
    Number,
    String,
    CharLit,
    Punct,
};

/** One code token; comments and literals never mix into Identifier. */
struct Token
{
    TokKind kind;
    std::string text;
    std::size_t line = 0; //!< 1-based source line.
};

/** One #include directive. */
struct IncludeDirective
{
    std::size_t line = 0;
    std::string target; //!< path between the quotes/brackets
    bool angled = false;
};

/** One lexed source file. */
struct SourceFile
{
    std::string rel; //!< repo-relative path
    std::vector<Token> toks;
    std::vector<IncludeDirective> includes;

    /** Comment text per line (all comments touching that line). */
    std::map<std::size_t, std::string> comments;

    /**
     * True when a "lint:allow(tag)" comment sits on `line` or the
     * line above it -- the waiver convention shared by every check.
     */
    bool waived(const std::string &tag, std::size_t line) const;
};

/** Lex one file.  Raw strings, escapes and preprocessor lines are
 *  handled; tokens carry line numbers. */
SourceFile lexSource(const std::string &rel, const std::string &text);

/** A function definition with a located body. */
struct FunctionDef
{
    std::string name;      //!< unqualified name
    std::string qualifier; //!< enclosing Class for out-of-line methods
    std::size_t file = 0;  //!< index into Model::files
    std::size_t line = 0;  //!< line of the name token
    std::size_t body_begin = 0; //!< token index of the opening '{'
    std::size_t body_end = 0;   //!< one past the matching '}'
    std::vector<std::string> callees; //!< names invoked in the body
};

/** A container-typed variable or member declaration. */
struct ContainerDecl
{
    std::string var;
    std::string container; //!< "unordered_map", "map", "set", ...
    std::string key_type;  //!< raw text of the first template argument
    std::size_t file = 0;
    std::size_t line = 0;

    bool unordered() const
    {
        return container.rfind("unordered", 0) == 0;
    }
};

/** The whole-repo model. */
struct Model
{
    std::vector<SourceFile> files;
    std::vector<FunctionDef> functions;
    std::vector<ContainerDecl> containers;

    /** Include directories the build resolves against. */
    std::vector<std::string> include_dirs;

    /** Function indexes by unqualified name. */
    std::multimap<std::string, std::size_t> functions_by_name;

    /** Container decl for `var` visible in `file`, or nullptr.  Decls
     *  in the same file win; a unique cross-file match is accepted
     *  (headers declare members their .cc iterates). */
    const ContainerDecl *containerFor(std::size_t file,
                                      const std::string &var) const;

    /** The function whose body covers token index `tok` in `file`. */
    const FunctionDef *enclosingFunction(std::size_t file,
                                         std::size_t tok) const;

    /**
     * Forward closure over the call graph: every function reachable
     * from the given function indexes (roots included).
     */
    std::set<std::size_t>
    reachableFrom(const std::set<std::size_t> &roots) const;
};

/**
 * Lex every C++ source under the given repo-relative subtrees and
 * recover declarations, function bodies and the call graph.  Include
 * search directories come from the newest compile_commands.json in a
 * build directory under root when present, else a source-layout
 * default.
 */
Model buildModel(const std::string &root,
                 const std::vector<std::string> &subdirs);

/** The include directories buildModel would use (exposed for tests). */
std::vector<std::string> includeSearchDirs(const std::string &root);

} // namespace uvmsim::lint::cxx
