#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <regex>
#include <sstream>

#include "api/simulator.hh"
#include "sim/logging.hh"
#include "sim/options.hh"

namespace fs = std::filesystem;

namespace uvmsim::lint
{

namespace
{

// ---------------------------------------------------------------- utilities

/** Read a whole file; empty string when unreadable. */
std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size())
                lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return {};
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Directories never worth walking: build trees, VCS state. */
bool
skippedDir(const std::string &name)
{
    return name == ".git" || name.rfind("build", 0) == 0 ||
           name == "bench-build" || name == ".cache";
}

/** All regular files under root/sub with one of the extensions. */
std::vector<fs::path>
filesUnder(const fs::path &root, const std::string &sub,
           const std::vector<std::string> &exts)
{
    std::vector<fs::path> out;
    fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return out;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec)
            break;
        if (it->is_directory() &&
            skippedDir(it->path().filename().string())) {
            it.disable_recursion_pending();
            continue;
        }
        if (!it->is_regular_file())
            continue;
        std::string ext = it->path().extension().string();
        if (exts.empty() ||
            std::find(exts.begin(), exts.end(), ext) != exts.end())
            out.push_back(it->path());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
relPath(const fs::path &root, const fs::path &path)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    return ec ? path.string() : rel.generic_string();
}

/** Every dash-dash flag token (a letter must follow the dashes). */
std::set<std::string>
flagTokens(const std::string &text)
{
    static const std::regex pattern(R"re(--([a-z][a-z0-9-]*))re");
    std::set<std::string> out;
    for (std::sregex_iterator it(text.begin(), text.end(), pattern), end;
         it != end; ++it)
        out.insert((*it)[1].str());
    return out;
}

// ------------------------------------------------------------- flags check

/** Option names a source file reads through the Options accessors. */
std::map<std::string, std::size_t>
consumedFlags(const std::string &text)
{
    static const std::regex pattern(
        R"re((?:opts|options)\s*\.\s*)re"
        R"re((?:has|getUint|getDouble|getBool|getList|get)\s*\(\s*)re"
        R"re("([a-z][a-z0-9-]*)")re");
    std::map<std::string, std::size_t> out;
    std::size_t line = 1;
    auto begin = text.begin();
    for (std::sregex_iterator it(text.begin(), text.end(), pattern), end;
         it != end; ++it) {
        line += static_cast<std::size_t>(
            std::count(begin, text.begin() + it->position(0), '\n'));
        begin = text.begin() + it->position(0);
        out.emplace((*it)[1].str(), line);
    }
    return out;
}

/**
 * Flag tokens appearing on documented command lines of our own
 * tools: any (backslash-joined) line that invokes a uvmsim_* CLI
 * binary.  Third-party command examples (ctest, cmake, ...) and the
 * gtest runner are deliberately out of scope.
 */
std::set<std::string>
toolExampleFlags(const std::string &text)
{
    static const char *const clis[] = {"uvmsim_run", "uvmsim_sweep",
                                       "uvmsim_fuzz", "uvmsim_lint"};
    std::set<std::string> out;
    std::vector<std::string> lines = splitLines(text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string joined = lines[i];
        while (!joined.empty() && joined.back() == '\\' &&
               i + 1 < lines.size())
            joined = joined.substr(0, joined.size() - 1) + lines[++i];
        for (const char *cli : clis) {
            if (joined.find(cli) == std::string::npos)
                continue;
            for (const std::string &flag : flagTokens(joined))
                out.insert(flag);
            break;
        }
    }
    return out;
}

} // namespace

const std::vector<std::string> &
allCheckNames()
{
    static const std::vector<std::string> names = {
        "flags",  "stats",      "trace",    "determinism", "headers",
        "jobkey", "forksafety", "lifetime", "layering"};
    return names;
}

std::vector<Finding>
checkFlags(const std::string &root_str)
{
    const fs::path root(root_str);
    std::vector<Finding> findings;

    // Where flags count as documented.
    std::string docs_text;
    for (const char *name : {"README.md", "EXPERIMENTS.md"})
        docs_text += slurp(root / name);
    for (const fs::path &doc : filesUnder(root, "docs", {".md"}))
        docs_text += slurp(doc);
    const std::set<std::string> documented = flagTokens(docs_text);

    // Where flags count as tested: test sources, add_test command
    // lines in any CMakeLists.txt, and the CI workflows.
    std::string tests_text;
    for (const fs::path &test : filesUnder(root, "tests", {}))
        tests_text += slurp(test);
    for (const fs::path &p : filesUnder(root, "", {".txt"}))
        if (p.filename() == "CMakeLists.txt")
            tests_text += slurp(p);
    for (const fs::path &wf : filesUnder(root, ".github", {}))
        tests_text += slurp(wf);
    const std::set<std::string> tested = flagTokens(tests_text);

    // Flags any file consumes, for the stale-docs direction.
    std::set<std::string> consumed_anywhere;

    struct ToolFile
    {
        fs::path path;
        std::string text;
        bool is_tool; // tools/ (full rules) vs bench/ (docs rule only)
    };
    std::vector<ToolFile> sources;
    for (const fs::path &p : filesUnder(root, "tools", {".cc"}))
        sources.push_back({p, slurp(p), true});
    for (const fs::path &p :
         filesUnder(root, "bench", {".cc", ".hh"}))
        sources.push_back({p, slurp(p), false});

    for (const ToolFile &src : sources) {
        const std::map<std::string, std::size_t> consumed =
            consumedFlags(src.text);
        if (consumed.empty())
            continue;
        const std::string rel = relPath(root, src.path);
        const std::set<std::string> mentioned = flagTokens(src.text);

        for (const auto &[flag, line] : consumed) {
            consumed_anywhere.insert(flag);
            if (src.is_tool && !mentioned.count(flag)) {
                findings.push_back(
                    {"flags", rel, line,
                     "flag --" + flag +
                         " is consumed but missing from this tool's "
                         "usage/help text",
                     "add --" + flag + " to the usage() block"});
            }
            if (!documented.count(flag)) {
                findings.push_back(
                    {"flags", rel, line,
                     "flag --" + flag +
                         " is not documented in README.md, "
                         "EXPERIMENTS.md or docs/",
                     "document --" + flag + " where the tool is "
                                            "described"});
            }
            if (src.is_tool && !tested.count(flag)) {
                findings.push_back(
                    {"flags", rel, line,
                     "flag --" + flag +
                         " is not referenced by any test (tests/, "
                         "add_test, or CI workflow)",
                     "add a smoke test exercising --" + flag});
            }
        }

        // Stale usage text: a tool mentioning a flag it never reads
        // either lost the flag or has a typo in the accessor.
        if (src.is_tool) {
            for (const std::string &flag : mentioned) {
                if (!consumed.count(flag))
                    findings.push_back(
                        {"flags", rel, 0,
                         "flag --" + flag +
                             " appears in usage/comment text but is "
                             "never consumed",
                         "drop the stale reference or read the "
                         "option"});
            }
        }
    }

    // Stale docs: uvmsim_* example command lines must only use flags
    // some binary actually reads.
    struct DocFile
    {
        std::string name;
        std::string text;
    };
    std::vector<DocFile> doc_files = {
        {"README.md", slurp(root / "README.md")},
        {"EXPERIMENTS.md", slurp(root / "EXPERIMENTS.md")},
    };
    for (const fs::path &doc : filesUnder(root, "docs", {".md"}))
        doc_files.push_back({relPath(root, doc), slurp(doc)});
    for (const DocFile &doc : doc_files) {
        for (const std::string &flag : toolExampleFlags(doc.text)) {
            if (!consumed_anywhere.count(flag))
                findings.push_back(
                    {"flags", doc.name, 0,
                     "documented flag --" + flag +
                         " is not consumed by any tool or bench "
                         "harness",
                     "fix or delete the stale example"});
        }
    }

    return findings;
}

// ------------------------------------------------------------- stats check

namespace
{

/** `code` spans in a markdown text, with backticks stripped. */
std::vector<std::string>
codeSpans(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        std::size_t open = text.find('`', pos);
        if (open == std::string::npos)
            break;
        std::size_t close = text.find('`', open + 1);
        if (close == std::string::npos)
            break;
        out.push_back(text.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return out;
}

bool
isStatName(const std::string &token)
{
    static const std::regex pattern(
        R"re([A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)+)re");
    return std::regex_match(token, pattern);
}

/**
 * Expand the docs' slash shorthand: "smN.tlb.hits/misses/evictions"
 * means smN.tlb.hits, smN.tlb.misses and smN.tlb.evictions.
 */
std::vector<std::string>
expandSlashes(const std::string &span)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= span.size()) {
        std::size_t slash = span.find('/', start);
        if (slash == std::string::npos)
            slash = span.size();
        parts.push_back(span.substr(start, slash - start));
        start = slash + 1;
    }
    std::vector<std::string> out;
    if (parts.empty())
        return out;
    out.push_back(parts[0]);
    std::size_t last_dot = parts[0].rfind('.');
    std::string prefix = last_dot == std::string::npos
                             ? std::string()
                             : parts[0].substr(0, last_dot + 1);
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &p = parts[i];
        out.push_back(p.find('.') != std::string::npos ? p : prefix + p);
    }
    return out;
}

/** sm<digits>.foo -> smN.foo and tenant<digits>.foo -> tenantN.foo,
 *  the docs' per-instance conventions. */
std::string
normalizeStatName(const std::string &name)
{
    static const std::regex sm_pattern(R"re(^sm\d+\.)re");
    static const std::regex tenant_pattern(R"re(^tenant\d+\.)re");
    std::string out = std::regex_replace(name, sm_pattern, "smN.");
    return std::regex_replace(out, tenant_pattern, "tenantN.");
}

} // namespace

std::set<std::string>
enumerateRegisteredStats()
{
    SimConfig cfg;
    cfg.gpu.num_sms = 1;
    WorkloadParams params;
    params.size_scale = 0.05;
    std::set<std::string> out;
    RunResult result = runBenchmark("backprop", cfg, params);
    for (const auto &[name, value] : result.stats) {
        (void)value;
        out.insert(normalizeStatName(name));
    }
    // Per-tenant counters only register on multi-tenant runs.
    cfg.tenants = 2;
    cfg.serialize_kernel_streams = true;
    RunResult tenant_result = runBenchmark("backprop", cfg, params);
    for (const auto &[name, value] : tenant_result.stats) {
        (void)value;
        out.insert(normalizeStatName(name));
    }
    return out;
}

std::vector<Finding>
checkStats(const std::string &root_str,
           const std::set<std::string> &registered)
{
    const fs::path root(root_str);
    std::vector<Finding> findings;
    const std::string doc_rel = "docs/STATS.md";
    const std::string doc = slurp(root / doc_rel);
    if (doc.empty()) {
        findings.push_back({"stats", doc_rel, 0,
                            "docs/STATS.md is missing or empty",
                            "document every registered stat there"});
        return findings;
    }

    std::set<std::string> documented;
    for (const std::string &span : codeSpans(doc)) {
        if (span.find('*') != std::string::npos)
            continue; // wildcard section headers like `gmmu.*`
        for (const std::string &name : expandSlashes(span))
            if (isStatName(name))
                documented.insert(name);
    }

    for (const std::string &name : registered) {
        if (!documented.count(name))
            findings.push_back(
                {"stats", doc_rel, 0,
                 "registered stat '" + name +
                     "' is not documented in docs/STATS.md",
                 "add a table row describing it"});
    }
    for (const std::string &name : documented) {
        if (!registered.count(name))
            findings.push_back(
                {"stats", doc_rel, 0,
                 "documented stat '" + name +
                     "' is not registered by the simulator",
                 "remove the stale row or restore the stat"});
    }
    return findings;
}

// ------------------------------------------------------------- trace check

std::vector<Finding>
checkTrace(const std::string &root_str)
{
    const fs::path root(root_str);
    std::vector<Finding> findings;
    const std::string hh_rel = "src/sim/trace.hh";
    const std::string cc_rel = "src/sim/trace.cc";
    const std::string hh = slurp(root / hh_rel);
    const std::string cc = slurp(root / cc_rel);
    if (hh.empty() || cc.empty()) {
        findings.push_back({"trace", hh.empty() ? hh_rel : cc_rel, 0,
                            "trace source not found", ""});
        return findings;
    }

    // Enum entries: `name = 1u << k` inside `enum class Category`.
    std::map<std::string, unsigned> enum_bits;
    std::size_t enum_pos = hh.find("enum class Category");
    std::size_t enum_end =
        enum_pos == std::string::npos ? std::string::npos
                                      : hh.find("};", enum_pos);
    if (enum_end == std::string::npos) {
        findings.push_back({"trace", hh_rel, 0,
                            "could not locate enum class Category", ""});
        return findings;
    }
    const std::string enum_body =
        hh.substr(enum_pos, enum_end - enum_pos);
    static const std::regex entry_pattern(
        R"re(([a-z][A-Za-z0-9_]*)\s*=\s*1u\s*<<\s*(\d+))re");
    for (std::sregex_iterator
             it(enum_body.begin(), enum_body.end(), entry_pattern),
         end;
         it != end; ++it)
        enum_bits[(*it)[1].str()] =
            1u << std::stoul((*it)[2].str());

    // parseSpec's table: {"name", Category::name} pairs.
    std::map<std::string, std::string> table;
    static const std::regex table_pattern(
        R"re(\{\s*"([a-z]+)"\s*,\s*Category::([A-Za-z0-9_]+)\s*\})re");
    for (std::sregex_iterator it(cc.begin(), cc.end(), table_pattern),
         end;
         it != end; ++it)
        table[(*it)[1].str()] = (*it)[2].str();

    for (const auto &[name, bit] : enum_bits) {
        (void)bit;
        auto it = table.find(name);
        if (it == table.end())
            findings.push_back(
                {"trace", cc_rel, 0,
                 "Category::" + name +
                     " is not handled by parseSpec's category table",
                 "add {\"" + name + "\", Category::" + name +
                     "} to categoryTable"});
        else if (it->second != name)
            findings.push_back(
                {"trace", cc_rel, 0,
                 "categoryTable maps \"" + name + "\" to Category::" +
                     it->second + " (name mismatch)",
                 "make the string and enumerator agree"});
    }
    for (const auto &[name, target] : table) {
        (void)target;
        if (!enum_bits.count(name))
            findings.push_back(
                {"trace", cc_rel, 0,
                 "parseSpec accepts \"" + name +
                     "\" which is not a Category enumerator",
                 "drop the stale table entry"});
    }

    // allCategories must cover exactly the declared bits.
    unsigned all_bits = 0;
    for (const auto &[name, bit] : enum_bits) {
        (void)name;
        all_bits |= bit;
    }
    static const std::regex all_pattern(
        R"re(allCategories\s*=\s*(0[xX][0-9a-fA-F]+|\d+))re");
    std::smatch all_match;
    if (!std::regex_search(hh, all_match, all_pattern)) {
        findings.push_back({"trace", hh_rel, 0,
                            "allCategories constant not found", ""});
    } else {
        unsigned declared = static_cast<unsigned>(
            std::stoul(all_match[1].str(), nullptr, 0));
        if (declared != all_bits) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "allCategories is 0x%x but the enum covers "
                          "0x%x",
                          declared, all_bits);
            findings.push_back({"trace", hh_rel, 0, buf,
                                "update the constant to match the "
                                "enum"});
        }
    }

    // Every category must be documented.
    std::string docs_text;
    for (const char *name : {"README.md", "EXPERIMENTS.md"})
        docs_text += slurp(root / name);
    for (const fs::path &doc : filesUnder(root, "docs", {".md"}))
        docs_text += slurp(doc);
    for (const auto &[name, bit] : enum_bits) {
        (void)bit;
        if (docs_text.find(name) == std::string::npos)
            findings.push_back(
                {"trace", hh_rel, 0,
                 "trace category '" + name +
                     "' is not mentioned in README.md, "
                     "EXPERIMENTS.md or docs/",
                 "document it where the trace spec is described"});
    }

    return findings;
}

// The determinism, forksafety, lifetime and layering families live in
// semantic_checks.cc: they analyze the token/declaration/call-graph
// model built by cxx_model.cc rather than text lines.

// ----------------------------------------------------------- headers check

namespace
{

/**
 * Rewrite a legacy #ifndef/#define/#endif include guard to
 * #pragma once.  Returns true when the file was changed.
 */
bool
fixGuard(const fs::path &path, const std::string &text)
{
    std::vector<std::string> lines = splitLines(text);
    static const std::regex ifndef_pattern(
        R"re(^\s*#\s*ifndef\s+([A-Za-z_][A-Za-z0-9_]*)\s*$)re");
    std::smatch m;
    std::size_t guard_line = lines.size();
    std::string macro;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_match(lines[i], m, ifndef_pattern)) {
            guard_line = i;
            macro = m[1].str();
            break;
        }
    }
    if (guard_line == lines.size())
        return false;
    // The matching #define must be the next preprocessor line.
    std::size_t define_line = lines.size();
    for (std::size_t i = guard_line + 1; i < lines.size(); ++i) {
        if (trim(lines[i]).empty())
            continue;
        if (trim(lines[i]) == "#define " + macro)
            define_line = i;
        break;
    }
    if (define_line == lines.size())
        return false;
    // The guard's #endif is the last one in the file.
    std::size_t endif_line = lines.size();
    for (std::size_t i = lines.size(); i-- > 0;) {
        if (trim(lines[i]).rfind("#endif", 0) == 0) {
            endif_line = i;
            break;
        }
    }
    if (endif_line == lines.size() || endif_line <= define_line)
        return false;

    std::vector<std::string> out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i == define_line || i == endif_line)
            continue;
        if (i == guard_line)
            out.push_back("#pragma once");
        else
            out.push_back(lines[i]);
    }
    // Drop the blank line(s) the removed #endif leaves at the end.
    while (!out.empty() && trim(out.back()).empty())
        out.pop_back();

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return false;
    for (const std::string &line : out)
        file << line << '\n';
    return true;
}

} // namespace

std::vector<Finding>
checkHeaders(const std::string &root_str, bool fix)
{
    const fs::path root(root_str);
    std::vector<Finding> findings;
    const std::vector<std::string> exts = {".hh", ".h", ".hpp"};

    for (const char *sub : {"src", "tools", "bench"}) {
        for (const fs::path &path : filesUnder(root, sub, exts)) {
            const std::string rel = relPath(root, path);
            std::string text = slurp(path);

            bool has_pragma = false;
            for (const std::string &line : splitLines(text))
                if (trim(line) == "#pragma once") {
                    has_pragma = true;
                    break;
                }
            if (!has_pragma) {
                bool fixed = fix && fixGuard(path, text);
                if (fixed) {
                    text = slurp(path);
                } else {
                    const bool legacy =
                        text.find("#ifndef") != std::string::npos;
                    findings.push_back(
                        {"headers", rel, 1,
                         legacy ? "header uses a legacy #ifndef "
                                  "include guard"
                                : "header has no include guard",
                         legacy ? "run uvmsim_lint --fix to convert "
                                  "it to #pragma once"
                                : "add #pragma once"});
                }
            }

            const std::vector<std::string> lines = splitLines(text);
            for (std::size_t i = 0; i < lines.size(); ++i) {
                if (trim(lines[i]).rfind("using namespace", 0) == 0)
                    findings.push_back(
                        {"headers", rel, i + 1,
                         "using-namespace at file scope in a header "
                         "leaks into every includer",
                         "qualify the names instead"});
            }
        }
    }
    return findings;
}

// ------------------------------------------------------------- jobkey check

namespace
{

/** Remove // line comments and C-style block comments. */
std::string
stripComments(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size();) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
        } else if (text[i] == '/' && i + 1 < text.size() &&
                   text[i + 1] == '*') {
            i += 2;
            while (i + 1 < text.size() &&
                   !(text[i] == '*' && text[i + 1] == '/'))
                ++i;
            i = std::min(text.size(), i + 2);
        } else {
            out += text[i++];
        }
    }
    return out;
}

/** The brace-delimited body of `struct name { ... }` in text. */
std::string
structBody(const std::string &text, const std::string &name)
{
    std::size_t pos = text.find("struct " + name);
    if (pos == std::string::npos)
        return "";
    pos = text.find('{', pos);
    if (pos == std::string::npos)
        return "";
    int depth = 0;
    const std::size_t start = pos + 1;
    for (std::size_t i = pos; i < text.size(); ++i) {
        if (text[i] == '{') {
            ++depth;
        } else if (text[i] == '}') {
            depth -= 1; // (not prefix -- that reads as a flag token)
            if (depth == 0)
                return text.substr(start, i - start);
        }
    }
    return "";
}

/**
 * Data-member names declared at the top level of a struct body
 * (comments already stripped).  Member functions are recognized by a
 * '(' before any '=' and skipped; nested braces (inline function
 * bodies) are skipped wholesale.
 */
std::vector<std::string>
memberFields(const std::string &body)
{
    static const std::regex name_pattern(
        R"re(([A-Za-z_][A-Za-z0-9_]*)\s*$)re");
    std::vector<std::string> out;
    int depth = 0;
    std::string stmt;
    for (char c : body) {
        if (c == '{') {
            ++depth;
            continue;
        }
        if (c == '}') {
            depth -= 1;
            stmt.clear();
            continue;
        }
        if (depth > 0)
            continue;
        if (c != ';') {
            stmt += c;
            continue;
        }
        const std::size_t eq = stmt.find('=');
        const std::string decl = trim(
            eq == std::string::npos ? stmt : stmt.substr(0, eq));
        stmt.clear();
        if (decl.find('(') != std::string::npos)
            continue; // a member function declaration
        std::smatch m;
        if (!std::regex_search(decl, m, name_pattern))
            continue;
        // Require a preceding type token so lone keywords don't match.
        if (m[1].str().size() < decl.size())
            out.push_back(m[1].str());
    }
    return out;
}

} // namespace

std::vector<Finding>
checkJobKey(const std::string &root_str)
{
    const fs::path root(root_str);
    std::vector<Finding> findings;

    struct StructSpec
    {
        const char *file;
        const char *name;
    };
    static const StructSpec specs[] = {
        {"src/api/simulator.hh", "SimConfig"},
        {"src/gpu/gpu_config.hh", "GpuConfig"},
        {"src/workloads/workload.hh", "WorkloadParams"},
    };
    const char *key_file = "src/api/run_executor.cc";

    const std::string key_text = stripComments(slurp(root / key_file));
    if (key_text.empty()) {
        findings.push_back({"jobkey", key_file, 0,
                            "cannot read the runJobKey implementation",
                            "check out " + std::string(key_file)});
        return findings;
    }

    for (const StructSpec &spec : specs) {
        const std::string text = stripComments(slurp(root / spec.file));
        const std::string body = structBody(text, spec.name);
        if (body.empty()) {
            findings.push_back(
                {"jobkey", spec.file, 0,
                 "cannot find struct " + std::string(spec.name),
                 "update the jobkey check's struct registry"});
            continue;
        }
        for (const std::string &field : memberFields(body)) {
            // A serialized field is read as ".field" somewhere in the
            // key's translation unit (field names are identifiers, so
            // splicing them into the regex is safe).
            const std::regex use("[.]\\s*" + field + "\\b");
            if (std::regex_search(key_text, use))
                continue;
            findings.push_back(
                {"jobkey", spec.file, 0,
                 "field " + std::string(spec.name) + "::" + field +
                     " is never read by runJobKey -- distinct configs "
                     "would alias one result cache entry",
                 "serialize the field in " + std::string(key_file)});
        }
    }
    return findings;
}

// ------------------------------------------------------------ entry points

std::vector<Finding>
runChecks(const Config &config)
{
    std::set<std::string> selected(config.checks.begin(),
                                   config.checks.end());
    for (const std::string &name : selected)
        if (std::find(allCheckNames().begin(), allCheckNames().end(),
                      name) == allCheckNames().end())
            fatal("unknown lint check '%s'", name.c_str());
    auto wants = [&selected](const char *name) {
        return selected.empty() || selected.count(name) > 0;
    };

    std::vector<Finding> findings;
    auto append = [&findings](std::vector<Finding> more) {
        findings.insert(findings.end(),
                        std::make_move_iterator(more.begin()),
                        std::make_move_iterator(more.end()));
    };
    if (wants("flags"))
        append(checkFlags(config.root));
    if (wants("stats"))
        append(checkStats(config.root, enumerateRegisteredStats()));
    if (wants("trace"))
        append(checkTrace(config.root));

    // The semantic families share one model of the C++ sources; build
    // it only when at least one of them is selected.
    const bool semantic = wants("determinism") || wants("forksafety") ||
                          wants("lifetime") || wants("layering");
    if (semantic) {
        const cxx::Model model = buildRepoModel(config.root);
        if (wants("determinism"))
            append(checkDeterminism(config.root, model, config.fix));
        if (wants("forksafety"))
            append(checkForkSafety(model));
        if (wants("lifetime"))
            append(checkLifetime(model));
        if (wants("layering"))
            append(checkLayering(config.root, model));
    }

    if (wants("headers"))
        append(checkHeaders(config.root, config.fix));
    if (wants("jobkey"))
        append(checkJobKey(config.root));
    return findings;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toJson(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << (i ? ",\n " : "\n ") << "{\"check\": \""
            << jsonEscape(f.check) << "\", \"file\": \""
            << jsonEscape(f.file) << "\", \"line\": " << f.line
            << ", \"message\": \"" << jsonEscape(f.message)
            << "\", \"suggestion\": \"" << jsonEscape(f.suggestion)
            << "\"}";
    }
    out << (findings.empty() ? "]" : "\n]") << "\n";
    return out.str();
}

namespace
{

void
usage()
{
    std::printf(
        "uvmsim_lint -- domain-aware static analysis for the uvmsim "
        "tree\n\n"
        "options:\n"
        "  --root=PATH       repo root to lint (default: the source "
        "tree this binary was built from)\n"
        "  --checks=LIST     comma list of checks to run (default: "
        "all; see --list-checks)\n"
        "  --fix             apply mechanical fixes (header guards to "
        "#pragma once; sorted-key snapshots and proven-benign waiver "
        "stanzas for unordered iteration)\n"
        "  --json            emit findings as a JSON array instead of "
        "text\n"
        "  --list-checks     print the available check names and "
        "exit\n"
        "  --help            this text\n");
}

} // namespace

int
runCli(const std::vector<std::string> &args)
{
    std::vector<const char *> argv = {"uvmsim_lint"};
    for (const std::string &arg : args)
        argv.push_back(arg.c_str());
    Options opts(static_cast<int>(argv.size()), argv.data());

    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (opts.getBool("list-checks")) {
        for (const std::string &name : allCheckNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    Config config;
#ifdef UVMSIM_SOURCE_DIR
    config.root = opts.get("root", UVMSIM_SOURCE_DIR);
#else
    config.root = opts.get("root", ".");
#endif
    config.checks = opts.getList("checks", {});
    config.fix = opts.getBool("fix");
    for (const std::string &name : config.checks) {
        if (std::find(allCheckNames().begin(), allCheckNames().end(),
                      name) == allCheckNames().end()) {
            std::fprintf(stderr,
                         "uvmsim_lint: unknown check '%s' (see "
                         "--list-checks)\n",
                         name.c_str());
            return 2;
        }
    }

    const std::vector<Finding> findings = runChecks(config);
    if (opts.getBool("json")) {
        std::printf("%s", toJson(findings).c_str());
    } else {
        for (const Finding &f : findings) {
            if (f.line)
                std::printf("%s:%zu: [%s] %s", f.file.c_str(), f.line,
                            f.check.c_str(), f.message.c_str());
            else if (!f.file.empty())
                std::printf("%s: [%s] %s", f.file.c_str(),
                            f.check.c_str(), f.message.c_str());
            else
                std::printf("[%s] %s", f.check.c_str(),
                            f.message.c_str());
            if (!f.suggestion.empty())
                std::printf("  (%s)", f.suggestion.c_str());
            std::printf("\n");
        }
        std::printf("uvmsim_lint: %zu finding%s\n", findings.size(),
                    findings.size() == 1 ? "" : "s");
    }
    return findings.empty() ? 0 : 1;
}

} // namespace uvmsim::lint
