#include "cxx_model.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace uvmsim::lint::cxx
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators we keep whole; longest match first. */
const char *const punctuators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",
};

} // namespace

bool
SourceFile::waived(const std::string &tag, std::size_t line) const
{
    const std::string token = "lint:allow(" + tag + ")";
    for (std::size_t l : {line, line > 0 ? line - 1 : line}) {
        auto it = comments.find(l);
        if (it != comments.end() &&
            it->second.find(token) != std::string::npos)
            return true;
    }
    return false;
}

SourceFile
lexSource(const std::string &rel, const std::string &text)
{
    SourceFile out;
    out.rel = rel;
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();

    auto comment = [&out](std::size_t at, const std::string &body) {
        out.comments[at] += body;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t end = text.find('\n', i);
            if (end == std::string::npos)
                end = n;
            comment(line, text.substr(i, end - i));
            i = end;
            continue;
        }
        // Block comment; record its text on every line it touches.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t end = text.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            std::size_t at = line;
            std::string chunk;
            for (std::size_t j = i; j < end; ++j) {
                if (text[j] == '\n') {
                    comment(at, chunk);
                    chunk.clear();
                    ++at;
                    ++line;
                } else {
                    chunk += text[j];
                }
            }
            if (!chunk.empty())
                comment(at, chunk);
            i = end;
            continue;
        }
        // Preprocessor directive: extract #include, tokenize the rest.
        if (c == '#') {
            std::size_t end = i;
            while (end < n) {
                std::size_t nl = text.find('\n', end);
                if (nl == std::string::npos) {
                    end = n;
                    break;
                }
                // Honor line continuations.
                std::size_t back = nl;
                while (back > end && (text[back - 1] == '\r'))
                    --back;
                if (back > end && text[back - 1] == '\\') {
                    end = nl + 1;
                    ++line;
                    continue;
                }
                end = nl;
                break;
            }
            const std::string directive = text.substr(i, end - i);
            std::size_t kw = directive.find_first_not_of(" \t", 1);
            if (kw != std::string::npos &&
                directive.compare(kw, 7, "include") == 0) {
                std::size_t open =
                    directive.find_first_of("\"<", kw + 7);
                if (open != std::string::npos) {
                    const bool angled = directive[open] == '<';
                    std::size_t close = directive.find(
                        angled ? '>' : '"', open + 1);
                    if (close != std::string::npos)
                        out.includes.push_back(
                            {line,
                             directive.substr(open + 1,
                                              close - open - 1),
                             angled});
                }
            }
            i = end;
            continue;
        }
        // Raw string literal.
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            std::size_t paren = text.find('(', i + 2);
            if (paren != std::string::npos) {
                const std::string delim =
                    ")" + text.substr(i + 2, paren - i - 2) + "\"";
                std::size_t end = text.find(delim, paren + 1);
                if (end == std::string::npos)
                    end = n;
                else
                    end += delim.size();
                out.toks.push_back({TokKind::String,
                                    text.substr(i, end - i), line});
                line += static_cast<std::size_t>(std::count(
                    text.begin() + static_cast<std::ptrdiff_t>(i),
                    text.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(end, n)),
                    '\n'));
                i = end;
                continue;
            }
        }
        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            std::size_t end = i + 1;
            while (end < n && text[end] != c) {
                if (text[end] == '\\' && end + 1 < n)
                    ++end;
                if (text[end] == '\n')
                    ++line;
                ++end;
            }
            end = std::min(n, end + 1);
            out.toks.push_back(
                {c == '"' ? TokKind::String : TokKind::CharLit,
                 text.substr(i, end - i), line});
            i = end;
            continue;
        }
        // Number (digits, hex, separators, suffixes, float dots).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            std::size_t end = i;
            while (end < n &&
                   (identChar(text[end]) || text[end] == '.' ||
                    text[end] == '\'' ||
                    ((text[end] == '+' || text[end] == '-') && end > i &&
                     (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                      text[end - 1] == 'p' || text[end - 1] == 'P'))))
                ++end;
            out.toks.push_back(
                {TokKind::Number, text.substr(i, end - i), line});
            i = end;
            continue;
        }
        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t end = i;
            while (end < n && identChar(text[end]))
                ++end;
            out.toks.push_back(
                {TokKind::Identifier, text.substr(i, end - i), line});
            i = end;
            continue;
        }
        // Punctuation, longest known sequence first.
        std::string punct(1, c);
        for (const char *p : punctuators) {
            const std::size_t len = std::char_traits<char>::length(p);
            if (text.compare(i, len, p) == 0) {
                punct = p;
                break;
            }
        }
        out.toks.push_back({TokKind::Punct, punct, line});
        i += punct.size();
    }
    return out;
}

namespace
{

const std::set<std::string> &
controlKeywords()
{
    static const std::set<std::string> kws = {
        "if",       "for",    "while",   "switch",   "return",
        "catch",    "sizeof", "alignof", "decltype", "new",
        "delete",   "throw",  "static_assert",       "assert",
        "typeid",   "case",   "do",      "else",     "co_return",
        "co_await", "defined"};
    return kws;
}

bool
isContainerName(const std::string &name)
{
    return name == "unordered_map" || name == "unordered_set" ||
           name == "unordered_multimap" ||
           name == "unordered_multiset" || name == "map" ||
           name == "set" || name == "multimap" || name == "multiset";
}

/** Join template-argument tokens back into readable type text. */
std::string
joinType(const std::vector<Token> &toks, std::size_t begin,
         std::size_t end)
{
    std::string out;
    for (std::size_t i = begin; i < end; ++i) {
        const std::string &t = toks[i].text;
        if (!out.empty() && (identStart(t[0]) || t == "*" || t == "&") &&
            identChar(out.back()))
            out += ' ';
        out += t;
    }
    return out;
}

std::string
slurpFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
skippedDir(const std::string &name)
{
    return name == ".git" || name.rfind("build", 0) == 0 ||
           name == "bench-build" || name == ".cache";
}

/**
 * Recover container declarations in one file.  Pattern:
 *   [std::] container < args... > [&*]? name
 * followed by a declarator terminator.
 */
void
scanContainers(const SourceFile &sf, std::size_t file_index,
               std::vector<ContainerDecl> &out)
{
    const std::vector<Token> &toks = sf.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier ||
            !isContainerName(toks[i].text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "<")
            continue;
        // Balanced template argument list.
        std::size_t depth = 0;
        std::size_t j = i + 1;
        std::size_t first_arg_end = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<") {
                ++depth;
            } else if (toks[j].text == ">" || toks[j].text == ">>") {
                depth -= toks[j].text == ">>" ? 2 : 1;
                if (depth == 0 || depth == static_cast<std::size_t>(-1))
                    break;
            } else if (toks[j].text == "," && depth == 1 &&
                       first_arg_end == 0) {
                first_arg_end = j;
            } else if (toks[j].text == "(" || toks[j].text == ";") {
                j = toks.size(); // not a type: comparison operator
                break;
            }
        }
        if (j >= toks.size())
            continue;
        if (first_arg_end == 0)
            first_arg_end = j;
        const std::string key_type = joinType(toks, i + 2, first_arg_end);
        // Skip references/pointers between type and name.
        std::size_t k = j + 1;
        while (k < toks.size() &&
               (toks[k].text == "&" || toks[k].text == "*"))
            ++k;
        if (k >= toks.size() || toks[k].kind != TokKind::Identifier)
            continue;
        if (k + 1 < toks.size()) {
            const std::string &next = toks[k + 1].text;
            if (next != ";" && next != "=" && next != "{" &&
                next != "," && next != ")" && next != ":")
                continue;
        }
        out.push_back({toks[k].text, toks[i].text, key_type, file_index,
                       toks[k].line});
    }
}

/**
 * Recover function definitions in one file.  A definition is a
 * name '(' params ')' [const|noexcept|override|final|trailing-return]
 * '{' at non-function scope; the brace-context stack distinguishes
 * namespace/class braces from statement braces.
 */
void
scanFunctions(const SourceFile &sf, std::size_t file_index,
              std::vector<FunctionDef> &out)
{
    const std::vector<Token> &toks = sf.toks;
    enum class Scope
    {
        Top,  // namespace / class / enum / global
        Body, // inside a function body
        Other // initializer lists, control braces inside bodies
    };
    std::vector<Scope> stack;
    auto inFunction = [&stack] {
        return std::any_of(stack.begin(), stack.end(), [](Scope s) {
            return s != Scope::Top;
        });
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == "}") {
            if (!stack.empty())
                stack.pop_back();
            continue;
        }
        if (t != "{") {
            continue;
        }
        // Classify this '{' from the tokens since the last boundary.
        std::size_t back = i;
        std::size_t paren_close = 0;
        bool type_scope = false;
        while (back-- > 0) {
            const std::string &b = toks[back].text;
            if (b == ";" || b == "{" || b == "}")
                break;
            if (b == "namespace" || b == "class" || b == "struct" ||
                b == "union" || b == "enum") {
                type_scope = true;
            }
            if (paren_close == 0 && b == ")")
                paren_close = back;
        }
        if (type_scope || inFunction() || paren_close == 0) {
            stack.push_back(type_scope && !inFunction() ? Scope::Top
                            : inFunction()              ? Scope::Other
                                                        : Scope::Other);
            // A classified function body never lands here; statement
            // braces inside bodies and type scopes do.
            if (type_scope && !inFunction())
                stack.back() = Scope::Top;
            continue;
        }
        // Walk back over the parameter list to its '('.
        std::size_t depth = 1;
        std::size_t open = paren_close;
        while (open-- > 0 && depth > 0) {
            if (toks[open].text == ")")
                ++depth;
            else if (toks[open].text == "(")
                --depth;
        }
        if (depth != 0) {
            stack.push_back(Scope::Other);
            continue;
        }
        ++open; // index of '('
        // Between ')' and '{' only qualifiers / trailing return.
        bool plausible = true;
        for (std::size_t q = paren_close + 1; q < i; ++q) {
            const std::string &qt = toks[q].text;
            if (qt == "const" || qt == "noexcept" || qt == "override" ||
                qt == "final" || qt == "mutable" || qt == "->" ||
                qt == "::" || qt == "<" || qt == ">" || qt == "*" ||
                qt == "&" || qt == "," ||
                toks[q].kind == TokKind::Identifier ||
                toks[q].kind == TokKind::Number)
                continue;
            if (qt == "(" || qt == ")")
                continue; // noexcept(...)
            plausible = false;
            break;
        }
        if (!plausible || open == 0 ||
            toks[open - 1].kind != TokKind::Identifier ||
            controlKeywords().count(toks[open - 1].text)) {
            stack.push_back(Scope::Other);
            continue;
        }
        FunctionDef fn;
        fn.name = toks[open - 1].text;
        fn.line = toks[open - 1].line;
        fn.file = file_index;
        if (open >= 3 && toks[open - 2].text == "::" &&
            toks[open - 3].kind == TokKind::Identifier)
            fn.qualifier = toks[open - 3].text;
        fn.body_begin = i;
        // Find the body extent.
        std::size_t bdepth = 1;
        std::size_t end = i + 1;
        for (; end < toks.size() && bdepth > 0; ++end) {
            if (toks[end].text == "{")
                ++bdepth;
            else if (toks[end].text == "}")
                --bdepth;
        }
        fn.body_end = end;
        // Callees: any non-keyword identifier directly before '('.
        for (std::size_t b = i + 1; b + 1 < end; ++b) {
            if (toks[b].kind == TokKind::Identifier &&
                toks[b + 1].text == "(" &&
                !controlKeywords().count(toks[b].text))
                fn.callees.push_back(toks[b].text);
        }
        std::sort(fn.callees.begin(), fn.callees.end());
        fn.callees.erase(
            std::unique(fn.callees.begin(), fn.callees.end()),
            fn.callees.end());
        out.push_back(std::move(fn));
        stack.push_back(Scope::Body);
    }
}

} // namespace

const ContainerDecl *
Model::containerFor(std::size_t file, const std::string &var) const
{
    const ContainerDecl *same_file = nullptr;
    const ContainerDecl *elsewhere = nullptr;
    std::size_t elsewhere_count = 0;
    for (const ContainerDecl &d : containers) {
        if (d.var != var)
            continue;
        if (d.file == file) {
            same_file = &d; // last decl before use would be stricter;
                            // any same-file decl is close enough
        } else {
            elsewhere = &d;
            ++elsewhere_count;
        }
    }
    if (same_file)
        return same_file;
    return elsewhere_count == 1 ? elsewhere : nullptr;
}

const FunctionDef *
Model::enclosingFunction(std::size_t file, std::size_t tok) const
{
    const FunctionDef *best = nullptr;
    for (const FunctionDef &fn : functions) {
        if (fn.file != file || tok < fn.body_begin || tok >= fn.body_end)
            continue;
        if (!best || fn.body_begin > best->body_begin)
            best = &fn;
    }
    return best;
}

std::set<std::size_t>
Model::reachableFrom(const std::set<std::size_t> &roots) const
{
    std::set<std::size_t> seen = roots;
    std::vector<std::size_t> work(roots.begin(), roots.end());
    while (!work.empty()) {
        const std::size_t fi = work.back();
        work.pop_back();
        for (const std::string &callee : functions[fi].callees) {
            auto [lo, hi] = functions_by_name.equal_range(callee);
            for (auto it = lo; it != hi; ++it) {
                if (seen.insert(it->second).second)
                    work.push_back(it->second);
            }
        }
    }
    return seen;
}

std::vector<std::string>
includeSearchDirs(const std::string &root)
{
    // Prefer what the real build used: any compile_commands.json in
    // the conventional build trees (newest first so a reconfigured
    // tree wins).
    std::vector<fs::path> candidates;
    std::error_code ec;
    for (fs::directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_directory())
            continue;
        const std::string name = it->path().filename().string();
        if (name.rfind("build", 0) == 0 || name == "bench-build") {
            fs::path cc = it->path() / "compile_commands.json";
            if (fs::exists(cc, ec))
                candidates.push_back(cc);
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const fs::path &a, const fs::path &b) {
                  std::error_code e;
                  return fs::last_write_time(a, e) >
                         fs::last_write_time(b, e);
              });

    std::vector<std::string> dirs;
    auto add = [&dirs](const std::string &dir) {
        if (std::find(dirs.begin(), dirs.end(), dir) == dirs.end())
            dirs.push_back(dir);
    };
    for (const fs::path &cc : candidates) {
        const std::string text = slurpFile(cc);
        // Extract -I<dir> / -isystem <dir> arguments that point inside
        // the repo; no full JSON parse needed for that.
        for (std::size_t pos = 0;
             (pos = text.find("-I", pos)) != std::string::npos;) {
            pos += 2;
            std::size_t end = text.find_first_of(" \"\\", pos);
            if (end == std::string::npos)
                break;
            std::string dir = text.substr(pos, end - pos);
            if (!dir.empty() &&
                dir.rfind(fs::path(root).string(), 0) == 0)
                add(dir);
            pos = end;
        }
        if (!dirs.empty())
            break;
    }
    if (dirs.empty()) {
        // Source-layout fallback, mirroring the CMake include setup.
        for (const char *sub : {"src", "tools/uvmsim_lint", "bench"}) {
            fs::path dir = fs::path(root) / sub;
            if (fs::is_directory(dir, ec))
                add(dir.string());
        }
    }
    return dirs;
}

Model
buildModel(const std::string &root,
           const std::vector<std::string> &subdirs)
{
    Model model;
    model.include_dirs = includeSearchDirs(root);

    const std::vector<std::string> exts = {".cc", ".hh", ".cpp", ".h"};
    std::vector<fs::path> paths;
    for (const std::string &sub : subdirs) {
        fs::path dir = fs::path(root) / sub;
        std::error_code ec;
        if (!fs::is_directory(dir, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec)
                break;
            if (it->is_directory() &&
                skippedDir(it->path().filename().string())) {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (std::find(exts.begin(), exts.end(), ext) != exts.end())
                paths.push_back(it->path());
        }
    }
    std::sort(paths.begin(), paths.end());

    for (const fs::path &path : paths) {
        std::error_code ec;
        fs::path rel = fs::relative(path, root, ec);
        const std::string rel_str =
            ec ? path.string() : rel.generic_string();
        SourceFile sf = lexSource(rel_str, slurpFile(path));
        const std::size_t file_index = model.files.size();
        scanContainers(sf, file_index, model.containers);
        scanFunctions(sf, file_index, model.functions);
        model.files.push_back(std::move(sf));
    }
    for (std::size_t i = 0; i < model.functions.size(); ++i)
        model.functions_by_name.emplace(model.functions[i].name, i);
    return model;
}

} // namespace uvmsim::lint::cxx
