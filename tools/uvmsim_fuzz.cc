/**
 * @file
 * uvmsim_fuzz -- differential fuzzing front end.
 *
 * Default mode draws --seeds random workload specs, sweeps each across
 * the canonical prefetcher x eviction matrix (or an explicit --combos
 * list), and runs every (spec, combo) cell through the differential
 * harness: the real event-driven simulator (state auditor on) against
 * the timing-free functional oracle.  Cells run concurrently on a
 * RunExecutor pool (--jobs).  Any mismatch prints a structured report
 * with the reproducing spec string; the first mismatch is then
 * greedily minimized (disable with --no-minimize).
 *
 * --repro=SPEC re-runs one exact spec string (as printed by a failing
 * run) and --minimize shrinks it; --mutate=NAME injects a deliberate
 * semantic bug into the oracle so the harness can prove it catches
 * and shrinks real disagreements (the nightly self-test).
 *
 * Examples:
 *   uvmsim_fuzz --seeds=256 --jobs=8
 *   uvmsim_fuzz --seeds=64 --combos=TBNp:TBNe,Rp:Re
 *   uvmsim_fuzz --repro='seed=7/pf=TBNp/.../k=stream:0:200:1:0.25'
 *   uvmsim_fuzz --seeds=8 --mutate=tbne-at-half   # must mismatch
 *
 * Exit status: 0 when every cell agreed (or, under --mutate, when the
 * seeded bug was caught), 1 on any unexpected outcome.
 */

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "api/result_store.hh"
#include "api/run_executor.hh"
#include "sim/atomic_file.hh"
#include "sim/options.hh"
#include "testing/differential.hh"
#include "testing/minimizer.hh"
#include "testing/workload_gen.hh"

using namespace uvmsim;
using namespace uvmsim::fuzzing;

namespace
{

void
usage()
{
    std::printf(
        "uvmsim_fuzz -- differential fuzzing: random workloads, real "
        "simulator vs functional oracle\n\n"
        "options:\n"
        "  --seeds=N          number of random workload specs "
        "(default 64)\n"
        "  --seed-base=N      first seed (default 1)\n"
        "  --jobs=K           concurrent differential runs (default "
        "hardware concurrency)\n"
        "  --combos=LIST      comma list of PF:EV pairs (default: the "
        "six canonical combos)\n"
        "  --repro=SPEC       re-run one exact spec string instead of "
        "fuzzing\n"
        "  --minimize         greedily shrink the failing spec "
        "(default for fuzz mode; opt-in for --repro)\n"
        "  --no-minimize      never run the minimizer\n"
        "  --mutate=NAME      seed a deliberate oracle bug: "
        "tbne-at-half|tbnp-at-half|evict-keeps-mark\n"
        "  --tenants=N        force every generated spec to N tenants "
        "(default: the generator draws 1..4)\n"
        "  --tenant-eviction=P force the cross-tenant policy: "
        "globalLru|staticQuota|proportionalShare\n"
        "  --out=PATH         write the minimized repro spec string "
        "to PATH\n"
        "  --store=DIR        persistent result store: cells that "
        "already agreed in an earlier campaign are skipped (failing "
        "cells always re-run)\n"
        "  --verbose          print every cell, not just mismatches\n"
        "  --help             print this text\n");
}

struct CellOutcome
{
    std::string label;
    DiffResult diff;
    bool panicked = false;
    std::string panic_what;
};

void
writeRepro(const std::string &path, const FuzzSpec &spec,
           const std::string &report)
{
    // Atomic publish: a repro artifact is either complete or absent,
    // never a truncated spec a later --repro run would misparse.
    publishFile(path, toSpecString(spec) + "\n\n" + report);
}

/** Minimize and report; returns the minimized spec string. */
std::string
minimizeAndReport(const FuzzSpec &spec, OracleMutation mutation)
{
    std::printf("minimizing...\n");
    MinimizeResult min = minimize(spec, mutation, [](const FuzzSpec &s) {
        std::printf("  shrunk to: %s\n", toSpecString(s).c_str());
    });
    std::printf("minimized after %llu probes (%llu accepted):\n%s",
                static_cast<unsigned long long>(min.probes),
                static_cast<unsigned long long>(min.accepted),
                min.diff.report.c_str());
    std::printf("repro: uvmsim_fuzz --repro='%s'%s%s\n",
                toSpecString(min.spec).c_str(),
                mutation != OracleMutation::none ? " --mutate=" : "",
                mutation != OracleMutation::none
                    ? toString(mutation).c_str()
                    : "");
    return toSpecString(min.spec);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }

    OracleMutation mutation = OracleMutation::none;
    if (opts.has("mutate"))
        mutation = mutationFromString(opts.get("mutate"));

    bool want_minimize = !opts.getBool("no-minimize");
    const std::string out_path = opts.get("out");

    // --repro: one exact spec, optional minimization.
    if (opts.has("repro")) {
        FuzzSpec spec = specFromString(opts.get("repro"));
        DiffResult diff = runDifferential(spec, mutation);
        if (!diff.mismatch) {
            std::printf("repro OK: simulator and oracle agree on %s\n",
                        toSpecString(spec).c_str());
            return mutation == OracleMutation::none ? 0 : 1;
        }
        std::printf("%s", diff.report.c_str());
        if (want_minimize && opts.getBool("minimize")) {
            std::string min_spec = minimizeAndReport(spec, mutation);
            if (!out_path.empty())
                writeRepro(out_path, specFromString(min_spec),
                           diff.report);
        } else if (!out_path.empty()) {
            writeRepro(out_path, spec, diff.report);
        }
        return mutation == OracleMutation::none ? 1 : 0;
    }

    // Fuzz mode: seeds x combos.
    const std::uint64_t num_seeds = opts.getUint("seeds", 64);
    const std::uint64_t seed_base = opts.getUint("seed-base", 1);
    const std::size_t jobs =
        static_cast<std::size_t>(opts.getUint("jobs", 0));
    const bool verbose = opts.getBool("verbose");

    std::vector<PolicyCombo> combos;
    if (opts.has("combos")) {
        for (const std::string &name : opts.getList("combos", {}))
            combos.push_back(comboFromString(name));
    } else {
        combos = canonicalCombos();
    }
    if (combos.empty())
        fatal("empty --combos list");

    struct Cell
    {
        FuzzSpec spec;
        std::string label;
    };
    std::vector<Cell> cells;
    std::size_t multi_tenant_cells = 0;
    for (std::uint64_t i = 0; i < num_seeds; ++i) {
        FuzzSpec base = generateSpec(seed_base + i);
        if (opts.has("tenants")) {
            base.tenants = static_cast<std::uint32_t>(
                opts.getUint("tenants", 1));
        }
        if (opts.has("tenant-eviction")) {
            base.tenant_eviction =
                tenantEvictionFromString(opts.get("tenant-eviction"));
        }
        std::string problem = specProblem(base);
        if (!problem.empty()) {
            // Forced tenant counts can bust the footprint limits of
            // individual seeds; drop those cells rather than dying.
            if (verbose)
                std::printf("[skip] seed %llu: %s\n",
                            static_cast<unsigned long long>(
                                seed_base + i),
                            problem.c_str());
            continue;
        }
        if (base.tenants > 1)
            ++multi_tenant_cells;
        for (const PolicyCombo &combo : combos) {
            Cell cell;
            cell.spec = withCombo(base, combo);
            cell.label = "seed " + std::to_string(seed_base + i) + " " +
                         fuzzing::toString(combo);
            cells.push_back(std::move(cell));
        }
    }

    std::printf("fuzzing %llu seeds x %zu combos = %zu differential "
                "runs (%zu multi-tenant seeds)\n",
                static_cast<unsigned long long>(num_seeds),
                combos.size(), cells.size(), multi_tenant_cells);

    // Agreed cells from earlier campaigns are skipped via the store;
    // a failing cell is never cached, so regressions always re-run.
    // The key covers the full spec string and the mutation, so a
    // mutated-oracle campaign cannot alias a clean one.
    std::optional<ResultStore> store;
    if (opts.has("store"))
        store.emplace(opts.get("store"));
    auto cellKey = [mutation](const Cell &cell) {
        return "fuzz|" + toSpecString(cell.spec) +
               "|mut=" + fuzzing::toString(mutation);
    };

    // Fan the cells out on the pool; results land by index.  fatal()
    // and panic() terminate the whole process -- that is itself a
    // reportable fuzz outcome, and the cell label printed below
    // narrows it to a seed.
    std::vector<CellOutcome> outcomes(cells.size());
    std::vector<bool> from_store(cells.size(), false);
    RunExecutor executor(jobs);
    std::vector<RunExecutor::Task> tasks;
    std::vector<std::size_t> task_cells;
    tasks.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        outcomes[i].label = cells[i].label;
        if (store && store->load(cellKey(cells[i]))) {
            from_store[i] = true; // agreed before; counts as matched
            continue;
        }
        task_cells.push_back(i);
        tasks.push_back([&cells, &outcomes, i, mutation]() {
            outcomes[i].diff = runDifferential(cells[i].spec, mutation);
            return RunResult{};
        });
    }
    std::vector<RunExecutor::Outcome> task_outcomes =
        executor.runTasks(tasks);
    for (std::size_t t = 0; t < task_outcomes.size(); ++t) {
        const std::size_t i = task_cells[t];
        if (task_outcomes[t].ok())
            continue;
        outcomes[i].panicked = true;
        try {
            std::rethrow_exception(task_outcomes[t].error);
        } catch (const std::exception &e) {
            outcomes[i].panic_what = e.what();
        } catch (...) {
            outcomes[i].panic_what = "unknown exception";
        }
    }
    if (store) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!from_store[i] && !outcomes[i].panicked &&
                !outcomes[i].diff.mismatch)
                store->publish(cellKey(cells[i]), "agree");
        }
        ResultStore::Counters c = store->counters();
        std::fprintf(stderr,
                     "store: hits=%llu misses=%llu quarantined=%llu "
                     "stores=%llu\n",
                     static_cast<unsigned long long>(c.hits),
                     static_cast<unsigned long long>(c.misses),
                     static_cast<unsigned long long>(c.quarantined),
                     static_cast<unsigned long long>(c.stores));
    }

    std::size_t mismatched = 0;
    const CellOutcome *first_failure = nullptr;
    for (const CellOutcome &outcome : outcomes) {
        bool failed = outcome.panicked || outcome.diff.mismatch;
        if (failed) {
            ++mismatched;
            if (!first_failure)
                first_failure = &outcome;
            std::printf("[FAIL] %s\n", outcome.label.c_str());
            if (outcome.panicked)
                std::printf("  exception: %s\n",
                            outcome.panic_what.c_str());
            else
                std::printf("%s", outcome.diff.report.c_str());
        } else if (verbose) {
            std::printf("[ ok ] %s\n", outcome.label.c_str());
        }
    }

    std::printf("%zu/%zu cells %s\n", cells.size() - mismatched,
                cells.size(),
                mutation == OracleMutation::none
                    ? "matched"
                    : "matched (mutated oracle: expected mismatches)");

    if (mutation != OracleMutation::none) {
        // Self-test: the seeded bug must be caught somewhere...
        if (mismatched == 0) {
            std::printf("mutation '%s' was NOT caught -- the harness "
                        "is blind to it\n",
                        fuzzing::toString(mutation).c_str());
            return 1;
        }
        // ...and the minimizer must shrink the catch.
        if (want_minimize && first_failure && !first_failure->panicked) {
            std::string min_spec = minimizeAndReport(
                first_failure->diff.spec, mutation);
            if (!out_path.empty())
                writeRepro(out_path, specFromString(min_spec),
                           first_failure->diff.report);
        }
        return 0;
    }

    if (mismatched > 0) {
        if (want_minimize && first_failure && !first_failure->panicked) {
            std::string min_spec = minimizeAndReport(
                first_failure->diff.spec, mutation);
            if (!out_path.empty())
                writeRepro(out_path, specFromString(min_spec),
                           first_failure->diff.report);
        } else if (!out_path.empty() && first_failure &&
                   !first_failure->panicked) {
            writeRepro(out_path, first_failure->diff.spec,
                       first_failure->diff.report);
        }
        return 1;
    }
    return 0;
}
