/**
 * @file
 * uvmsim_sweep -- generic one-dimensional parameter sweeps.
 *
 * Sweeps one configuration axis over a set of workloads and prints a
 * metric table, so new experiments don't require writing a bench
 * binary.  All (benchmark, value) cells are independent simulations,
 * so they run concurrently on a RunExecutor pool sized by --jobs
 * (default: hardware concurrency; --jobs=1 restores serial
 * execution).  The table is identical for every --jobs value.
 *
 * With --store=DIR, results persist in a sharded on-disk store keyed
 * by the canonical job key: a repeated sweep completes on store hits
 * alone, and concurrent invocations share work.  --workers=N forks N
 * worker processes that claim cells in the store (claim-or-skip is
 * work stealing; a crashed worker's claim expires by age) while the
 * parent merges every cell into the final table/CSV, recomputing any
 * cell no worker completed.
 *
 * Examples:
 *   uvmsim_sweep --axis=oversubscription --values=105,110,125,150 \
 *                --benchmarks=hotspot,nw --metric=kernel_ms
 *   uvmsim_sweep --axis=eviction --values=LRU4K,Re,SLe,TBNe,LRU2MB \
 *                --oversubscription=110 --metric=pages_thrashed
 *   uvmsim_sweep --axis=fault-us --values=15,30,45,90 --jobs=8
 *   uvmsim_sweep --axis=reserve --values=0,5,10,20,40
 *   uvmsim_sweep --store=/tmp/uvmstore --workers=4 --csv=sweep.csv
 */

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include <sys/wait.h>
#include <unistd.h>

#include "api/result_store.hh"
#include "api/run_executor.hh"
#include "api/simulator.hh"
#include "sim/atomic_file.hh"
#include "sim/options.hh"

using namespace uvmsim;

namespace
{

void
usage()
{
    std::printf(
        "uvmsim_sweep -- one-dimensional parameter sweeps over the "
        "workload suite\n\n"
        "options:\n"
        "  --axis=NAME              swept axis: oversubscription|"
        "eviction|prefetcher|reserve|buffer|fault-us|fault-batch|"
        "warps|walkers|tenants|tenant-eviction\n"
        "  --values=V[,V..]         axis values (default "
        "105,110,125,150)\n"
        "  --benchmarks=N[,N..]     workloads to sweep (default: the "
        "paper suite)\n"
        "  --replay=PATH[,PATH..]   also sweep recorded trace files "
        "(text or .uvmt); with no --benchmarks, sweeps only the "
        "traces\n"
        "  --metric=NAME            kernel_ms|far_faults|pages_migrated"
        "|pages_evicted|pages_thrashed|read_bw_gbps, or any raw stat "
        "name\n"
        "  --scale=F                problem size multiplier "
        "(default 1.0)\n"
        "  --workload-seed=N        workload-generation seed "
        "(default 42)\n"
        "  --oversubscription=PCT   base config when not the axis "
        "(default 110)\n"
        "  --prefetcher=P           base prefetcher (default TBNp)\n"
        "  --prefetcher-after=P     base post-capacity prefetcher\n"
        "  --eviction=E             base eviction policy (default "
        "TBNe)\n"
        "  --reserve=PCT            base LRU reservation %%\n"
        "  --buffer=PCT             base free-page buffer %%\n"
        "  --seed=N                 policy RNG seed (default 1)\n"
        "  --tenants=N              tenants sharing the device when "
        "not the axis (default 1)\n"
        "  --tenant-eviction=P      cross-tenant victim arbitration: "
        "globalLru|staticQuota|proportionalShare\n"
        "  --serialize-streams      serialize tenant kernel streams "
        "round-robin (default: concurrent)\n"
        "  --audit                  run every cell with the state "
        "auditor on\n"
        "  --trace=SPEC             event tracing per cell (see "
        "uvmsim_run)\n"
        "  --trace-out=PATH         artifact base path per traced "
        "cell\n"
        "  --epoch-ticks=N          time-series epoch length in "
        "ticks\n"
        "  --jobs=N                 concurrent cells (default: "
        "hardware concurrency)\n"
        "  --store=DIR              persistent result store: cells "
        "already in the store are not recomputed, new results are "
        "published for later runs\n"
        "  --workers=N              fork N worker processes that "
        "claim cells in the store (requires --store); the parent "
        "merges and completes the table\n"
        "  --claim-ttl-s=N          age in seconds after which "
        "another worker may break a cell claim left by a crashed "
        "worker (default 300)\n"
        "  --csv=PATH               also publish the result grid as "
        "CSV (written atomically: temp + rename)\n"
        "  --cache-bytes=N          in-process result cache bound in "
        "bytes (0 = unbounded)\n"
        "  --worker-kill-after=N    test hook: worker 0 kills itself "
        "(SIGKILL) after claiming its Nth cell, leaving a stale "
        "claim\n"
        "  --help                   print this text\n");
}

SimConfig
baseConfig(const Options &opts)
{
    SimConfig cfg;
    cfg.oversubscription_percent =
        opts.getDouble("oversubscription", 110.0);
    cfg.prefetcher_before =
        prefetcherFromString(opts.get("prefetcher", "TBNp"));
    cfg.prefetcher_after = prefetcherFromString(
        opts.get("prefetcher-after", opts.get("prefetcher", "TBNp")));
    cfg.eviction = evictionFromString(opts.get("eviction", "TBNe"));
    cfg.lru_reserve_percent = opts.getDouble("reserve", 0.0);
    cfg.free_buffer_percent = opts.getDouble("buffer", 0.0);
    cfg.seed = opts.getUint("seed", 1);
    cfg.tenants =
        static_cast<std::uint32_t>(opts.getUint("tenants", 1));
    cfg.tenant_eviction = tenantEvictionFromString(
        opts.get("tenant-eviction", "globalLru"));
    cfg.serialize_kernel_streams = opts.getBool("serialize-streams");
    cfg.audit = opts.getBool("audit");
    cfg.trace_spec = opts.get("trace", "");
    if (!cfg.trace_spec.empty()) {
        cfg.trace_out = opts.get("trace-out", "uvmsim_sweep");
        cfg.epoch_ticks = opts.getUint("epoch-ticks", cfg.epoch_ticks);
    }
    return cfg;
}

/**
 * Strict numeric parsing for axis values: strtod/strtoull accept
 * garbage ("abc" reads as 0, "12x" as 12) which would silently sweep
 * the wrong configuration -- reject anything but a complete number.
 */
double
axisDouble(const std::string &axis, const std::string &value)
{
    const char *s = value.c_str();
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (value.empty() || end == s || *end != '\0')
        fatal("axis '%s': invalid numeric value '%s'", axis.c_str(),
              value.c_str());
    return v;
}

std::uint64_t
axisUint(const std::string &axis, const std::string &value)
{
    const char *s = value.c_str();
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (value.empty() || end == s || *end != '\0' ||
        value.find('-') != std::string::npos)
        fatal("axis '%s': invalid unsigned integer value '%s'",
              axis.c_str(), value.c_str());
    return v;
}

void
applyAxis(SimConfig &cfg, const std::string &axis,
          const std::string &value)
{
    if (axis == "oversubscription") {
        cfg.oversubscription_percent = axisDouble(axis, value);
    } else if (axis == "eviction") {
        cfg.eviction = evictionFromString(value);
    } else if (axis == "prefetcher") {
        cfg.prefetcher_before = prefetcherFromString(value);
        cfg.prefetcher_after = cfg.prefetcher_before;
    } else if (axis == "reserve") {
        cfg.lru_reserve_percent = axisDouble(axis, value);
    } else if (axis == "buffer") {
        cfg.free_buffer_percent = axisDouble(axis, value);
    } else if (axis == "fault-us") {
        cfg.fault_latency = microseconds(axisUint(axis, value));
    } else if (axis == "fault-batch") {
        cfg.fault_batch_size =
            static_cast<std::uint32_t>(axisUint(axis, value));
    } else if (axis == "warps") {
        cfg.gpu.max_warps_per_sm =
            static_cast<std::uint32_t>(axisUint(axis, value));
    } else if (axis == "walkers") {
        cfg.page_walkers =
            static_cast<std::uint32_t>(axisUint(axis, value));
    } else if (axis == "tenants") {
        cfg.tenants = static_cast<std::uint32_t>(axisUint(axis, value));
    } else if (axis == "tenant-eviction") {
        cfg.tenant_eviction = tenantEvictionFromString(value);
    } else {
        fatal("unknown sweep axis '%s' (oversubscription|eviction|"
              "prefetcher|reserve|buffer|fault-us|fault-batch|warps|"
              "walkers|tenants|tenant-eviction)",
              axis.c_str());
    }
}

/**
 * One forked worker: walk the cell ring starting at this worker's
 * stagger offset, claim-or-skip each cell, compute claimed cells
 * through a store-attached executor (which publishes the result).
 * Everything a worker produces lives in the store; the parent never
 * reads worker memory, so a SIGKILLed worker costs only its
 * incomplete cell.
 */
int
workerMain(const std::vector<RunJob> &jobs, std::size_t worker_index,
           std::size_t num_workers, const std::string &store_dir,
           std::size_t exec_threads, std::uint64_t claim_ttl_s,
           std::uint64_t kill_after)
{
    ResultStore store(store_dir);
    RunExecutor executor(exec_threads);
    executor.attachStore(&store);
    const std::string owner = "worker" + std::to_string(worker_index) +
                              ":pid" + std::to_string(::getpid());

    const std::size_t n = jobs.size();
    const std::size_t start = n == 0 ? 0 : worker_index * n / num_workers;
    std::uint64_t claimed = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (start + k) % n;
        const std::string key = runJobKey(jobs[idx]);
        if (store.load(key)) {
            // Already computed (this run or a previous one).  A claim
            // outliving its TTL here is leftover from a crashed
            // worker whose cell someone else finished: sweep it up.
            store.breakClaimIfStale(key, claim_ttl_s);
            continue;
        }
        if (!store.tryClaim(key, owner)) {
            // Held by a live worker -- skip -- unless it outlived the
            // TTL (crashed holder), in which case break it and race
            // for the re-claim.
            if (!store.breakClaimIfStale(key, claim_ttl_s))
                continue;
            if (!store.tryClaim(key, owner))
                continue;
        }
        ++claimed;
        if (kill_after != 0 && worker_index == 0 && claimed == kill_after) {
            // Test hook: die like a crashed worker, claim still held.
            ::raise(SIGKILL);
        }
        if (store.load(key)) {
            // Raced with another worker's publish between our load
            // and claim; nothing to do.
            store.releaseClaim(key);
            continue;
        }
        executor.runBatch({jobs[idx]});
        store.releaseClaim(key);
    }
    return 0;
}

double
metric(const RunResult &r, const std::string &name)
{
    if (name == "kernel_ms")
        return r.kernelTimeMs();
    if (name == "far_faults")
        return r.farFaults();
    if (name == "pages_migrated")
        return r.pagesMigrated();
    if (name == "pages_evicted")
        return r.pagesEvicted();
    if (name == "pages_thrashed")
        return r.pagesThrashed();
    if (name == "read_bw_gbps")
        return r.avgReadBandwidthGBps();
    // Fall through to a raw stat name.
    return r.stat(name);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    std::string axis = opts.get("axis", "oversubscription");
    auto values = opts.getList("values", {"105", "110", "125", "150"});
    auto replays = opts.getList("replay", {});
    auto benchmarks = opts.getList(
        "benchmarks", replays.empty() ? allWorkloadNames()
                                      : std::vector<std::string>{});
    std::string metric_name = opts.get("metric", "kernel_ms");

    WorkloadParams params;
    params.size_scale = opts.getDouble("scale", 1.0);
    params.seed = opts.getUint("workload-seed", 42);

    // Each grid row is one workload: a named generator, or a recorded
    // trace file replayed through the "trace" workload.
    struct Row
    {
        std::string label;
        std::string workload;
        WorkloadParams params;
    };
    std::vector<Row> rows;
    for (const std::string &bench : benchmarks)
        rows.push_back({bench, bench, params});
    for (const std::string &path : replays) {
        WorkloadParams p = params;
        p.trace_path = path;
        // Label the row by file name; the directory part would only
        // widen the table.
        const std::size_t slash = path.find_last_of('/');
        rows.push_back({slash == std::string::npos
                            ? path
                            : path.substr(slash + 1),
                        "trace", p});
    }
    if (rows.empty())
        fatal("nothing to sweep: pass --benchmarks and/or --replay");

    // Phase 1: materialize the whole (row x value) grid so the
    // executor can run every cell concurrently.
    std::vector<RunJob> jobs;
    for (const Row &row : rows) {
        for (const std::string &value : values) {
            SimConfig cfg = baseConfig(opts);
            applyAxis(cfg, axis, value);
            // Each traced sweep cell writes its own artifact pair.
            if (!cfg.trace_out.empty())
                cfg.trace_out += "-" + row.label + "-" + value;
            jobs.push_back(RunJob{row.workload, cfg, row.params});
        }
    }

    const std::string store_dir = opts.get("store", "");
    const std::size_t num_workers =
        static_cast<std::size_t>(opts.getUint("workers", 0));
    const std::size_t exec_threads =
        static_cast<std::size_t>(opts.getUint("jobs", 0));
    const std::uint64_t claim_ttl_s = opts.getUint("claim-ttl-s", 300);
    const std::uint64_t kill_after = opts.getUint("worker-kill-after", 0);

    if (num_workers > 0) {
        if (store_dir.empty())
            fatal("--workers requires --store (claims and results "
                  "live in the store)");
        // Fork before any RunExecutor exists: no threads yet, so the
        // children are clean single-threaded copies holding the same
        // enumerated job grid.
        std::fflush(stdout);
        std::fflush(stderr);
        std::vector<pid_t> pids;
        for (std::size_t w = 0; w < num_workers; ++w) {
            pid_t pid = ::fork();
            if (pid < 0)
                fatal("fork failed: %s", std::strerror(errno));
            if (pid == 0) {
                int rc = workerMain(jobs, w, num_workers, store_dir,
                                    exec_threads, claim_ttl_s,
                                    kill_after);
                std::_Exit(rc);
            }
            pids.push_back(pid);
        }
        // Crashed workers are expected (that is the point of the
        // store): collect them all, then self-heal below.
        for (pid_t pid : pids) {
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }

    // Merge pass (also the whole story when --workers is off): read
    // every cell through the store when one is attached, computing
    // whatever is missing -- including cells a crashed worker claimed
    // but never finished.
    RunExecutor executor(exec_threads);
    std::optional<ResultStore> store;
    if (!store_dir.empty()) {
        store.emplace(store_dir);
        executor.attachStore(&*store);
    }
    if (opts.has("cache-bytes"))
        executor.setCacheCapacity(
            opts.getUint("cache-bytes", RunExecutor::default_cache_bytes));
    std::vector<RunResult> results = executor.runBatch(jobs);

    // Phase 2: print the table exactly as the serial sweep did.
    std::printf("sweep: axis=%s metric=%s\n", axis.c_str(),
                metric_name.c_str());
    std::printf("%-12s", "benchmark");
    for (const auto &v : values)
        std::printf(" %14s", v.c_str());
    std::printf("\n");

    std::size_t cell = 0;
    for (const Row &row : rows) {
        std::printf("%-12s", row.label.c_str());
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::printf(" %14.3f", metric(results[cell++], metric_name));
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    // Publish the grid as CSV (atomically: a crashed or interrupted
    // run never leaves a truncated file for downstream parsers).
    const std::string csv_path = opts.get("csv", "");
    if (!csv_path.empty()) {
        std::string csv = "benchmark,value," + metric_name + "\n";
        cell = 0;
        for (const Row &row : rows) {
            for (const std::string &value : values) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.17g",
                              metric(results[cell++], metric_name));
                csv += row.label + "," + value + "," + buf + "\n";
            }
        }
        publishFile(csv_path, csv);
    }

    // Machine-parseable store effectiveness line (CI gates on it).
    if (store) {
        ResultStore::Counters c = store->counters();
        std::fprintf(stderr,
                     "store: hits=%" PRIu64 " misses=%" PRIu64
                     " quarantined=%" PRIu64 " stores=%" PRIu64 "\n",
                     c.hits, c.misses, c.quarantined, c.stores);
    }

    // Multi-tenant cells carry per-tenant attribution; break it out
    // under the main table so fairness across tenants is visible.
    bool any_tenant_stats = false;
    for (const RunResult &r : results)
        any_tenant_stats |= r.stats.count("tenant0.far_faults") > 0;
    if (any_tenant_stats) {
        std::printf("\nper-tenant: faults/migrated/evicted/"
                    "evicted_cross\n");
        cell = 0;
        for (const Row &row : rows) {
            for (const std::string &value : values) {
                const RunResult &r = results[cell++];
                if (!r.stats.count("tenant0.far_faults"))
                    continue;
                std::printf("%-12s %-8s", row.label.c_str(),
                            value.c_str());
                for (std::uint32_t t = 0;; ++t) {
                    const std::string pre =
                        "tenant" + std::to_string(t);
                    if (!r.stats.count(pre + ".far_faults"))
                        break;
                    std::printf(
                        "  t%u %.0f/%.0f/%.0f/%.0f", t,
                        r.stat(pre + ".far_faults"),
                        r.stat(pre + ".pages_migrated"),
                        r.stat(pre + ".pages_evicted"),
                        r.stat(pre + ".pages_evicted_cross"));
                }
                std::printf("\n");
            }
        }
    }
    return 0;
}
