/**
 * @file
 * uvmsim_trace -- trace-file toolbox.
 *
 * Converts between the text trace format and the compact binary
 * .uvmt encoding, records any synthetic workload class as a trace,
 * and inspects/validates trace files.  All subcommands stream: memory
 * stays bounded however large the trace is.
 *
 * Usage:
 *   uvmsim_trace convert  --in=PATH --out=PATH [--to=text|uvmt]
 *   uvmsim_trace record   --workload=NAME --out=PATH [--to=text|uvmt]
 *   uvmsim_trace stat     --in=PATH
 *   uvmsim_trace validate --in=PATH
 *
 * Examples:
 *   uvmsim_trace convert --in=examples/traces/vecadd.trace \
 *                        --out=vecadd.uvmt
 *   uvmsim_trace record --workload=dbbuffer --scale=4 --out=db.uvmt
 *   uvmsim_trace stat --in=db.uvmt
 */

#include <cstdio>
#include <fstream>

#include "sim/logging.hh"
#include "sim/options.hh"
#include "workloads/trace_file.hh"
#include "workloads/trace_record.hh"
#include "workloads/uvmt.hh"
#include "workloads/workload.hh"

using namespace uvmsim;

namespace
{

void
usage()
{
    std::printf(
        "uvmsim_trace -- convert, record and inspect uvmsim trace "
        "files\n\n"
        "subcommands:\n"
        "  convert   translate a trace between text and binary .uvmt\n"
        "  record    drain a synthetic workload class into a trace\n"
        "  stat      print a trace's header and record counts\n"
        "  validate  check a trace end to end; exit 0 when well-"
        "formed\n\n"
        "options:\n"
        "  --in=PATH            input trace (text or .uvmt, sniffed "
        "from the magic bytes)\n"
        "  --out=PATH           output trace path\n"
        "  --to=FMT             output encoding: text or uvmt "
        "(default: uvmt when --out ends in .uvmt, else text)\n"
        "  --workload=NAME      workload class to record (record "
        "only)\n"
        "  --scale=F            problem size multiplier (default "
        "1.0)\n"
        "  --iterations=N       override the workload's iteration "
        "count\n"
        "  --workload-seed=N    workload-generation seed (default "
        "42)\n"
        "  --warps=N            warps per thread block (default 4)\n"
        "  --help               print this text\n");
}

/** Pick the output encoding from --to, defaulting by extension. */
bool
wantsBinary(const Options &opts, const std::string &out_path)
{
    const std::string to = opts.get("to", "");
    if (to == "uvmt")
        return true;
    if (to == "text")
        return false;
    if (!to.empty())
        fatal("--to expects 'text' or 'uvmt', got '%s'", to.c_str());
    const std::string ext = ".uvmt";
    return out_path.size() >= ext.size() &&
           out_path.compare(out_path.size() - ext.size(), ext.size(),
                            ext) == 0;
}

std::string
requireOpt(std::string value, const char *name)
{
    if (value.empty())
        fatal("missing required option --%s (see --help)", name);
    return value;
}

/** Open the output file and the matching sink. */
struct OpenedSink
{
    std::ofstream file;
    std::unique_ptr<tracefmt::TraceSink> sink;
};

OpenedSink
openSink(const std::string &path, bool binary)
{
    OpenedSink out;
    out.file.open(path, binary ? std::ios::binary | std::ios::trunc
                               : std::ios::trunc);
    if (!out.file)
        fatal("cannot open output file '%s'", path.c_str());
    out.sink = binary ? tracefmt::makeUvmtSink(out.file)
                      : tracefmt::makeTextTraceSink(out.file);
    return out;
}

int
cmdConvert(const Options &opts)
{
    const std::string in_path = requireOpt(opts.get("in", ""), "in");
    const std::string out_path =
        requireOpt(opts.get("out", ""), "out");
    OpenedTrace in = openTraceFile(in_path);
    OpenedSink out = openSink(out_path, wantsBinary(opts, out_path));
    tracefmt::pumpTrace(*in.source, *out.sink);
    std::printf("converted %s -> %s (%llu kernels, %llu records)\n",
                in_path.c_str(), out_path.c_str(),
                static_cast<unsigned long long>(
                    in.source->kernelCount()),
                static_cast<unsigned long long>(
                    in.source->recordCount()));
    return 0;
}

int
cmdRecord(const Options &opts)
{
    const std::string name =
        requireOpt(opts.get("workload", ""), "workload");
    const std::string out_path =
        requireOpt(opts.get("out", ""), "out");
    WorkloadParams params;
    params.size_scale = opts.getDouble("scale", 1.0);
    params.iterations = opts.getUint("iterations", 0);
    params.seed = opts.getUint("workload-seed", 42);
    params.warps_per_tb =
        static_cast<std::uint32_t>(opts.getUint("warps", 4));
    std::unique_ptr<Workload> wl = makeWorkload(name, params);
    OpenedSink out = openSink(out_path, wantsBinary(opts, out_path));
    recordWorkload(*wl, params.warps_per_tb, *out.sink);
    std::printf("recorded %s -> %s\n", name.c_str(), out_path.c_str());
    return 0;
}

int
cmdStat(const Options &opts)
{
    const std::string in_path = requireOpt(opts.get("in", ""), "in");
    OpenedTrace in = openTraceFile(in_path);
    std::printf("trace           : %s\n", in_path.c_str());
    std::printf("format          : %s\n",
                tracefmt::isUvmtFile(in_path) ? "uvmt (binary)"
                                              : "text");
    std::uint64_t footprint = 0;
    for (const tracefmt::TraceAlloc &a : in.source->allocs())
        footprint += a.bytes;
    std::printf("allocations     : %zu (%.2f MiB footprint)\n",
                in.source->allocs().size(),
                static_cast<double>(footprint) / (1024.0 * 1024.0));
    for (const tracefmt::TraceAlloc &a : in.source->allocs())
        std::printf("  %-24s %llu bytes\n", a.name.c_str(),
                    static_cast<unsigned long long>(a.bytes));

    // One streaming pass for the body tallies.
    std::uint64_t blocks = 0, reads = 0, writes = 0, computes = 0;
    std::uint64_t bytes_read = 0, bytes_written = 0;
    tracefmt::TraceEvent ev;
    while (in.source->next(ev)) {
        switch (ev.kind) {
          case tracefmt::TraceEventKind::blockBegin:
            ++blocks;
            break;
          case tracefmt::TraceEventKind::compute:
            ++computes;
            break;
          case tracefmt::TraceEventKind::access:
            if (ev.is_write) {
                ++writes;
                bytes_written += ev.size;
            } else {
                ++reads;
                bytes_read += ev.size;
            }
            break;
          case tracefmt::TraceEventKind::kernelBegin:
            break;
        }
    }
    std::printf("kernels         : %llu\n",
                static_cast<unsigned long long>(
                    in.source->kernelCount()));
    std::printf("thread blocks   : %llu\n",
                static_cast<unsigned long long>(blocks));
    std::printf("access records  : %llu (%llu reads, %llu writes, "
                "%llu pure compute)\n",
                static_cast<unsigned long long>(reads + writes),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(computes));
    std::printf("bytes accessed  : %llu read, %llu written\n",
                static_cast<unsigned long long>(bytes_read),
                static_cast<unsigned long long>(bytes_written));
    return 0;
}

int
cmdValidate(const Options &opts)
{
    const std::string in_path = requireOpt(opts.get("in", ""), "in");
    // Opening runs the full validating pre-pass; reaching this line
    // means every record decoded cleanly.
    OpenedTrace in = openTraceFile(in_path);
    std::printf("OK: %s (%llu kernels, %llu records)\n",
                in_path.c_str(),
                static_cast<unsigned long long>(
                    in.source->kernelCount()),
                static_cast<unsigned long long>(
                    in.source->recordCount()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (opts.positional().size() != 1) {
        usage();
        fatal("expected exactly one subcommand "
              "(convert|record|stat|validate)");
    }
    const std::string &cmd = opts.positional()[0];
    if (cmd == "convert")
        return cmdConvert(opts);
    if (cmd == "record")
        return cmdRecord(opts);
    if (cmd == "stat")
        return cmdStat(opts);
    if (cmd == "validate")
        return cmdValidate(opts);
    usage();
    fatal("unknown subcommand '%s'", cmd.c_str());
}
