#include "simulator.hh"

#include <algorithm>
#include <fstream>
#include <memory>
#include <vector>

#include "analysis/timeline.hh"
#include "api/run_executor.hh"
#include "gpu/gpu.hh"
#include "interconnect/pcie_link.hh"
#include "mem/frame_allocator.hh"
#include "mem/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace uvmsim
{

double
RunResult::stat(const std::string &name) const
{
    auto it = stats.find(name);
    if (it == stats.end())
        fatal("RunResult: unknown stat '%s'", name.c_str());
    return it->second;
}

Simulator::Simulator(SimConfig config)
    : config_(std::move(config))
{
    if (config_.oversubscription_percent < 0.0)
        fatal("negative oversubscription percentage");
    if (config_.free_buffer_percent < 0.0 ||
        config_.free_buffer_percent >= 100.0)
        fatal("free-page buffer percentage outside [0, 100)");
    if (config_.lru_reserve_percent < 0.0 ||
        config_.lru_reserve_percent >= 100.0)
        fatal("LRU reservation percentage outside [0, 100)");
}

void
Simulator::setAccessObserver(Gmmu::AccessObserver observer)
{
    access_observer_ = std::move(observer);
}

void
Simulator::setKernelObserver(KernelObserver observer)
{
    kernel_observer_ = std::move(observer);
}

void
Simulator::setSnapshotObserver(SnapshotObserver observer)
{
    snapshot_observer_ = std::move(observer);
}

void
Simulator::addTraceSink(trace::TraceSink *sink)
{
    if (!sink)
        fatal("Simulator::addTraceSink(nullptr)");
    extra_sinks_.push_back(sink);
}

RunResult
Simulator::run(Workload &workload)
{
    EventQueue eq;
    stats::StatRegistry registry;

    // 1. Let the workload make its managed allocations.
    ManagedSpace space;
    workload.setup(space);
    std::uint64_t footprint = space.totalPaddedBytes();
    if (footprint == 0)
        fatal("workload '%s' allocated nothing", workload.name().c_str());

    // 2. Size the device memory.
    std::uint64_t device_bytes = config_.device_memory_bytes;
    if (device_bytes == 0) {
        if (config_.oversubscription_percent > 100.0) {
            device_bytes = static_cast<std::uint64_t>(
                static_cast<double>(footprint) * 100.0 /
                config_.oversubscription_percent);
        } else {
            // Fits comfortably: footprint plus one large page of slack.
            device_bytes = footprint + largePageSize;
        }
    }
    device_bytes = roundUpToPages(device_bytes);
    if (device_bytes < 16 * basicBlockSize)
        fatal("device memory of %llu bytes is too small to model",
              static_cast<unsigned long long>(device_bytes));

    // 3. Assemble the system.
    FrameAllocator frames(device_bytes / pageSize);
    PageTable page_table;
    PcieLink pcie(eq, PcieBandwidthModel(config_.pcie_model));

    GmmuConfig gcfg;
    gcfg.fault_handling_latency = config_.fault_latency;
    gcfg.fault_batch_size = config_.fault_batch_size;
    gcfg.fault_latency_jitter = config_.fault_latency_jitter;
    gcfg.page_walk_latency =
        config_.page_walk_cycles * config_.gpu.corePeriod();
    gcfg.page_walkers = config_.page_walkers;
    gcfg.mshr_entries = config_.mshr_entries;
    gcfg.prefetcher_before = config_.prefetcher_before;
    gcfg.prefetcher_after = config_.prefetcher_after;
    gcfg.eviction = config_.eviction;
    gcfg.free_buffer_pages = static_cast<std::uint64_t>(
        config_.free_buffer_percent / 100.0 *
        static_cast<double>(frames.totalFrames()));
    gcfg.lru_reserve_fraction = config_.lru_reserve_percent / 100.0;
    gcfg.whole_unit_writeback = config_.whole_unit_writeback;
    gcfg.seed = config_.seed;
    gcfg.audit = config_.audit;

    Gmmu gmmu(eq, pcie, frames, page_table, space, gcfg);
    Gpu gpu(eq, config_.gpu, gmmu);

    // Opt-in observability: route component events into the Chrome
    // trace exporter and the epoch time-series aggregator.  With an
    // empty trace_spec no tracer exists and every emission site stays
    // a branch on a null pointer.
    std::unique_ptr<trace::Tracer> tracer;
    std::unique_ptr<trace::ChromeTraceSink> chrome_sink;
    std::unique_ptr<analysis::EpochTimeline> timeline;
    if (!config_.trace_spec.empty()) {
        unsigned mask = trace::parseSpec(config_.trace_spec);
        if (config_.epoch_ticks == 0)
            fatal("epoch_ticks must be positive when tracing");
        tracer = std::make_unique<trace::Tracer>(mask);
        timeline =
            std::make_unique<analysis::EpochTimeline>(config_.epoch_ticks);
        tracer->addSink(timeline.get());
        if (!config_.trace_out.empty()) {
            chrome_sink = std::make_unique<trace::ChromeTraceSink>(
                config_.trace_out + ".trace.json");
            tracer->addSink(chrome_sink.get());
        }
        for (trace::TraceSink *sink : extra_sinks_)
            tracer->addSink(sink);
        gmmu.setTracer(tracer.get());
        pcie.setTracer(tracer.get());
    }

    if (access_observer_)
        gmmu.setAccessObserver(access_observer_);

    frames.registerStats(registry);
    page_table.registerStats(registry);
    pcie.registerStats(registry);
    gmmu.registerStats(registry);
    gpu.registerStats(registry);

    // 4. Chain the workload's kernels launch-by-launch.
    struct Driver
    {
        Workload &wl;
        Gpu &gpu;
        EventQueue &eq;
        KernelObserver &observer;
        trace::Tracer *tracer;
        std::uint64_t index = 0;

        void
        launchNext()
        {
            Kernel *kernel = wl.nextKernel();
            if (!kernel)
                return;
            Tick start = eq.curTick();
            std::string name = kernel->name();
            gpu.launch(*kernel, [this, start, name]() {
                if (observer)
                    observer(index, name, start, eq.curTick());
                if (tracer) {
                    tracer->record(trace::Event{
                        trace::Kind::kernelRun, trace::Category::kernel,
                        "kernel", start, eq.curTick() - start, 0, 0,
                        index});
                }
                ++index;
                launchNext();
            });
        }
    };

    if (config_.user_prefetch_footprint) {
        // cudaMemPrefetchAsync over every allocation; the transfers
        // overlap with kernel execution exactly as on real hardware.
        for (const auto &alloc : space.allocations())
            gmmu.prefetchRange(alloc->base(), alloc->paddedBytes());
    }

    Driver driver{workload, gpu, eq, kernel_observer_, tracer.get()};
    driver.launchNext();
    eq.run();

    if (gpu.busy())
        panic("event queue drained while a kernel was still running");

    if (snapshot_observer_) {
        SystemSnapshot snap;
        snap.resident_cold_to_hot =
            gmmu.residency().coldPages(gmmu.residency().size());
        snap.trees = space.treeValidSizes();
        snap.oversubscribed = gmmu.oversubscribed();
        snap.total_frames = frames.totalFrames();
        snap.free_frames = frames.freeFrames();
        snapshot_observer_(snap);
    }

    if (tracer) {
        tracer->finish(eq.curTick());
        if (timeline && !config_.trace_out.empty()) {
            const std::string csv_path =
                config_.trace_out + ".epochs.csv";
            std::ofstream csv(csv_path);
            if (!csv)
                fatal("cannot open epoch CSV output file '%s'",
                      csv_path.c_str());
            timeline->dumpCsv(csv);
            csv.close();
            if (!csv)
                fatal("error writing epoch CSV output file '%s'",
                      csv_path.c_str());
        }
    }

    // 5. Collect the results.
    RunResult result;
    result.workload = workload.name();
    result.kernel_time = gpu.totalKernelTime();
    result.final_time = eq.curTick();
    result.device_memory_bytes = device_bytes;
    result.footprint_bytes = footprint;
    for (const stats::Stat *stat : registry.all())
        result.stats[stat->name()] = stat->value();
    return result;
}

RunResult
runBenchmark(const std::string &workload_name, const SimConfig &config,
             const WorkloadParams &params)
{
    auto workload = makeWorkload(workload_name, params);
    Simulator sim(config);
    return sim.run(*workload);
}

SeedSweepResult
runBenchmarkSeeds(const std::string &workload_name,
                  const SimConfig &config, const WorkloadParams &params,
                  std::size_t num_seeds, std::size_t jobs)
{
    if (num_seeds == 0)
        fatal("runBenchmarkSeeds needs at least one seed");

    // Each seed is an independent run; farm them out, then aggregate
    // in seed order so the sums are identical for any `jobs` value.
    std::vector<RunResult> runs;
    runs.reserve(num_seeds);
    if (jobs == 1) {
        for (std::size_t i = 0; i < num_seeds; ++i) {
            SimConfig cfg = config;
            cfg.seed = config.seed + i;
            runs.push_back(runBenchmark(workload_name, cfg, params));
        }
    } else {
        std::vector<RunJob> batch;
        batch.reserve(num_seeds);
        for (std::size_t i = 0; i < num_seeds; ++i) {
            RunJob job{workload_name, config, params};
            job.config.seed = config.seed + i;
            batch.push_back(std::move(job));
        }
        RunExecutor executor(jobs);
        runs = executor.runBatch(batch);
    }

    SeedSweepResult agg;
    agg.runs = num_seeds;
    for (std::size_t i = 0; i < num_seeds; ++i) {
        const RunResult &r = runs[i];
        double us = r.kernelTimeUs();
        agg.mean_kernel_time_us += us;
        if (i == 0) {
            agg.min_kernel_time_us = us;
            agg.max_kernel_time_us = us;
        } else {
            agg.min_kernel_time_us = std::min(agg.min_kernel_time_us, us);
            agg.max_kernel_time_us = std::max(agg.max_kernel_time_us, us);
        }
        for (const auto &[name, value] : r.stats)
            agg.mean_stats[name] += value;
    }
    agg.mean_kernel_time_us /= static_cast<double>(num_seeds);
    for (auto &[name, value] : agg.mean_stats)
        value /= static_cast<double>(num_seeds);
    return agg;
}

void
attachAnalyzer(Simulator &sim, AccessPatternAnalyzer &analyzer)
{
    sim.setAccessObserver(
        [&analyzer](Tick when, PageNum page, bool is_write) {
            analyzer.recordAccess(when, page, is_write);
        });
    sim.setKernelObserver([&analyzer](std::uint64_t index,
                                      const std::string &, Tick, Tick) {
        analyzer.kernelBoundary(index);
    });
}

} // namespace uvmsim
