#include "simulator.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "analysis/timeline.hh"
#include "api/run_executor.hh"
#include "gpu/gpu.hh"
#include "interconnect/pcie_link.hh"
#include "mem/frame_allocator.hh"
#include "mem/page_table.hh"
#include "sim/atomic_file.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace uvmsim
{

double
RunResult::stat(const std::string &name) const
{
    auto it = stats.find(name);
    if (it == stats.end())
        fatal("RunResult: unknown stat '%s'", name.c_str());
    return it->second;
}

Simulator::Simulator(SimConfig config)
    : config_(std::move(config))
{
    if (config_.oversubscription_percent < 0.0)
        fatal("negative oversubscription percentage");
    if (config_.free_buffer_percent < 0.0 ||
        config_.free_buffer_percent >= 100.0)
        fatal("free-page buffer percentage outside [0, 100)");
    if (config_.lru_reserve_percent < 0.0 ||
        config_.lru_reserve_percent >= 100.0)
        fatal("LRU reservation percentage outside [0, 100)");
    if (config_.tenants == 0)
        fatal("tenant count must be at least 1");
    // The GPU cache models pack line addresses into 32-bit tags, so
    // every tenant partition must sit below 2^39.
    if (ManagedSpace::defaultVaBase +
            static_cast<Addr>(config_.tenants) * tenantVaStride >
        (1ull << 39))
        fatal("tenant count %u exceeds the addressable VA budget "
              "(max %llu)",
              config_.tenants,
              static_cast<unsigned long long>(
                  ((1ull << 39) - ManagedSpace::defaultVaBase) /
                  tenantVaStride));
}

void
Simulator::setAccessObserver(Gmmu::AccessObserver observer)
{
    access_observer_ = std::move(observer);
}

void
Simulator::setKernelObserver(KernelObserver observer)
{
    kernel_observer_ = std::move(observer);
}

void
Simulator::setSnapshotObserver(SnapshotObserver observer)
{
    snapshot_observer_ = std::move(observer);
}

void
Simulator::addTraceSink(trace::TraceSink *sink)
{
    if (!sink)
        fatal("Simulator::addTraceSink(nullptr)");
    extra_sinks_.push_back(sink);
}

RunResult
Simulator::run(Workload &workload)
{
    if (config_.tenants != 1)
        fatal("Simulator::run(Workload&) is single-tenant; pass one "
              "workload per tenant for tenants=%u", config_.tenants);
    return run(std::vector<Workload *>{&workload});
}

RunResult
Simulator::run(const std::vector<Workload *> &workloads)
{
    if (workloads.size() != config_.tenants)
        fatal("run() got %zu workloads for %u tenants",
              workloads.size(), config_.tenants);
    for (Workload *workload : workloads) {
        if (!workload)
            fatal("run() got a null workload");
    }

    EventQueue eq;
    stats::StatRegistry registry;

    // 1. Let each tenant's workload make its managed allocations in
    //    its own VA-partitioned space.
    TenantSet tenants(config_.tenants);
    for (std::uint32_t t = 0; t < config_.tenants; ++t) {
        workloads[t]->setup(tenants.space(t));
        if (tenants.space(t).totalPaddedBytes() == 0)
            fatal("workload '%s' allocated nothing",
                  workloads[t]->name().c_str());
    }
    std::uint64_t footprint = tenants.totalPaddedBytes();

    // 2. Size the device memory.
    std::uint64_t device_bytes = config_.device_memory_bytes;
    if (device_bytes == 0) {
        if (config_.oversubscription_percent > 100.0) {
            device_bytes = static_cast<std::uint64_t>(
                static_cast<double>(footprint) * 100.0 /
                config_.oversubscription_percent);
        } else {
            // Fits comfortably: footprint plus one large page of slack.
            device_bytes = footprint + largePageSize;
        }
    }
    device_bytes = roundUpToPages(device_bytes);
    if (device_bytes < 16 * basicBlockSize)
        fatal("device memory of %llu bytes is too small to model",
              static_cast<unsigned long long>(device_bytes));

    // 3. Assemble the system.
    FrameAllocator frames(device_bytes / pageSize);
    PageTable page_table;
    PcieLink pcie(eq, PcieBandwidthModel(config_.pcie_model));

    GmmuConfig gcfg;
    gcfg.fault_handling_latency = config_.fault_latency;
    gcfg.fault_batch_size = config_.fault_batch_size;
    gcfg.fault_latency_jitter = config_.fault_latency_jitter;
    gcfg.page_walk_latency =
        config_.page_walk_cycles * config_.gpu.corePeriod();
    gcfg.page_walkers = config_.page_walkers;
    gcfg.mshr_entries = config_.mshr_entries;
    gcfg.prefetcher_before = config_.prefetcher_before;
    gcfg.prefetcher_after = config_.prefetcher_after;
    gcfg.eviction = config_.eviction;
    gcfg.free_buffer_pages = static_cast<std::uint64_t>(
        config_.free_buffer_percent / 100.0 *
        static_cast<double>(frames.totalFrames()));
    gcfg.lru_reserve_fraction = config_.lru_reserve_percent / 100.0;
    gcfg.whole_unit_writeback = config_.whole_unit_writeback;
    gcfg.tenant_eviction = config_.tenant_eviction;
    gcfg.seed = config_.seed;
    gcfg.audit = config_.audit;

    Gmmu gmmu(eq, pcie, frames, page_table, tenants, gcfg);

    // Concurrent tenant streams need one launch slot per tenant.
    GpuConfig gpu_cfg = config_.gpu;
    if (config_.tenants > 1 && !config_.serialize_kernel_streams)
        gpu_cfg.max_concurrent_kernels = std::max<std::uint32_t>(
            gpu_cfg.max_concurrent_kernels, config_.tenants);
    Gpu gpu(eq, gpu_cfg, gmmu);

    // Opt-in observability: route component events into the Chrome
    // trace exporter and the epoch time-series aggregator.  With an
    // empty trace_spec no tracer exists and every emission site stays
    // a branch on a null pointer.
    std::unique_ptr<trace::Tracer> tracer;
    std::unique_ptr<trace::ChromeTraceSink> chrome_sink;
    std::unique_ptr<analysis::EpochTimeline> timeline;
    if (!config_.trace_spec.empty()) {
        unsigned mask = trace::parseSpec(config_.trace_spec);
        if (config_.epoch_ticks == 0)
            fatal("epoch_ticks must be positive when tracing");
        tracer = std::make_unique<trace::Tracer>(mask);
        timeline =
            std::make_unique<analysis::EpochTimeline>(config_.epoch_ticks);
        tracer->addSink(timeline.get());
        if (!config_.trace_out.empty()) {
            chrome_sink = std::make_unique<trace::ChromeTraceSink>(
                config_.trace_out + ".trace.json");
            tracer->addSink(chrome_sink.get());
        }
        for (trace::TraceSink *sink : extra_sinks_)
            tracer->addSink(sink);
        gmmu.setTracer(tracer.get());
        pcie.setTracer(tracer.get());
    }

    if (access_observer_)
        gmmu.setAccessObserver(access_observer_);

    frames.registerStats(registry);
    page_table.registerStats(registry);
    pcie.registerStats(registry);
    gmmu.registerStats(registry);
    gpu.registerStats(registry);

    // 4. Chain each tenant's kernels launch-by-launch.  Concurrent
    //    mode keeps every tenant's next kernel in flight at once;
    //    serialized mode round-robins one kernel at a time across the
    //    tenants (the functional oracle's exact interleaving).
    struct Driver
    {
        const std::vector<Workload *> &wls;
        Gpu &gpu;
        EventQueue &eq;
        KernelObserver &observer;
        trace::Tracer *tracer;
        bool serialize;
        std::uint64_t index = 0;
        std::size_t rr = 0;
        std::vector<char> exhausted;

        void
        start()
        {
            exhausted.assign(wls.size(), 0);
            if (serialize && wls.size() > 1) {
                launchNextSerialized();
            } else {
                for (std::size_t t = 0; t < wls.size(); ++t)
                    launchNext(t);
            }
        }

        void
        launchNext(std::size_t tenant)
        {
            Kernel *kernel = wls[tenant]->nextKernel();
            if (!kernel)
                return;
            Tick start = eq.curTick();
            std::string name = kernel->name();
            gpu.launch(*kernel, [this, tenant, start, name]() {
                record(start, name, tenant);
                launchNext(tenant);
            });
        }

        void
        launchNextSerialized()
        {
            std::size_t n = wls.size();
            for (std::size_t i = 0; i < n; ++i) {
                std::size_t t = (rr + i) % n;
                if (exhausted[t])
                    continue;
                Kernel *kernel = wls[t]->nextKernel();
                if (!kernel) {
                    exhausted[t] = 1;
                    continue;
                }
                rr = (t + 1) % n;
                Tick start = eq.curTick();
                std::string name = kernel->name();
                gpu.launch(*kernel, [this, t, start, name]() {
                    record(start, name, t);
                    launchNextSerialized();
                });
                return;
            }
        }

        void
        record(Tick start, const std::string &name, std::size_t tenant)
        {
            if (observer)
                observer(index, name, start, eq.curTick());
            if (tracer) {
                trace::Event run{
                    trace::Kind::kernelRun, trace::Category::kernel,
                    "kernel", start, eq.curTick() - start, 0, 0,
                    index};
                run.tenant = static_cast<std::uint32_t>(tenant);
                tracer->record(run);
            }
            ++index;
        }
    };

    if (config_.user_prefetch_footprint) {
        // cudaMemPrefetchAsync over every allocation; the transfers
        // overlap with kernel execution exactly as on real hardware.
        for (std::uint32_t t = 0; t < tenants.numTenants(); ++t)
            for (const auto &alloc : tenants.space(t).allocations())
                gmmu.prefetchRange(alloc->base(), alloc->paddedBytes());
    }

    Driver driver{workloads, gpu, eq, kernel_observer_, tracer.get(),
                  config_.serialize_kernel_streams, 0, 0, {}};
    driver.start();
    eq.run();

    if (gpu.busy())
        panic("event queue drained while a kernel was still running");

    if (snapshot_observer_) {
        SystemSnapshot snap;
        snap.resident_cold_to_hot = gmmu.residentColdToHot();
        snap.trees = tenants.treeValidSizes();
        snap.oversubscribed = gmmu.oversubscribed();
        snap.total_frames = frames.totalFrames();
        snap.free_frames = frames.freeFrames();
        snapshot_observer_(snap);
    }

    if (tracer) {
        tracer->finish(eq.curTick());
        if (timeline && !config_.trace_out.empty()) {
            // Atomic publish: render in memory, then temp + rename,
            // so an interrupted run never leaves a truncated CSV.
            const std::string csv_path =
                config_.trace_out + ".epochs.csv";
            std::ostringstream csv;
            timeline->dumpCsv(csv);
            publishFile(csv_path, csv.str());
        }
    }

    // 5. Collect the results.
    RunResult result;
    result.workload = workloads.front()->name();
    result.kernel_time = gpu.totalKernelTime();
    result.final_time = eq.curTick();
    result.device_memory_bytes = device_bytes;
    result.footprint_bytes = footprint;
    for (const stats::Stat *stat : registry.all())
        result.stats[stat->name()] = stat->value();
    return result;
}

RunResult
runBenchmark(const std::string &workload_name, const SimConfig &config,
             const WorkloadParams &params)
{
    Simulator sim(config);
    if (config.tenants <= 1) {
        auto workload = makeWorkload(workload_name, params);
        return sim.run(*workload);
    }

    // One generator instance per tenant; offsetting the seed keeps the
    // tenants' irregular workloads (graphs, random access) distinct.
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<Workload *> per_tenant;
    for (std::uint32_t t = 0; t < config.tenants; ++t) {
        WorkloadParams p = params;
        p.seed = params.seed + t;
        owned.push_back(makeWorkload(workload_name, p));
        per_tenant.push_back(owned.back().get());
    }
    return sim.run(per_tenant);
}

SeedSweepResult
runBenchmarkSeeds(const std::string &workload_name,
                  const SimConfig &config, const WorkloadParams &params,
                  std::size_t num_seeds, std::size_t jobs)
{
    if (num_seeds == 0)
        fatal("runBenchmarkSeeds needs at least one seed");

    // Each seed is an independent run; farm them out, then aggregate
    // in seed order so the sums are identical for any `jobs` value.
    std::vector<RunResult> runs;
    runs.reserve(num_seeds);
    if (jobs == 1) {
        for (std::size_t i = 0; i < num_seeds; ++i) {
            SimConfig cfg = config;
            cfg.seed = config.seed + i;
            runs.push_back(runBenchmark(workload_name, cfg, params));
        }
    } else {
        std::vector<RunJob> batch;
        batch.reserve(num_seeds);
        for (std::size_t i = 0; i < num_seeds; ++i) {
            RunJob job{workload_name, config, params};
            job.config.seed = config.seed + i;
            batch.push_back(std::move(job));
        }
        RunExecutor executor(jobs);
        runs = executor.runBatch(batch);
    }

    SeedSweepResult agg;
    agg.runs = num_seeds;
    for (std::size_t i = 0; i < num_seeds; ++i) {
        const RunResult &r = runs[i];
        double us = r.kernelTimeUs();
        agg.mean_kernel_time_us += us;
        if (i == 0) {
            agg.min_kernel_time_us = us;
            agg.max_kernel_time_us = us;
        } else {
            agg.min_kernel_time_us = std::min(agg.min_kernel_time_us, us);
            agg.max_kernel_time_us = std::max(agg.max_kernel_time_us, us);
        }
        for (const auto &[name, value] : r.stats)
            agg.mean_stats[name] += value;
    }
    agg.mean_kernel_time_us /= static_cast<double>(num_seeds);
    for (auto &[name, value] : agg.mean_stats)
        value /= static_cast<double>(num_seeds);
    return agg;
}

void
attachAnalyzer(Simulator &sim, AccessPatternAnalyzer &analyzer)
{
    sim.setAccessObserver(
        [&analyzer](Tick when, PageNum page, bool is_write) {
            analyzer.recordAccess(when, page, is_write);
        });
    sim.setKernelObserver([&analyzer](std::uint64_t index,
                                      const std::string &, Tick, Tick) {
        analyzer.kernelBoundary(index);
    });
}

} // namespace uvmsim
