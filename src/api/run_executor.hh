/**
 * @file
 * Parallel run executor: thread-pooled batch simulation.
 *
 * Every experiment in this repo -- the per-figure bench harnesses,
 * uvmsim_sweep, runBenchmarkSeeds() -- is a batch of fully independent
 * Simulator::run() calls: each run builds a fresh system and is
 * deterministic for its (workload, config, params) triple.  The
 * RunExecutor exploits that: it owns a fixed-size pool of worker
 * threads, accepts a batch of RunJobs, runs each job on a worker with
 * its own freshly built system, and hands the RunResults back in
 * submission order.  Results are bit-identical to serial execution by
 * construction; only wall-clock time changes.
 *
 * Repeated sweep points are computed once, through two cache tiers:
 *
 *   1. An in-process cache keyed by a canonical serialization of the
 *      job (runJobKey), byte-accounted and LRU-bounded (default 256
 *      MiB, setCacheCapacity to change, 0 = unbounded) so a 10k-cell
 *      sweep cannot hold every RunResult forever.
 *   2. Optionally, a persistent on-disk ResultStore attached with
 *      attachStore(): in-process misses read through to it, computed
 *      results are written back, and a repeated sweep in a fresh
 *      process completes on store hits alone.
 *
 * Typical use:
 *
 *   RunExecutor exec(jobs);              // 0 = hardware concurrency
 *   std::vector<RunJob> batch;
 *   batch.push_back({"hotspot", cfg, params});
 *   batch.push_back({"nw", cfg, params});
 *   std::vector<RunResult> results = exec.runBatch(batch);
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/simulator.hh"

namespace uvmsim
{

class ResultStore;

/** One unit of work: run this workload under this configuration. */
struct RunJob
{
    std::string workload;
    SimConfig config;
    WorkloadParams params;
};

/**
 * Canonical cache key covering every field that can change a run's
 * outcome: the workload name, every SimConfig field (including the
 * embedded GpuConfig) and every WorkloadParams field.  Two jobs with
 * equal keys produce bit-identical RunResults.
 *
 * NOTE: when adding a field to SimConfig, GpuConfig or WorkloadParams,
 * extend this serialization or the cache will alias distinct configs.
 * The `jobkey` uvmsim_lint check enforces this: every field declared
 * in those structs must be referenced in run_executor.cc.
 */
std::string runJobKey(const RunJob &job);

/** A fixed-size thread pool running simulation batches. */
class RunExecutor
{
  public:
    /** In-process result cache bound when none is configured. */
    static constexpr std::uint64_t default_cache_bytes = 256ull << 20;

    /** A task the pool can run directly (used by runBatch and tests). */
    using Task = std::function<RunResult()>;

    /** What one task produced: a result, or the exception it threw. */
    struct Outcome
    {
        RunResult result;
        std::exception_ptr error;

        bool ok() const { return error == nullptr; }
    };

    /**
     * Called on a worker thread just before a job starts executing
     * (cache and store hits never invoke it).  `index` is the job's
     * position in the submitted batch.  Must be thread-safe; serialize
     * any output through outputMutex().
     */
    using Progress =
        std::function<void(const RunJob &job, std::size_t index)>;

    /**
     * Create the pool.  `num_threads` == 0 selects the hardware
     * concurrency; 1 reproduces serial execution order exactly.
     */
    explicit RunExecutor(std::size_t num_threads = 0);

    /** Joins all workers; outstanding batches must have completed. */
    ~RunExecutor();

    RunExecutor(const RunExecutor &) = delete;
    RunExecutor &operator=(const RunExecutor &) = delete;

    /** Number of worker threads in the pool. */
    std::size_t threads() const { return workers_.size(); }

    /**
     * Run a batch of jobs and return their results in submission
     * order.  Jobs whose key is already cached (or duplicated inside
     * the batch) are simulated only once.  If a job throws, the
     * remaining jobs still complete and their results are cached;
     * the first exception is then rethrown.  (Configuration errors
     * inside the simulator call fatal()/panic() and terminate the
     * process, exactly as under serial execution.)
     */
    std::vector<RunResult> runBatch(const std::vector<RunJob> &jobs,
                                    const Progress &progress = nullptr);

    /**
     * Run arbitrary tasks on the pool and wait for all of them.
     * A task that throws yields an Outcome holding the exception; the
     * other tasks are unaffected and nothing deadlocks.  Outcomes are
     * in submission order.  Bypasses the result cache.
     */
    std::vector<Outcome> runTasks(const std::vector<Task> &tasks);

    /**
     * Attach (or detach, with nullptr) a persistent result store as a
     * read-through/write-back tier under the in-process cache.  Not
     * owned; must outlive the executor or be detached first.  Hits
     * and misses are accounted on the store's own counters.
     */
    void attachStore(ResultStore *store);

    /** The attached persistent store, or nullptr. */
    ResultStore *store() const { return store_; }

    /**
     * Bound the in-process cache to `bytes` of accounted result
     * footprint (0 = unbounded), evicting least-recently-used entries
     * immediately if already over.  A single result larger than the
     * bound is simply not cached.
     */
    void setCacheCapacity(std::uint64_t bytes);

    /** Configured in-process cache bound in bytes (0 = unbounded). */
    std::uint64_t cacheCapacity() const;

    /** Accounted bytes currently held by the in-process cache. */
    std::uint64_t cacheBytes() const;

    /** Batch results served from the in-process cache so far. */
    std::size_t cacheHits() const;

    /** Distinct results currently cached in-process. */
    std::size_t cacheSize() const;

    /** Drop every in-process cached result. */
    void clearCache();

  private:
    /** Intrusive LRU node: index-linked, lives in nodes_. */
    struct CacheNode
    {
        std::string key;
        RunResult result;
        std::uint64_t bytes = 0;
        std::uint32_t prev = npos;
        std::uint32_t next = npos;
    };

    static constexpr std::uint32_t npos = 0xffffffffu;

    void workerLoop();
    void enqueue(std::function<void()> work);

    // LRU internals; all require cache_mutex_ to be held.
    bool cacheLookupLocked(const std::string &key, RunResult &out);
    void cacheInsertLocked(const std::string &key, RunResult result);
    void cacheDetachLocked(std::uint32_t idx);
    void cachePushFrontLocked(std::uint32_t idx);
    void cacheEvictToCapacityLocked();

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    mutable std::mutex cache_mutex_;
    std::unordered_map<std::string, std::uint32_t> cache_index_;
    std::vector<CacheNode> nodes_;
    std::vector<std::uint32_t> free_nodes_;
    std::uint32_t lru_head_ = npos; ///< most recently used
    std::uint32_t lru_tail_ = npos; ///< least recently used
    std::uint64_t cache_bytes_ = 0;
    std::uint64_t cache_capacity_ = default_cache_bytes;
    std::size_t cache_hits_ = 0;
    ResultStore *store_ = nullptr;
};

} // namespace uvmsim
