/**
 * @file
 * Parallel run executor: thread-pooled batch simulation.
 *
 * Every experiment in this repo -- the per-figure bench harnesses,
 * uvmsim_sweep, runBenchmarkSeeds() -- is a batch of fully independent
 * Simulator::run() calls: each run builds a fresh system and is
 * deterministic for its (workload, config, params) triple.  The
 * RunExecutor exploits that: it owns a fixed-size pool of worker
 * threads, accepts a batch of RunJobs, runs each job on a worker with
 * its own freshly built system, and hands the RunResults back in
 * submission order.  Results are bit-identical to serial execution by
 * construction; only wall-clock time changes.
 *
 * Repeated sweep points are computed once: the executor keeps an
 * in-process cache keyed by a canonical serialization of the job
 * (runJobKey), so e.g. the shared 110% baseline across figures, or
 * duplicate cells inside one batch, cost a single simulation.
 *
 * Typical use:
 *
 *   RunExecutor exec(jobs);              // 0 = hardware concurrency
 *   std::vector<RunJob> batch;
 *   batch.push_back({"hotspot", cfg, params});
 *   batch.push_back({"nw", cfg, params});
 *   std::vector<RunResult> results = exec.runBatch(batch);
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/simulator.hh"

namespace uvmsim
{

/** One unit of work: run this workload under this configuration. */
struct RunJob
{
    std::string workload;
    SimConfig config;
    WorkloadParams params;
};

/**
 * Canonical cache key covering every field that can change a run's
 * outcome: the workload name, every SimConfig field (including the
 * embedded GpuConfig) and every WorkloadParams field.  Two jobs with
 * equal keys produce bit-identical RunResults.
 *
 * NOTE: when adding a field to SimConfig, GpuConfig or WorkloadParams,
 * extend this serialization or the cache will alias distinct configs.
 */
std::string runJobKey(const RunJob &job);

/** A fixed-size thread pool running simulation batches. */
class RunExecutor
{
  public:
    /** A task the pool can run directly (used by runBatch and tests). */
    using Task = std::function<RunResult()>;

    /** What one task produced: a result, or the exception it threw. */
    struct Outcome
    {
        RunResult result;
        std::exception_ptr error;

        bool ok() const { return error == nullptr; }
    };

    /**
     * Called on a worker thread just before a job starts executing
     * (cache hits never invoke it).  `index` is the job's position in
     * the submitted batch.  Must be thread-safe; serialize any output
     * through outputMutex().
     */
    using Progress =
        std::function<void(const RunJob &job, std::size_t index)>;

    /**
     * Create the pool.  `num_threads` == 0 selects the hardware
     * concurrency; 1 reproduces serial execution order exactly.
     */
    explicit RunExecutor(std::size_t num_threads = 0);

    /** Joins all workers; outstanding batches must have completed. */
    ~RunExecutor();

    RunExecutor(const RunExecutor &) = delete;
    RunExecutor &operator=(const RunExecutor &) = delete;

    /** Number of worker threads in the pool. */
    std::size_t threads() const { return workers_.size(); }

    /**
     * Run a batch of jobs and return their results in submission
     * order.  Jobs whose key is already cached (or duplicated inside
     * the batch) are simulated only once.  If a job throws, the
     * remaining jobs still complete and their results are cached;
     * the first exception is then rethrown.  (Configuration errors
     * inside the simulator call fatal()/panic() and terminate the
     * process, exactly as under serial execution.)
     */
    std::vector<RunResult> runBatch(const std::vector<RunJob> &jobs,
                                    const Progress &progress = nullptr);

    /**
     * Run arbitrary tasks on the pool and wait for all of them.
     * A task that throws yields an Outcome holding the exception; the
     * other tasks are unaffected and nothing deadlocks.  Outcomes are
     * in submission order.  Bypasses the result cache.
     */
    std::vector<Outcome> runTasks(const std::vector<Task> &tasks);

    /** Batch results served from the cache so far. */
    std::size_t cacheHits() const;

    /** Distinct results currently cached. */
    std::size_t cacheSize() const;

    /** Drop every cached result. */
    void clearCache();

  private:
    void workerLoop();
    void enqueue(std::function<void()> work);

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    mutable std::mutex cache_mutex_;
    std::unordered_map<std::string, RunResult> cache_;
    std::size_t cache_hits_ = 0;
};

} // namespace uvmsim
