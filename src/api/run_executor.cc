#include "run_executor.hh"

#include <cstdio>
#include <utility>

#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

/** Exact round-trip formatting for double-typed config fields. */
void
appendDouble(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a,", v);
    out += buf;
}

void
appendUint(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
    out += ',';
}

/** Length-prefixed so embedded separators cannot alias keys. */
void
appendString(std::string &out, const std::string &v)
{
    out += std::to_string(v.size());
    out += ':';
    out += v;
    out += ',';
}

} // namespace

std::string
runJobKey(const RunJob &job)
{
    std::string key = job.workload;
    key += '|';

    const GpuConfig &g = job.config.gpu;
    appendUint(key, g.num_sms);
    appendDouble(key, g.core_mhz);
    appendUint(key, g.max_warps_per_sm);
    appendUint(key, g.max_tbs_per_sm);
    appendUint(key, g.tlb_entries);
    appendUint(key, g.l1_bytes);
    appendUint(key, g.l1_assoc);
    appendUint(key, g.l1_hit_cycles);
    appendUint(key, g.l2_bytes);
    appendUint(key, g.l2_assoc);
    appendUint(key, g.l2_line_bytes);
    appendUint(key, g.l2_hit_cycles);
    appendUint(key, g.dram_latency_ns);
    appendDouble(key, g.dram_bandwidth_gbps);
    appendUint(key, g.kernel_launch_overhead);
    appendUint(key, g.max_concurrent_kernels);
    appendUint(key, g.issue_ports_per_sm);
    key += '|';

    const SimConfig &c = job.config;
    appendUint(key, static_cast<std::uint64_t>(c.prefetcher_before));
    appendUint(key, static_cast<std::uint64_t>(c.prefetcher_after));
    appendUint(key, static_cast<std::uint64_t>(c.eviction));
    appendDouble(key, c.oversubscription_percent);
    appendDouble(key, c.free_buffer_percent);
    appendDouble(key, c.lru_reserve_percent);
    appendUint(key, c.device_memory_bytes);
    appendUint(key, static_cast<std::uint64_t>(c.pcie_model));
    appendUint(key, c.fault_latency);
    appendUint(key, c.fault_batch_size);
    appendDouble(key, c.fault_latency_jitter);
    appendUint(key, c.whole_unit_writeback ? 1 : 0);
    appendUint(key, c.user_prefetch_footprint ? 1 : 0);
    appendUint(key, c.page_walk_cycles);
    appendUint(key, c.page_walkers);
    appendUint(key, c.mshr_entries);
    appendUint(key, c.tenants);
    appendUint(key, static_cast<std::uint64_t>(c.tenant_eviction));
    appendUint(key, c.serialize_kernel_streams ? 1 : 0);
    appendUint(key, c.seed);
    appendUint(key, c.audit ? 1 : 0);
    // Tracing never changes simulation results, but jobs with
    // different artifact paths must not dedup onto one run or only
    // one output file would be written.
    appendString(key, c.trace_spec);
    appendString(key, c.trace_out);
    appendUint(key, c.epoch_ticks);
    key += '|';

    const WorkloadParams &p = job.params;
    appendDouble(key, p.size_scale);
    appendUint(key, p.iterations);
    appendUint(key, p.seed);
    appendUint(key, p.warps_per_tb);
    return key;
}

RunExecutor::RunExecutor(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RunExecutor::~RunExecutor()
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
RunExecutor::workerLoop()
{
    for (;;) {
        std::function<void()> work;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            work = std::move(queue_.front());
            queue_.pop_front();
        }
        work();
    }
}

void
RunExecutor::enqueue(std::function<void()> work)
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(std::move(work));
    }
    queue_cv_.notify_one();
}

std::vector<RunExecutor::Outcome>
RunExecutor::runTasks(const std::vector<Task> &tasks)
{
    std::vector<Outcome> outcomes(tasks.size());
    if (tasks.empty())
        return outcomes;

    // Completion latch shared with the workers.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = tasks.size();

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &task = tasks[i];
        Outcome &slot = outcomes[i];
        enqueue([&task, &slot, &done_mutex, &done_cv, &remaining] {
            try {
                slot.result = task();
            } catch (...) {
                slot.error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(done_mutex);
            if (--remaining == 0)
                done_cv.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
    return outcomes;
}

std::vector<RunResult>
RunExecutor::runBatch(const std::vector<RunJob> &jobs,
                      const Progress &progress)
{
    const std::size_t n = jobs.size();
    std::vector<RunResult> results(n);
    if (n == 0)
        return results;

    // Resolve cache hits and collapse duplicate keys: one task per
    // distinct uncached key, in first-appearance (= submission) order.
    std::vector<std::string> keys(n);
    std::vector<std::size_t> task_jobs;
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        std::unordered_map<std::string, std::size_t> scheduled;
        for (std::size_t i = 0; i < n; ++i) {
            keys[i] = runJobKey(jobs[i]);
            if (cache_.count(keys[i]) > 0) {
                ++cache_hits_;
                continue;
            }
            if (scheduled.emplace(keys[i], i).second)
                task_jobs.push_back(i);
        }
    }

    std::vector<Task> tasks;
    tasks.reserve(task_jobs.size());
    for (std::size_t job_index : task_jobs) {
        const RunJob &job = jobs[job_index];
        tasks.push_back([&job, job_index, &progress] {
            if (progress)
                progress(job, job_index);
            return runBenchmark(job.workload, job.config, job.params);
        });
    }

    std::vector<Outcome> outcomes = runTasks(tasks);

    // Cache everything that completed, then surface the first failure.
    std::exception_ptr first_error;
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        for (std::size_t t = 0; t < outcomes.size(); ++t) {
            if (outcomes[t].ok()) {
                cache_[keys[task_jobs[t]]] = std::move(outcomes[t].result);
            } else if (!first_error) {
                first_error = outcomes[t].error;
            }
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);

    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        for (std::size_t i = 0; i < n; ++i) {
            auto it = cache_.find(keys[i]);
            if (it == cache_.end())
                panic("RunExecutor: batch result missing for job %zu", i);
            results[i] = it->second;
        }
    }
    return results;
}

std::size_t
RunExecutor::cacheHits() const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_hits_;
}

std::size_t
RunExecutor::cacheSize() const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.size();
}

void
RunExecutor::clearCache()
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
}

} // namespace uvmsim
