#include "run_executor.hh"

#include <cstdio>
#include <utility>

#include "api/result_store.hh"
#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

/** Exact round-trip formatting for double-typed config fields. */
void
appendDouble(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a,", v);
    out += buf;
}

void
appendUint(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
    out += ',';
}

/** Length-prefixed so embedded separators cannot alias keys. */
void
appendString(std::string &out, const std::string &v)
{
    out += std::to_string(v.size());
    out += ':';
    out += v;
    out += ',';
}

} // namespace

std::string
runJobKey(const RunJob &job)
{
    std::string key = job.workload;
    key += '|';

    const GpuConfig &g = job.config.gpu;
    appendUint(key, g.num_sms);
    appendDouble(key, g.core_mhz);
    appendUint(key, g.max_warps_per_sm);
    appendUint(key, g.max_tbs_per_sm);
    appendUint(key, g.tlb_entries);
    appendUint(key, g.l1_bytes);
    appendUint(key, g.l1_assoc);
    appendUint(key, g.l1_hit_cycles);
    appendUint(key, g.l2_bytes);
    appendUint(key, g.l2_assoc);
    appendUint(key, g.l2_line_bytes);
    appendUint(key, g.l2_hit_cycles);
    appendUint(key, g.dram_latency_ns);
    appendDouble(key, g.dram_bandwidth_gbps);
    appendUint(key, g.kernel_launch_overhead);
    appendUint(key, g.max_concurrent_kernels);
    appendUint(key, g.issue_ports_per_sm);
    key += '|';

    const SimConfig &c = job.config;
    appendUint(key, static_cast<std::uint64_t>(c.prefetcher_before));
    appendUint(key, static_cast<std::uint64_t>(c.prefetcher_after));
    appendUint(key, static_cast<std::uint64_t>(c.eviction));
    appendDouble(key, c.oversubscription_percent);
    appendDouble(key, c.free_buffer_percent);
    appendDouble(key, c.lru_reserve_percent);
    appendUint(key, c.device_memory_bytes);
    appendUint(key, static_cast<std::uint64_t>(c.pcie_model));
    appendUint(key, c.fault_latency);
    appendUint(key, c.fault_batch_size);
    appendDouble(key, c.fault_latency_jitter);
    appendUint(key, c.whole_unit_writeback ? 1 : 0);
    appendUint(key, c.user_prefetch_footprint ? 1 : 0);
    appendUint(key, c.page_walk_cycles);
    appendUint(key, c.page_walkers);
    appendUint(key, c.mshr_entries);
    appendUint(key, c.tenants);
    appendUint(key, static_cast<std::uint64_t>(c.tenant_eviction));
    appendUint(key, c.serialize_kernel_streams ? 1 : 0);
    appendUint(key, c.seed);
    appendUint(key, c.audit ? 1 : 0);
    // Tracing never changes simulation results, but jobs with
    // different artifact paths must not dedup onto one run or only
    // one output file would be written.
    appendString(key, c.trace_spec);
    appendString(key, c.trace_out);
    appendUint(key, c.epoch_ticks);
    key += '|';

    const WorkloadParams &p = job.params;
    appendDouble(key, p.size_scale);
    appendUint(key, p.iterations);
    appendUint(key, p.seed);
    appendUint(key, p.warps_per_tb);
    appendString(key, p.trace_path);
    return key;
}

RunExecutor::RunExecutor(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RunExecutor::~RunExecutor()
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
RunExecutor::workerLoop()
{
    for (;;) {
        std::function<void()> work;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            work = std::move(queue_.front());
            queue_.pop_front();
        }
        work();
    }
}

void
RunExecutor::enqueue(std::function<void()> work)
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(std::move(work));
    }
    queue_cv_.notify_one();
}

std::vector<RunExecutor::Outcome>
RunExecutor::runTasks(const std::vector<Task> &tasks)
{
    std::vector<Outcome> outcomes(tasks.size());
    if (tasks.empty())
        return outcomes;

    // Completion latch shared with the workers.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = tasks.size();

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &task = tasks[i];
        Outcome &slot = outcomes[i];
        enqueue([&task, &slot, &done_mutex, &done_cv, &remaining] {
            try {
                slot.result = task();
            } catch (...) {
                slot.error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(done_mutex);
            if (--remaining == 0)
                done_cv.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
    return outcomes;
}

std::vector<RunResult>
RunExecutor::runBatch(const std::vector<RunJob> &jobs,
                      const Progress &progress)
{
    const std::size_t n = jobs.size();
    std::vector<RunResult> results(n);
    if (n == 0)
        return results;

    // Resolve in-process cache hits and collapse duplicate keys: one
    // pending group per distinct uncached key, in first-appearance
    // (= submission) order.  Hit results are copied out immediately so
    // the final answer never depends on an entry surviving eviction.
    std::vector<std::string> keys(n);
    std::unordered_map<std::string, std::vector<std::size_t>> pending;
    std::vector<std::size_t> task_jobs;
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        for (std::size_t i = 0; i < n; ++i) {
            keys[i] = runJobKey(jobs[i]);
            if (cacheLookupLocked(keys[i], results[i])) {
                ++cache_hits_;
                continue;
            }
            auto [it, fresh] = pending.try_emplace(keys[i]);
            it->second.push_back(i);
            if (fresh)
                task_jobs.push_back(i);
        }
    }

    // Read through to the persistent store (process-safe; no executor
    // lock held across the file I/O).  A store hit fills every pending
    // job with that key and warms the in-process cache.
    if (store_ != nullptr && !task_jobs.empty()) {
        std::vector<std::size_t> uncached;
        uncached.reserve(task_jobs.size());
        for (std::size_t job_index : task_jobs) {
            const std::string &key = keys[job_index];
            std::optional<std::string> payload = store_->load(key);
            RunResult from_store;
            if (payload && decodeRunResult(*payload, from_store)) {
                for (std::size_t i : pending[key])
                    results[i] = from_store;
                std::lock_guard<std::mutex> lock(cache_mutex_);
                cacheInsertLocked(key, std::move(from_store));
                continue;
            }
            // Undecodable payloads (encoder drift without a version
            // bump) fall through to recompute; the publish below then
            // replaces the entry.
            uncached.push_back(job_index);
        }
        task_jobs = std::move(uncached);
    }

    std::vector<Task> tasks;
    tasks.reserve(task_jobs.size());
    for (std::size_t job_index : task_jobs) {
        const RunJob &job = jobs[job_index];
        tasks.push_back([&job, job_index, &progress] {
            if (progress)
                progress(job, job_index);
            return runBenchmark(job.workload, job.config, job.params);
        });
    }

    std::vector<Outcome> outcomes = runTasks(tasks);

    // Fill results from the outcomes directly (never back through the
    // cache: a bounded cache may already have evicted them), write
    // back to the store, cache in-process, then surface the first
    // failure.
    std::exception_ptr first_error;
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
        if (!outcomes[t].ok()) {
            if (!first_error)
                first_error = outcomes[t].error;
            continue;
        }
        const std::string &key = keys[task_jobs[t]];
        for (std::size_t i : pending[key])
            results[i] = outcomes[t].result;
        if (store_ != nullptr)
            store_->publish(key, encodeRunResult(outcomes[t].result));
        std::lock_guard<std::mutex> lock(cache_mutex_);
        cacheInsertLocked(key, std::move(outcomes[t].result));
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

bool
RunExecutor::cacheLookupLocked(const std::string &key, RunResult &out)
{
    auto it = cache_index_.find(key);
    if (it == cache_index_.end())
        return false;
    std::uint32_t idx = it->second;
    out = nodes_[idx].result;
    cacheDetachLocked(idx);
    cachePushFrontLocked(idx);
    return true;
}

namespace
{

/**
 * Accounted heap footprint of one cached entry: node record, key and
 * workload strings, and the stats map (per-element tree node overhead
 * plus the name string).  An estimate -- the bound is about keeping a
 * 10k-cell sweep from holding gigabytes, not exact malloc accounting.
 */
std::uint64_t
entryFootprint(const std::string &key, const RunResult &result)
{
    std::uint64_t bytes = 96 + key.size() + result.workload.size();
    for (const auto &[name, value] : result.stats) {
        (void)value;
        bytes += 64 + name.size();
    }
    return bytes;
}

} // namespace

void
RunExecutor::cacheInsertLocked(const std::string &key, RunResult result)
{
    std::uint64_t bytes = entryFootprint(key, result);
    if (cache_capacity_ != 0 && bytes > cache_capacity_)
        return; // larger than the whole cache: not worth keeping

    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
        std::uint32_t idx = it->second;
        cache_bytes_ -= nodes_[idx].bytes;
        nodes_[idx].result = std::move(result);
        nodes_[idx].bytes = bytes;
        cache_bytes_ += bytes;
        cacheDetachLocked(idx);
        cachePushFrontLocked(idx);
        cacheEvictToCapacityLocked();
        return;
    }

    std::uint32_t idx;
    if (!free_nodes_.empty()) {
        idx = free_nodes_.back();
        free_nodes_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
    }
    nodes_[idx].key = key;
    nodes_[idx].result = std::move(result);
    nodes_[idx].bytes = bytes;
    cache_bytes_ += bytes;
    cache_index_.emplace(key, idx);
    cachePushFrontLocked(idx);
    cacheEvictToCapacityLocked();
}

void
RunExecutor::cacheDetachLocked(std::uint32_t idx)
{
    CacheNode &node = nodes_[idx];
    if (node.prev != npos)
        nodes_[node.prev].next = node.next;
    else
        lru_head_ = node.next;
    if (node.next != npos)
        nodes_[node.next].prev = node.prev;
    else
        lru_tail_ = node.prev;
    node.prev = npos;
    node.next = npos;
}

void
RunExecutor::cachePushFrontLocked(std::uint32_t idx)
{
    CacheNode &node = nodes_[idx];
    node.prev = npos;
    node.next = lru_head_;
    if (lru_head_ != npos)
        nodes_[lru_head_].prev = idx;
    lru_head_ = idx;
    if (lru_tail_ == npos)
        lru_tail_ = idx;
}

void
RunExecutor::cacheEvictToCapacityLocked()
{
    if (cache_capacity_ == 0)
        return;
    while (cache_bytes_ > cache_capacity_ && lru_tail_ != npos) {
        std::uint32_t idx = lru_tail_;
        CacheNode &node = nodes_[idx];
        cache_bytes_ -= node.bytes;
        cache_index_.erase(node.key);
        cacheDetachLocked(idx);
        node.key.clear();
        node.result = RunResult();
        node.bytes = 0;
        free_nodes_.push_back(idx);
    }
}

void
RunExecutor::attachStore(ResultStore *store)
{
    store_ = store;
}

void
RunExecutor::setCacheCapacity(std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_capacity_ = bytes;
    cacheEvictToCapacityLocked();
}

std::uint64_t
RunExecutor::cacheCapacity() const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_capacity_;
}

std::uint64_t
RunExecutor::cacheBytes() const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_bytes_;
}

std::size_t
RunExecutor::cacheHits() const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_hits_;
}

std::size_t
RunExecutor::cacheSize() const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_index_.size();
}

void
RunExecutor::clearCache()
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_index_.clear();
    nodes_.clear();
    free_nodes_.clear();
    lru_head_ = npos;
    lru_tail_ = npos;
    cache_bytes_ = 0;
}

} // namespace uvmsim
