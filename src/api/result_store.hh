/**
 * @file
 * Persistent, content-addressed result store shared across processes.
 *
 * The RunExecutor's in-process cache dies with the process, so every
 * sweep/fuzz/bench invocation used to recompute the full
 * policy x workload x tenant matrix from scratch.  The ResultStore
 * promotes that cache to a durable on-disk tier that any number of
 * concurrent processes can share safely:
 *
 *   - Entries are keyed by a 128-bit hash of the caller's canonical
 *     key (runJobKey for simulations) salted with the store format
 *     version, laid out in two-level sharded directories
 *     (<dir>/objects/aa/bb/<hash>) so no single directory grows
 *     unboundedly.
 *   - Every entry embeds the full key and ends in a length + checksum
 *     footer.  A publish goes write-to-temp + fsync + atomic rename,
 *     so readers never observe a partial entry; concurrent writers of
 *     the same key each publish a complete file and the last rename
 *     wins.
 *   - A corrupt or truncated entry (bad magic, short file, checksum
 *     mismatch) is treated as a miss and moved aside into
 *     <dir>/quarantine/ for post-mortem -- never a fatal error, and
 *     never re-read.
 *   - Claim files (<entry>.claim, created with O_CREAT|O_EXCL) let
 *     cooperating worker processes partition a sweep without a
 *     coordinator: claim-or-skip is work stealing.  A claim left by a
 *     crashed worker expires by file age.
 *
 * The store knows nothing about simulation semantics: keys are opaque
 * strings and payloads are opaque bytes.  encodeRunResult /
 * decodeRunResult (below) give RunResult a canonical, exactly
 * round-tripping payload encoding.  Bump formatVersion whenever either
 * the entry layout or the payload encoding changes: old entries are
 * then simply never found (the version salts the hash).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "api/simulator.hh"

namespace uvmsim
{

/** Durable sharded key/payload store with crash-safe publishes. */
class ResultStore
{
  public:
    /** Bump when the entry layout or payload encoding changes. */
    static constexpr std::uint32_t formatVersion = 1;

    /** Monotonic counters; readable while other threads operate. */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t quarantined = 0;
        std::uint64_t stores = 0;
    };

    /**
     * Open (creating as needed) a store rooted at `dir`.  `version`
     * defaults to the current format; tests override it to prove a
     * version bump invalidates old entries.
     */
    explicit ResultStore(std::string dir,
                         std::uint32_t version = formatVersion);

    const std::string &dir() const { return dir_; }

    /**
     * Look up `key`.  Returns the payload on a valid hit; nullopt on
     * a miss.  Corruption is counted, quarantined and reported as a
     * miss.  Thread- and process-safe.
     */
    std::optional<std::string> load(const std::string &key);

    /**
     * Durably publish `payload` under `key` (temp + fsync + rename).
     * Concurrent publishes of the same key are safe: every writer
     * produces a complete entry and the last rename wins.
     */
    void publish(const std::string &key, const std::string &payload);

    /**
     * Try to take the claim file for `key` (O_CREAT|O_EXCL).  `owner`
     * is recorded in the file for post-mortem.  Returns false when
     * another worker already holds the claim.
     */
    bool tryClaim(const std::string &key, const std::string &owner);

    /** Drop this key's claim file (idempotent). */
    void releaseClaim(const std::string &key);

    /**
     * Break the claim on `key` if it is older than `ttl_seconds`
     * (0 breaks any existing claim).  Returns true when a claim was
     * removed -- the caller should then tryClaim() again; the racing
     * loser simply fails that create and moves on.
     */
    bool breakClaimIfStale(const std::string &key,
                           std::uint64_t ttl_seconds);

    Counters counters() const;

    /** On-disk entry path for `key` (exposed for tests/tooling). */
    std::string entryPath(const std::string &key) const;

    /** 32-hex-digit content address of `key` under `version`. */
    static std::string hashKey(const std::string &key,
                               std::uint32_t version);

  private:
    std::string claimPath(const std::string &key) const;
    void quarantine(const std::string &path);

    std::string dir_;
    std::uint32_t version_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> quarantined_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
};

/**
 * Canonical payload encoding of a RunResult: text lines with
 * length-prefixed strings and %a-formatted doubles, so every field --
 * including the full stats map -- round-trips bit-exactly.
 */
std::string encodeRunResult(const RunResult &result);

/**
 * Parse a payload produced by encodeRunResult.  Returns false (and
 * leaves `out` unspecified) on any structural mismatch; callers treat
 * that as a store miss.
 */
bool decodeRunResult(const std::string &payload, RunResult &out);

} // namespace uvmsim
