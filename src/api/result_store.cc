#include "result_store.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "sim/atomic_file.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace uvmsim
{

namespace
{

/*
 * Entry layout (all integers little-endian, written byte-by-byte so the
 * format is host-independent):
 *
 *   magic      8 bytes  "uvmstor1"
 *   version    u32      store format version (also salts the hash)
 *   key_len    u64
 *   key        key_len bytes   full canonical key, verified on load
 *   payload_len u64
 *   payload    payload_len bytes
 *   footer     u64 prefix_len  byte count of everything above
 *              u64 checksum    FNV-1a 64 over everything above
 *
 * A truncated write fails the size/footer check; a bit flip anywhere
 * fails the checksum; both quarantine the file and report a miss.
 */
constexpr char entry_magic[8] = {'u', 'v', 'm', 's', 't', 'o', 'r', '1'};
constexpr std::size_t footer_bytes = 16;

std::uint64_t
fnv1a64(const char *data, std::size_t len, std::uint64_t hash)
{
    for (std::size_t i = 0; i < len; i++) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
readU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
readU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::string
serializeEntry(const std::string &key, const std::string &payload,
               std::uint32_t version)
{
    std::string out;
    out.reserve(sizeof(entry_magic) + 4 + 8 + key.size() + 8 +
                payload.size() + footer_bytes);
    out.append(entry_magic, sizeof(entry_magic));
    appendU32(out, version);
    appendU64(out, key.size());
    out.append(key);
    appendU64(out, payload.size());
    out.append(payload);
    std::uint64_t prefix_len = out.size();
    std::uint64_t checksum =
        fnv1a64(out.data(), out.size(), 0xcbf29ce484222325ull);
    appendU64(out, prefix_len);
    appendU64(out, checksum);
    return out;
}

/**
 * Parse an entry file's bytes.  On success fills key/payload and
 * returns true; any structural problem (truncation, bad magic, bad
 * checksum) returns false.
 */
bool
parseEntry(const std::string &raw, std::uint32_t &version,
           std::string &key, std::string &payload)
{
    constexpr std::size_t min_size =
        sizeof(entry_magic) + 4 + 8 + 8 + footer_bytes;
    if (raw.size() < min_size)
        return false;
    if (std::memcmp(raw.data(), entry_magic, sizeof(entry_magic)) != 0)
        return false;
    version = readU32(raw.data() + sizeof(entry_magic));

    std::uint64_t prefix_len = readU64(raw.data() + raw.size() - 16);
    std::uint64_t checksum = readU64(raw.data() + raw.size() - 8);
    if (prefix_len != raw.size() - footer_bytes)
        return false;
    if (fnv1a64(raw.data(), prefix_len, 0xcbf29ce484222325ull) != checksum)
        return false;

    std::size_t pos = sizeof(entry_magic) + 4;
    std::uint64_t key_len = readU64(raw.data() + pos);
    pos += 8;
    if (key_len > prefix_len - pos - 8)
        return false;
    key.assign(raw.data() + pos, key_len);
    pos += key_len;
    std::uint64_t payload_len = readU64(raw.data() + pos);
    pos += 8;
    if (payload_len != prefix_len - pos)
        return false;
    payload.assign(raw.data() + pos, payload_len);
    return true;
}

/** Read a whole file; false when it cannot be opened or read. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return false;
    out = buf.str();
    return true;
}

} // namespace

ResultStore::ResultStore(std::string dir, std::uint32_t version)
    : dir_(std::move(dir)), version_(version)
{
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "objects", ec);
    if (ec)
        fatal("result store: cannot create '%s/objects': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
ResultStore::hashKey(const std::string &key, std::uint32_t version)
{
    // Two independent FNV streams (different offset bases, version
    // salt folded in first) give a 128-bit content address -- more
    // than enough that an accidental collision across a sweep's few
    // thousand keys is never the failure mode.  The embedded key is
    // still verified on load, so even a collision is only a miss.
    std::string salt;
    appendU32(salt, version);
    std::uint64_t h1 = fnv1a64(salt.data(), salt.size(),
                               0xcbf29ce484222325ull);
    std::uint64_t h2 = fnv1a64(salt.data(), salt.size(),
                               0x9ae16a3b2f90404full);
    h1 = fnv1a64(key.data(), key.size(), h1);
    h2 = fnv1a64(key.data(), key.size(), h2);
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, h1, h2);
    return std::string(buf, 32);
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    std::string hash = hashKey(key, version_);
    return dir_ + "/objects/" + hash.substr(0, 2) + "/" + hash.substr(2, 2) +
           "/" + hash;
}

std::string
ResultStore::claimPath(const std::string &key) const
{
    return entryPath(key) + ".claim";
}

void
ResultStore::quarantine(const std::string &path)
{
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "quarantine", ec);
    std::string dest = dir_ + "/quarantine/" +
                       fs::path(path).filename().string() + "." +
                       std::to_string(::getpid());
    fs::rename(path, dest, ec);
    if (ec) {
        // Another process may have quarantined it first; just make
        // sure the bad entry cannot be read again.
        fs::remove(path, ec);
    }
    warn("result store: quarantined corrupt entry '%s'", path.c_str());
}

std::optional<std::string>
ResultStore::load(const std::string &key)
{
    const std::string path = entryPath(key);
    std::string raw;
    if (!readFile(path, raw)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    std::uint32_t stored_version = 0;
    std::string stored_key, payload;
    if (!parseEntry(raw, stored_version, stored_key, payload)) {
        quarantine(path);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    if (stored_version != version_ || stored_key != key) {
        // A valid entry that is not ours (hash collision; cannot
        // normally happen for the version, which salts the hash).
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return payload;
}

void
ResultStore::publish(const std::string &key, const std::string &payload)
{
    const std::string path = entryPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        fatal("result store: cannot create shard dir for '%s': %s",
              path.c_str(), ec.message().c_str());
    publishFile(path, serializeEntry(key, payload, version_));
    stores_.fetch_add(1, std::memory_order_relaxed);
}

bool
ResultStore::tryClaim(const std::string &key, const std::string &owner)
{
    const std::string path = claimPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        fatal("result store: cannot create shard dir for '%s': %s",
              path.c_str(), ec.message().c_str());
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        fatal("result store: cannot create claim '%s': %s", path.c_str(),
              std::strerror(errno));
    }
    // Owner id is advisory (post-mortem only); a short write is fine.
    ssize_t n = ::write(fd, owner.data(), owner.size());
    (void)n;
    ::close(fd);
    return true;
}

void
ResultStore::releaseClaim(const std::string &key)
{
    std::error_code ec;
    fs::remove(claimPath(key), ec);
}

bool
ResultStore::breakClaimIfStale(const std::string &key,
                               std::uint64_t ttl_seconds)
{
    const std::string path = claimPath(key);
    std::error_code ec;
    // fs::file_time_type is the filesystem's own clock: this compares
    // two mtimes, not wall-clock inside the simulation, so determinism
    // is unaffected.
    auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return false; // no claim (or already broken by someone else)
    // Claim-staleness is inherently wall-clock; the age never reaches
    // simulation state or any emitted artifact.  lint:allow(det)
    auto age = fs::file_time_type::clock::now() - mtime;
    // A claim stamped in the future (clock skew between store writers
    // on a shared filesystem, a restored archive) would otherwise
    // have a forever-negative age and never go stale -- the sweep cell
    // it covers could never be resumed.  Tolerate skew up to the ttl;
    // beyond that the stamp is bogus and the claim is breakable.
    if (age < std::chrono::seconds(0))
        age = -age;
    if (age < std::chrono::seconds(ttl_seconds))
        return false;
    bool removed = fs::remove(path, ec);
    return removed && !ec;
}

ResultStore::Counters
ResultStore::counters() const
{
    Counters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.quarantined = quarantined_.load(std::memory_order_relaxed);
    c.stores = stores_.load(std::memory_order_relaxed);
    return c;
}

namespace
{

void
appendHexDouble(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    out += buf;
}

bool
parseHexDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

/** "len:bytes" so names may contain any character, '\n' included. */
void
appendLenString(std::string &out, const std::string &s)
{
    out += std::to_string(s.size());
    out += ':';
    out += s;
}

bool
parseLenString(const std::string &in, std::size_t &pos, std::string &out)
{
    std::size_t colon = in.find(':', pos);
    if (colon == std::string::npos || colon == pos)
        return false;
    std::size_t len = 0;
    for (std::size_t i = pos; i < colon; i++) {
        if (in[i] < '0' || in[i] > '9')
            return false;
        len = len * 10 + static_cast<std::size_t>(in[i] - '0');
        if (len > in.size())
            return false;
    }
    pos = colon + 1;
    if (len > in.size() - pos)
        return false;
    out.assign(in, pos, len);
    pos += len;
    return true;
}

bool
expect(const std::string &in, std::size_t &pos, char c)
{
    if (pos >= in.size() || in[pos] != c)
        return false;
    pos++;
    return true;
}

bool
parseU64Until(const std::string &in, std::size_t &pos, char delim,
              std::uint64_t &out)
{
    std::size_t end = in.find(delim, pos);
    if (end == std::string::npos || end == pos)
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = pos; i < end; i++) {
        if (in[i] < '0' || in[i] > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(in[i] - '0');
    }
    out = v;
    pos = end + 1;
    return true;
}

} // namespace

std::string
encodeRunResult(const RunResult &result)
{
    std::string out = "runresult1\n";
    appendLenString(out, result.workload);
    out += '\n';
    out += std::to_string(result.kernel_time);
    out += '\n';
    out += std::to_string(result.final_time);
    out += '\n';
    out += std::to_string(result.device_memory_bytes);
    out += '\n';
    out += std::to_string(result.footprint_bytes);
    out += '\n';
    out += std::to_string(result.stats.size());
    out += '\n';
    for (const auto &[name, value] : result.stats) {
        appendLenString(out, name);
        out += '=';
        appendHexDouble(out, value);
        out += '\n';
    }
    return out;
}

bool
decodeRunResult(const std::string &payload, RunResult &out)
{
    constexpr char header[] = "runresult1\n";
    constexpr std::size_t header_len = sizeof(header) - 1;
    if (payload.compare(0, header_len, header) != 0)
        return false;
    std::size_t pos = header_len;

    RunResult r;
    if (!parseLenString(payload, pos, r.workload))
        return false;
    if (!expect(payload, pos, '\n'))
        return false;
    std::uint64_t v = 0;
    if (!parseU64Until(payload, pos, '\n', v))
        return false;
    r.kernel_time = v;
    if (!parseU64Until(payload, pos, '\n', v))
        return false;
    r.final_time = v;
    if (!parseU64Until(payload, pos, '\n', r.device_memory_bytes))
        return false;
    if (!parseU64Until(payload, pos, '\n', r.footprint_bytes))
        return false;
    std::uint64_t nstats = 0;
    if (!parseU64Until(payload, pos, '\n', nstats))
        return false;
    if (nstats > payload.size()) // each stat line is >= 1 byte
        return false;
    for (std::uint64_t i = 0; i < nstats; i++) {
        std::string name;
        if (!parseLenString(payload, pos, name))
            return false;
        if (!expect(payload, pos, '='))
            return false;
        std::size_t end = payload.find('\n', pos);
        if (end == std::string::npos)
            return false;
        double value = 0;
        if (!parseHexDouble(payload.substr(pos, end - pos), value))
            return false;
        pos = end + 1;
        r.stats.emplace(std::move(name), value);
    }
    if (pos != payload.size())
        return false;
    out = std::move(r);
    return true;
}

} // namespace uvmsim
