/**
 * @file
 * The public entry point of uvmsim.
 *
 * A Simulator assembles the full system -- event queue, managed
 * address space, PCI-e link, device frames, page table, GMMU, GPU --
 * from one SimConfig, runs a Workload's kernel sequence to completion,
 * and returns every statistic the run produced.  Each run() call
 * builds a fresh system, so results are independent and deterministic
 * for a given (config, workload) pair.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   SimConfig cfg;
 *   cfg.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
 *   cfg.eviction = EvictionKind::treeBasedNeighborhood;
 *   cfg.oversubscription_percent = 110.0;
 *   Simulator sim(cfg);
 *   auto workload = makeWorkload("hotspot", {});
 *   RunResult r = sim.run(*workload);
 *   std::cout << r.kernelTimeUs() << "\n";
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/access_pattern.hh"
#include "core/gmmu.hh"
#include "core/policies.hh"
#include "gpu/gpu_config.hh"
#include "interconnect/bandwidth_model.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"
#include "workloads/workload.hh"

namespace uvmsim
{

/** Complete configuration of one simulation. */
struct SimConfig
{
    /** GPU execution-model parameters. */
    GpuConfig gpu;

    /** Prefetcher while the working set fits (paper default: TBNp). */
    PrefetcherKind prefetcher_before =
        PrefetcherKind::treeBasedNeighborhood;

    /** Prefetcher once over-subscribed (paper Secs. 4.2/7.1: none). */
    PrefetcherKind prefetcher_after = PrefetcherKind::none;

    /** Eviction policy under over-subscription. */
    EvictionKind eviction = EvictionKind::lru4k;

    /**
     * Working set as a percentage of device memory.  0 or <=100 means
     * the workload fits (device memory = footprint plus slack);
     * 110 reproduces the paper's "110% of device memory" setup.
     */
    double oversubscription_percent = 0.0;

    /** Free-page buffer as a percentage of device frames (Fig. 6/7). */
    double free_buffer_percent = 0.0;

    /** LRU cold-end reservation as a percentage of pages (Fig. 14). */
    double lru_reserve_percent = 0.0;

    /** Device memory override in bytes; 0 derives it from the rules
     *  above. */
    std::uint64_t device_memory_bytes = 0;

    /** PCI-e timing model flavour. */
    PcieModelKind pcie_model = PcieModelKind::interpolated;

    /** Far-fault service latency (measured: 45us on a GTX 1080ti). */
    Tick fault_latency = microseconds(45);

    /** Faulting pages serviced per latency window (1 = strict serial). */
    std::uint32_t fault_batch_size = 1;

    /** Relative jitter on the fault latency (0 = deterministic 45us). */
    double fault_latency_jitter = 0.0;

    /** Block policies write whole units back (paper Sec. 5.1); false
     *  ablates to dirty-page-only write-back. */
    bool whole_unit_writeback = true;

    /**
     * Issue a cudaMemPrefetchAsync-style user-directed prefetch of the
     * entire managed footprint before the first kernel launch (paper
     * Sec. 3's programmer-driven alternative to hardware prefetch).
     */
    bool user_prefetch_footprint = false;

    /** Page-walk latency in core cycles (Table 2: 100). */
    std::uint32_t page_walk_cycles = 100;

    /** Concurrent page-table walkers (0 = unlimited). */
    std::uint32_t page_walkers = 8;

    /** Far-fault MSHR capacity in distinct pages (0 = unlimited). */
    std::uint32_t mshr_entries = 0;

    /**
     * Number of tenants sharing the device.  Each tenant gets its own
     * ManagedSpace (VA-partitioned at a 32GB stride, see
     * core/tenant.hh) and an independent kernel stream; 1 reproduces
     * the single-tenant model exactly, bit for bit.
     */
    std::uint32_t tenants = 1;

    /** Cross-tenant victim arbitration (see core/tenant.hh). */
    TenantEvictionKind tenant_eviction = TenantEvictionKind::globalLru;

    /**
     * Launch tenant kernel streams one kernel at a time, round-robin
     * across tenants, instead of concurrently (MPS-style).  Serialized
     * streams keep the functional oracle exact; concurrent launches
     * are the realistic sharing model.  Ignored with one tenant.
     */
    bool serialize_kernel_streams = false;

    /** Seed for all policy randomness. */
    std::uint64_t seed = 1;

    /**
     * Enable the SimAuditor: cross-subsystem residency invariants are
     * re-verified after every fault service, migration arrival and
     * eviction drain, and the run dies with a structured state diff on
     * the first violation (see core/auditor.hh).  Costs O(resident
     * pages) per check; intended for debugging and CI, not timing
     * runs.  Builds configured with -DUVMSIM_AUDIT=ON force this on.
     */
    bool audit = false;

    /**
     * Event-tracing specification: "all" or a comma-separated subset
     * of fault,prefetch,migration,eviction,pcie,kernel (see
     * sim/trace.hh).  Empty (the default) disables tracing entirely;
     * every emission site then reduces to one branch on a null
     * pointer.
     */
    std::string trace_spec;

    /**
     * Base path for trace artifacts: the run writes
     * <trace_out>.trace.json (Chrome trace_event JSON for
     * chrome://tracing / Perfetto) and <trace_out>.epochs.csv (the
     * epoch time-series).  Empty with a non-empty trace_spec keeps
     * tracing in memory only (custom sinks attached via
     * Simulator::addTraceSink still see every event).
     */
    std::string trace_out;

    /**
     * Epoch length of the time-series aggregation, in ticks
     * (1 tick = 1 ps; default 100us).  See analysis/timeline.hh.
     */
    Tick epoch_ticks = microseconds(100);
};

/** Everything a run produced. */
struct RunResult
{
    /** Workload name. */
    std::string workload;

    /** Accumulated kernel execution time (the paper's metric). */
    Tick kernel_time = 0;

    /** End-of-simulation time. */
    Tick final_time = 0;

    /** Device memory the run used, in bytes. */
    std::uint64_t device_memory_bytes = 0;

    /** Managed footprint (padded), in bytes. */
    std::uint64_t footprint_bytes = 0;

    /** Every registered statistic by name. */
    std::map<std::string, double> stats;

    /** Kernel time in microseconds. */
    double kernelTimeUs() const { return ticksToMicroseconds(kernel_time); }

    /** Kernel time in milliseconds. */
    double kernelTimeMs() const { return ticksToMilliseconds(kernel_time); }

    /** Look up a stat; fatal() when the name is unknown. */
    double stat(const std::string &name) const;

    /** Convenience: far-faults serviced (Fig. 5). */
    double farFaults() const { return stat("gmmu.far_faults"); }

    /** Convenience: 4KB pages migrated host-to-device (Fig. 7). */
    double pagesMigrated() const { return stat("gmmu.pages_migrated"); }

    /** Convenience: 4KB pages evicted (Fig. 10). */
    double pagesEvicted() const { return stat("gmmu.pages_evicted"); }

    /** Convenience: thrashed pages (Fig. 16). */
    double pagesThrashed() const { return stat("gmmu.pages_thrashed"); }

    /** Convenience: average PCI-e read bandwidth in GB/s (Fig. 4). */
    double
    avgReadBandwidthGBps() const
    {
        return stat("pcie.h2d.avg_bandwidth_gbps");
    }
};

/**
 * End-of-run system state, captured after the event queue drains and
 * before the system is torn down.  This is the surface the
 * differential fuzz harness (src/testing/) diffs against its
 * FunctionalOracle: the exact resident set in LRU order, every tree's
 * to-be-valid size, and the memory-pressure flags.
 */
struct SystemSnapshot
{
    /** Resident pages, coldest (next victim candidate) first. */
    std::vector<PageNum> resident_cold_to_hot;

    /** Every allocation's trees in address order. */
    std::vector<TreeValidSize> trees;

    /** Whether the run ever hit the oversubscription latch. */
    bool oversubscribed = false;

    std::uint64_t total_frames = 0;
    std::uint64_t free_frames = 0;
};

/** Builds and runs complete simulations. */
class Simulator
{
  public:
    /** Per-kernel boundary observer: (index, name, start, end). */
    using KernelObserver = std::function<void(
        std::uint64_t, const std::string &, Tick, Tick)>;

    /** End-of-run state observer (see SystemSnapshot). */
    using SnapshotObserver = std::function<void(const SystemSnapshot &)>;

    explicit Simulator(SimConfig config = SimConfig{});

    /** The configuration this simulator applies to each run. */
    const SimConfig &config() const { return config_; }

    /** Observe every completed page access (Fig. 12 traces). */
    void setAccessObserver(Gmmu::AccessObserver observer);

    /** Observe kernel launch boundaries. */
    void setKernelObserver(KernelObserver observer);

    /** Observe the end-of-run state of every subsequent run(). */
    void setSnapshotObserver(SnapshotObserver observer);

    /**
     * Attach an extra trace sink (e.g. a test capture or an in-memory
     * EpochTimeline).  Only consulted when config().trace_spec selects
     * at least one category; the sink must outlive every run().
     */
    void addTraceSink(trace::TraceSink *sink);

    /**
     * Run a workload to completion on a freshly built system.
     * The workload must be freshly constructed (kernel streams are
     * consumed).  Requires config().tenants == 1.
     */
    RunResult run(Workload &workload);

    /**
     * Run one workload per tenant to completion on a freshly built
     * system.  `workloads` must hold exactly config().tenants entries,
     * each freshly constructed; tenant t's allocations land in its own
     * VA-partitioned ManagedSpace and its kernels launch concurrently
     * with the other tenants' (or round-robin serialized when
     * config().serialize_kernel_streams is set).
     */
    RunResult run(const std::vector<Workload *> &workloads);

  private:
    SimConfig config_;
    Gmmu::AccessObserver access_observer_;
    KernelObserver kernel_observer_;
    SnapshotObserver snapshot_observer_;
    std::vector<trace::TraceSink *> extra_sinks_;
};

/**
 * One-call convenience used throughout the bench harnesses: build the
 * named workload and run it under the given config.
 */
RunResult runBenchmark(const std::string &workload_name,
                       const SimConfig &config,
                       const WorkloadParams &params = WorkloadParams{});

/**
 * Wire an AccessPatternAnalyzer into a simulator: every completed
 * page access feeds recordAccess() and every kernel completion feeds
 * kernelBoundary().  Replaces any previously set observers.
 */
void attachAnalyzer(Simulator &sim, AccessPatternAnalyzer &analyzer);

/** Mean/min/max of a metric across seed-varied runs. */
struct SeedSweepResult
{
    std::size_t runs = 0;
    double mean_kernel_time_us = 0.0;
    double min_kernel_time_us = 0.0;
    double max_kernel_time_us = 0.0;
    /** Per-stat means across the runs. */
    std::map<std::string, double> mean_stats;
};

/**
 * Run a benchmark under `num_seeds` different policy seeds (base
 * seed, base+1, ...) and aggregate.  Deterministic policies produce
 * identical runs; the stochastic ones (Rp, Re, latency jitter) get a
 * fair average -- use this when comparing against them.
 *
 * `jobs` sets how many seeds run concurrently on a RunExecutor pool
 * (see api/run_executor.hh): 1 keeps everything on the calling
 * thread, 0 uses the hardware concurrency.  The aggregate is
 * bit-identical for every `jobs` value -- each seed builds its own
 * system and the sums are accumulated in seed order.
 */
SeedSweepResult runBenchmarkSeeds(const std::string &workload_name,
                                  const SimConfig &config,
                                  const WorkloadParams &params,
                                  std::size_t num_seeds,
                                  std::size_t jobs = 1);

} // namespace uvmsim
