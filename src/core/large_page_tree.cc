#include "large_page_tree.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

LargePageTree::LargePageTree(Addr base_addr, std::uint32_t num_leaves)
    : base_(base_addr), num_leaves_(num_leaves)
{
    if (base_ % basicBlockSize != 0)
        panic("LargePageTree base %llx not 64KB aligned",
              static_cast<unsigned long long>(base_));
    if (num_leaves_ == 0 || num_leaves_ > blocksPerLargePage ||
        !std::has_single_bit(num_leaves_)) {
        panic("LargePageTree leaf count %u must be a power of two in "
              "[1, 32]", num_leaves_);
    }
    height_ = static_cast<std::uint32_t>(std::bit_width(num_leaves_) - 1);
}

void
LargePageTree::setBit(std::uint32_t leaf, std::uint32_t bit)
{
    leaf_bits_[leaf] |= static_cast<std::uint16_t>(1u << bit);
    for (std::uint32_t n = num_leaves_ + leaf; n >= 1; n >>= 1)
        ++node_pages_[n];
}

void
LargePageTree::clearBit(std::uint32_t leaf, std::uint32_t bit)
{
    leaf_bits_[leaf] &= static_cast<std::uint16_t>(~(1u << bit));
    for (std::uint32_t n = num_leaves_ + leaf; n >= 1; n >>= 1)
        --node_pages_[n];
}

bool
LargePageTree::covers(PageNum page) const
{
    Addr a = pageBase(page);
    return a >= base_ && a < endAddr();
}

std::uint32_t
LargePageTree::leafOf(PageNum page) const
{
    if (!covers(page))
        panic("page %llu outside tree at base %llx",
              static_cast<unsigned long long>(page),
              static_cast<unsigned long long>(base_));
    return static_cast<std::uint32_t>((pageBase(page) - base_) >>
                                      basicBlockShift);
}

PageNum
LargePageTree::leafFirstPage(std::uint32_t leaf) const
{
    return pageOf(base_ + static_cast<Addr>(leaf) * basicBlockSize);
}

void
LargePageTree::markPage(PageNum page)
{
    std::uint32_t leaf = leafOf(page);
    std::uint32_t bit =
        static_cast<std::uint32_t>(page - leafFirstPage(leaf));
    if (!((leaf_bits_[leaf] >> bit) & 1u))
        setBit(leaf, bit);
}

void
LargePageTree::unmarkPage(PageNum page)
{
    std::uint32_t leaf = leafOf(page);
    std::uint32_t bit =
        static_cast<std::uint32_t>(page - leafFirstPage(leaf));
    if ((leaf_bits_[leaf] >> bit) & 1u)
        clearBit(leaf, bit);
}

bool
LargePageTree::pageMarked(PageNum page) const
{
    std::uint32_t leaf = leafOf(page);
    std::uint32_t bit =
        static_cast<std::uint32_t>(page - leafFirstPage(leaf));
    return (leaf_bits_[leaf] >> bit) & 1u;
}

std::uint32_t
LargePageTree::leafMarkedPages(std::uint32_t leaf) const
{
    if (leaf >= num_leaves_)
        panic("leaf index %u out of range", leaf);
    return static_cast<std::uint32_t>(std::popcount(leaf_bits_[leaf]));
}

std::uint64_t
LargePageTree::nodeMarkedBytes(std::uint32_t height,
                               std::uint32_t index) const
{
    if (height > height_ || index >= (num_leaves_ >> height))
        panic("node (%u, %u) out of range", height, index);
    return markedUnder(height, index);
}

std::uint64_t
LargePageTree::totalMarkedBytes() const
{
    return markedUnder(height_, 0);
}

std::vector<PageNum>
LargePageTree::markedPages() const
{
    std::vector<PageNum> out;
    for (std::uint32_t l = 0; l < num_leaves_; ++l) {
        PageNum first = leafFirstPage(l);
        for (std::uint32_t p = 0; p < pagesPerBasicBlock; ++p) {
            if ((leaf_bits_[l] >> p) & 1u)
                out.push_back(first + p);
        }
    }
    return out;
}

std::uint64_t
LargePageTree::fillPages(std::uint32_t height, std::uint32_t index,
                         std::uint64_t pages, std::vector<PageNum> &out)
{
    std::uint64_t filled = 0;
    while (filled < pages) {
        // Descend toward the emptier side until a leaf is reached.
        std::uint32_t h = height;
        std::uint32_t i = index;
        while (h > 0) {
            std::uint32_t left = 2 * i;
            std::uint32_t right = 2 * i + 1;
            std::uint64_t cap_child = nodeCapacityBytes(h - 1);
            std::uint64_t lm = markedUnder(h - 1, left);
            std::uint64_t rm = markedUnder(h - 1, right);
            bool left_has_room = lm < cap_child;
            bool right_has_room = rm < cap_child;
            if (!left_has_room && !right_has_room)
                return filled; // subtree full
            if (left_has_room && (!right_has_room || lm <= rm)) {
                i = left;
            } else {
                i = right;
            }
            --h;
        }
        // Leaf: mark the lowest unmarked page.
        std::uint16_t bits = leaf_bits_[i];
        if (bits == 0xffff)
            return filled; // leaf full (whole subtree was this leaf)
        std::uint32_t bit = std::countr_one(bits);
        setBit(i, bit);
        out.push_back(leafFirstPage(i) + bit);
        ++filled;
    }
    return filled;
}

std::uint64_t
LargePageTree::drainPages(std::uint32_t height, std::uint32_t index,
                          std::uint64_t pages, std::vector<PageNum> &out)
{
    std::uint64_t drained = 0;
    while (drained < pages) {
        // Descend toward the fuller side until a leaf is reached.
        std::uint32_t h = height;
        std::uint32_t i = index;
        while (h > 0) {
            std::uint32_t left = 2 * i;
            std::uint32_t right = 2 * i + 1;
            std::uint64_t lm = markedUnder(h - 1, left);
            std::uint64_t rm = markedUnder(h - 1, right);
            if (lm == 0 && rm == 0)
                return drained; // subtree empty
            if (lm > 0 && (rm == 0 || lm >= rm)) {
                i = left;
            } else {
                i = right;
            }
            --h;
        }
        // Leaf: unmark the highest marked page.
        std::uint16_t bits = leaf_bits_[i];
        if (bits == 0)
            return drained;
        std::uint32_t bit =
            static_cast<std::uint32_t>(
                std::bit_width(static_cast<unsigned>(bits))) - 1;
        clearBit(i, bit);
        out.push_back(leafFirstPage(i) + bit);
        ++drained;
    }
    return drained;
}

std::vector<PageNum>
LargePageTree::faultFill(PageNum faulty_page)
{
    std::uint32_t leaf = leafOf(faulty_page);
    std::vector<PageNum> out;

    // Step 1: migrate the whole faulted basic block (the unmarked
    // remainder of it).
    PageNum first = leafFirstPage(leaf);
    for (std::uint32_t p = 0; p < pagesPerBasicBlock; ++p) {
        if (!((leaf_bits_[leaf] >> p) & 1u)) {
            setBit(leaf, p);
            out.push_back(first + p);
        }
    }

    // Step 2: walk leaf-to-root; balance any ancestor whose to-be-valid
    // size strictly exceeds half its capacity.
    for (std::uint32_t h = 1; h <= height_; ++h) {
        std::uint32_t node = leaf >> h;
        std::uint64_t marked = markedUnder(h, node);
        std::uint64_t cap = nodeCapacityBytes(h);
        if (marked * 2 <= cap)
            continue;
        std::uint32_t left = 2 * node;
        std::uint32_t right = 2 * node + 1;
        std::uint64_t lm = markedUnder(h - 1, left);
        std::uint64_t rm = markedUnder(h - 1, right);
        if (lm == rm)
            continue;
        if (lm < rm)
            fillPages(h - 1, left, (rm - lm) / pageSize, out);
        else
            fillPages(h - 1, right, (lm - rm) / pageSize, out);
    }

    std::sort(out.begin(), out.end());
    return out;
}

std::vector<PageNum>
LargePageTree::evictDrain(std::uint32_t victim_leaf)
{
    if (victim_leaf >= num_leaves_)
        panic("evictDrain: leaf %u out of range", victim_leaf);

    std::vector<PageNum> out;

    // Step 1: evict every marked page of the victim basic block.
    PageNum first = leafFirstPage(victim_leaf);
    for (std::uint32_t p = 0; p < pagesPerBasicBlock; ++p) {
        if ((leaf_bits_[victim_leaf] >> p) & 1u) {
            clearBit(victim_leaf, p);
            out.push_back(first + p);
        }
    }

    // Step 2: walk leaf-to-root; balance any ancestor whose valid size
    // falls strictly below half its capacity by draining its fuller
    // child down to the emptier child's size.
    for (std::uint32_t h = 1; h <= height_; ++h) {
        std::uint32_t node = victim_leaf >> h;
        std::uint64_t marked = markedUnder(h, node);
        std::uint64_t cap = nodeCapacityBytes(h);
        if (marked * 2 >= cap)
            continue;
        std::uint32_t left = 2 * node;
        std::uint32_t right = 2 * node + 1;
        std::uint64_t lm = markedUnder(h - 1, left);
        std::uint64_t rm = markedUnder(h - 1, right);
        if (lm == rm)
            continue;
        if (lm > rm)
            drainPages(h - 1, left, (lm - rm) / pageSize, out);
        else
            drainPages(h - 1, right, (rm - lm) / pageSize, out);
    }

    std::sort(out.begin(), out.end());
    return out;
}

bool
LargePageTree::checkConsistent() const
{
    // Leaf counters must match the bitmaps...
    for (std::uint32_t l = 0; l < num_leaves_; ++l) {
        if (node_pages_[num_leaves_ + l] !=
            std::popcount(leaf_bits_[l]))
            return false;
    }
    // ...and aggregates must equal the sum of their children at every
    // level.
    for (std::uint32_t h = 1; h <= height_; ++h) {
        for (std::uint32_t i = 0; i < (num_leaves_ >> h); ++i) {
            std::uint64_t whole = markedUnder(h, i);
            std::uint64_t parts =
                markedUnder(h - 1, 2 * i) + markedUnder(h - 1, 2 * i + 1);
            if (whole != parts)
                return false;
        }
    }
    return totalMarkedBytes() <= capacityBytes();
}

} // namespace uvmsim
