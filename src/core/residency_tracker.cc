#include "residency_tracker.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace uvmsim
{

void
ResidencyTracker::touchHierarchy(PageNum page)
{
    std::uint64_t block = basicBlockOf(pageBase(page));
    std::uint64_t slot = largePageOf(pageBase(page));

    auto [cit, chunk_new] = chunks_.try_emplace(slot);
    ChunkEntry &chunk = cit->second;
    if (chunk_new) {
        chunk_order_.push_front(slot);
        chunk.self = chunk_order_.begin();
    } else {
        chunk_order_.splice(chunk_order_.begin(), chunk_order_, chunk.self);
    }

    auto bit = chunk.block_pos.find(block);
    if (bit == chunk.block_pos.end()) {
        chunk.block_order.push_front(block);
        chunk.block_pos[block] = chunk.block_order.begin();
    } else {
        chunk.block_order.splice(chunk.block_order.begin(),
                                 chunk.block_order, bit->second);
    }
}

void
ResidencyTracker::removeFromHierarchy(PageNum page)
{
    std::uint64_t block = basicBlockOf(pageBase(page));
    std::uint64_t slot = largePageOf(pageBase(page));

    auto cit = chunks_.find(slot);
    if (cit == chunks_.end())
        panic("hierarchy missing chunk for page %llu",
              static_cast<unsigned long long>(page));
    ChunkEntry &chunk = cit->second;

    auto pit = chunk.block_pages.find(block);
    if (pit == chunk.block_pages.end() || pit->second == 0)
        panic("hierarchy missing block for page %llu",
              static_cast<unsigned long long>(page));
    --pit->second;
    --chunk.pages;
    if (pit->second == 0) {
        chunk.block_pages.erase(pit);
        auto bit = chunk.block_pos.find(block);
        chunk.block_order.erase(bit->second);
        chunk.block_pos.erase(bit);
    }
    if (chunk.pages == 0) {
        chunk_order_.erase(chunk.self);
        chunks_.erase(cit);
    }
}

void
ResidencyTracker::onResident(PageNum page)
{
    if (page_pos_.count(page))
        panic("page %llu already tracked as resident",
              static_cast<unsigned long long>(page));

    page_order_.push_front(page);
    page_pos_[page] = page_order_.begin();

    std::uint64_t block = basicBlockOf(pageBase(page));
    std::uint64_t slot = largePageOf(pageBase(page));
    touchHierarchy(page);
    ChunkEntry &chunk = chunks_.at(slot);
    ++chunk.block_pages[block];
    ++chunk.pages;

    random_pos_[page] = random_pool_.size();
    random_pool_.push_back(page);
}

void
ResidencyTracker::onAccess(PageNum page)
{
    auto it = page_pos_.find(page);
    if (it == page_pos_.end())
        return; // access raced with an eviction decision; harmless
    page_order_.splice(page_order_.begin(), page_order_, it->second);
    touchHierarchy(page);
}

void
ResidencyTracker::onEvicted(PageNum page)
{
    auto it = page_pos_.find(page);
    if (it == page_pos_.end())
        panic("evicting untracked page %llu",
              static_cast<unsigned long long>(page));
    page_order_.erase(it->second);
    page_pos_.erase(it);

    removeFromHierarchy(page);

    auto rit = random_pos_.find(page);
    if (rit == random_pos_.end())
        panic("evicted page %llu missing from the random sampler",
              static_cast<unsigned long long>(page));
    std::size_t idx = rit->second;
    PageNum last = random_pool_.back();
    random_pool_[idx] = last;
    random_pos_[last] = idx;
    random_pool_.pop_back();
    random_pos_.erase(rit);
}

bool
ResidencyTracker::isTracked(PageNum page) const
{
    return page_pos_.count(page) > 0;
}

std::optional<PageNum>
ResidencyTracker::lruPageVictim(std::uint64_t skip_pages) const
{
    if (skip_pages >= page_order_.size())
        return std::nullopt;
    auto it = page_order_.rbegin();
    std::advance(it, static_cast<long>(skip_pages));
    return *it;
}

std::optional<PageNum>
ResidencyTracker::randomPageVictim(Rng &rng) const
{
    if (random_pool_.empty())
        return std::nullopt;
    return random_pool_[rng.below(random_pool_.size())];
}

std::optional<PageNum>
ResidencyTracker::mruPageVictim() const
{
    if (page_order_.empty())
        return std::nullopt;
    return page_order_.front();
}

std::optional<std::uint64_t>
ResidencyTracker::lruBlockVictim(std::uint64_t skip_pages) const
{
    std::uint64_t to_skip = skip_pages;
    // Chunks cold-to-hot, blocks cold-to-hot within each chunk.
    for (auto cit = chunk_order_.rbegin(); cit != chunk_order_.rend();
         ++cit) {
        const ChunkEntry &chunk = chunks_.at(*cit);
        for (auto bit = chunk.block_order.rbegin();
             bit != chunk.block_order.rend(); ++bit) {
            std::uint64_t pages = chunk.block_pages.at(*bit);
            if (to_skip >= pages) {
                to_skip -= pages;
                continue;
            }
            return *bit;
        }
    }
    return std::nullopt;
}

std::optional<std::uint64_t>
ResidencyTracker::lruLargePageVictim(std::uint64_t skip_pages) const
{
    std::uint64_t to_skip = skip_pages;
    for (auto cit = chunk_order_.rbegin(); cit != chunk_order_.rend();
         ++cit) {
        const ChunkEntry &chunk = chunks_.at(*cit);
        if (to_skip >= chunk.pages) {
            to_skip -= chunk.pages;
            continue;
        }
        return *cit;
    }
    return std::nullopt;
}

std::vector<PageNum>
ResidencyTracker::pagesInBlock(std::uint64_t block) const
{
    std::vector<PageNum> out;
    PageNum first = pageOf(basicBlockBase(block));
    for (std::uint64_t p = 0; p < pagesPerBasicBlock; ++p) {
        if (isTracked(first + p))
            out.push_back(first + p);
    }
    return out;
}

std::vector<PageNum>
ResidencyTracker::pagesInLargePage(std::uint64_t slot) const
{
    std::vector<PageNum> out;
    PageNum first = pageOf(slot << largePageShift);
    for (std::uint64_t p = 0; p < pagesPerLargePage; ++p) {
        if (isTracked(first + p))
            out.push_back(first + p);
    }
    return out;
}

std::uint64_t
ResidencyTracker::blockResidentPages(std::uint64_t block) const
{
    std::uint64_t slot = block / (largePageSize / basicBlockSize);
    auto cit = chunks_.find(slot);
    if (cit == chunks_.end())
        return 0;
    auto bit = cit->second.block_pages.find(block);
    return bit == cit->second.block_pages.end() ? 0 : bit->second;
}

std::vector<PageNum>
ResidencyTracker::coldPages(std::uint64_t n) const
{
    std::vector<PageNum> out;
    out.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n, page_order_.size())));
    for (auto it = page_order_.rbegin();
         it != page_order_.rend() && out.size() < n; ++it)
        out.push_back(*it);
    return out;
}

bool
ResidencyTracker::checkConsistent() const
{
    if (page_order_.size() != page_pos_.size())
        return false;
    if (random_pool_.size() != page_pos_.size())
        return false;

    std::uint64_t hierarchy_pages = 0;
    for (const auto &[slot, chunk] : chunks_) {
        std::uint64_t chunk_pages = 0;
        for (const auto &[block, n] : chunk.block_pages) {
            if (n == 0)
                return false;
            chunk_pages += n;
        }
        if (chunk_pages != chunk.pages)
            return false;
        if (chunk.block_pos.size() != chunk.block_pages.size())
            return false;
        hierarchy_pages += chunk.pages;
    }
    return hierarchy_pages == page_pos_.size();
}

} // namespace uvmsim
