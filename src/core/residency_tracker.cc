#include "residency_tracker.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

/** Block index within the owning chunk's fixed array. */
inline std::uint8_t
blockInChunk(PageNum page)
{
    return static_cast<std::uint8_t>(
        (page >> (basicBlockShift - pageShift)) &
        (blocksPerLargePage - 1));
}

/** Page index within its basic block's bitmap. */
inline unsigned
pageInBlock(PageNum page)
{
    return static_cast<unsigned>(page & (pagesPerBasicBlock - 1));
}

} // namespace

std::uint32_t
ResidencyTracker::allocPage()
{
    if (page_free_ != npos) {
        std::uint32_t slot = page_free_;
        page_free_ = page_recs_[slot].next;
        return slot;
    }
    page_recs_.emplace_back();
    return static_cast<std::uint32_t>(page_recs_.size() - 1);
}

void
ResidencyTracker::freePage(std::uint32_t slot)
{
    page_recs_[slot].next = page_free_;
    page_free_ = slot;
}

std::uint32_t
ResidencyTracker::allocChunk()
{
    if (chunk_free_ != npos) {
        std::uint32_t slot = chunk_free_;
        chunk_free_ = chunk_recs_[slot].next;
        chunk_recs_[slot] = ChunkRec{};
        return slot;
    }
    chunk_recs_.emplace_back();
    return static_cast<std::uint32_t>(chunk_recs_.size() - 1);
}

void
ResidencyTracker::freeChunk(std::uint32_t slot)
{
    chunk_recs_[slot].next = chunk_free_;
    chunk_free_ = slot;
}

void
ResidencyTracker::unlinkPage(std::uint32_t slot)
{
    PageRec &rec = page_recs_[slot];
    if (rec.prev != npos)
        page_recs_[rec.prev].next = rec.next;
    else
        page_head_ = rec.next;
    if (rec.next != npos)
        page_recs_[rec.next].prev = rec.prev;
    else
        page_tail_ = rec.prev;
}

void
ResidencyTracker::linkPageFront(std::uint32_t slot)
{
    PageRec &rec = page_recs_[slot];
    rec.prev = npos;
    rec.next = page_head_;
    if (page_head_ != npos)
        page_recs_[page_head_].prev = slot;
    else
        page_tail_ = slot;
    page_head_ = slot;
}

void
ResidencyTracker::unlinkChunk(std::uint32_t slot)
{
    ChunkRec &rec = chunk_recs_[slot];
    if (rec.prev != npos)
        chunk_recs_[rec.prev].next = rec.next;
    else
        chunk_head_ = rec.next;
    if (rec.next != npos)
        chunk_recs_[rec.next].prev = rec.prev;
    else
        chunk_tail_ = rec.prev;
}

void
ResidencyTracker::linkChunkFront(std::uint32_t slot)
{
    ChunkRec &rec = chunk_recs_[slot];
    rec.prev = npos;
    rec.next = chunk_head_;
    if (chunk_head_ != npos)
        chunk_recs_[chunk_head_].prev = slot;
    else
        chunk_tail_ = slot;
    chunk_head_ = slot;
}

void
ResidencyTracker::unlinkBlock(ChunkRec &chunk, std::uint8_t b)
{
    BlockRec &rec = chunk.blocks[b];
    if (rec.prev != bnil)
        chunk.blocks[rec.prev].next = rec.next;
    else
        chunk.block_head = rec.next;
    if (rec.next != bnil)
        chunk.blocks[rec.next].prev = rec.prev;
    else
        chunk.block_tail = rec.prev;
}

void
ResidencyTracker::linkBlockFront(ChunkRec &chunk, std::uint8_t b)
{
    BlockRec &rec = chunk.blocks[b];
    rec.prev = bnil;
    rec.next = chunk.block_head;
    if (chunk.block_head != bnil)
        chunk.blocks[chunk.block_head].prev = b;
    else
        chunk.block_tail = b;
    chunk.block_head = b;
}

void
ResidencyTracker::touchHierarchy(const PageRec &rec, std::uint8_t b)
{
    std::uint32_t cslot = rec.chunk;
    if (cslot != chunk_head_) {
        unlinkChunk(cslot);
        linkChunkFront(cslot);
    }
    ChunkRec &chunk = chunk_recs_[cslot];
    if (chunk.block_head != b) {
        unlinkBlock(chunk, b);
        linkBlockFront(chunk, b);
    }
}

void
ResidencyTracker::onResident(PageNum page)
{
    auto [it, inserted] = slot_of_.try_emplace(page, 0);
    if (!inserted)
        panic("page %llu already tracked as resident",
              static_cast<unsigned long long>(page));

    std::uint32_t slot = allocPage();
    it->second = slot;

    std::uint64_t lp = largePageOf(pageBase(page));
    auto [cit, chunk_new] = chunk_of_.try_emplace(lp, 0);
    std::uint32_t cslot;
    if (chunk_new) {
        cslot = allocChunk();
        cit->second = cslot;
        chunk_recs_[cslot].slot_id = lp;
        linkChunkFront(cslot);
    } else {
        cslot = cit->second;
        if (cslot != chunk_head_) {
            unlinkChunk(cslot);
            linkChunkFront(cslot);
        }
    }

    ChunkRec &chunk = chunk_recs_[cslot];
    std::uint8_t b = blockInChunk(page);
    BlockRec &block = chunk.blocks[b];
    if (block.pages == 0)
        linkBlockFront(chunk, b);
    else if (chunk.block_head != b) {
        unlinkBlock(chunk, b);
        linkBlockFront(chunk, b);
    }
    ++block.pages;
    block.page_bits |= static_cast<std::uint16_t>(1u << pageInBlock(page));
    ++chunk.pages;

    PageRec &rec = page_recs_[slot];
    rec.page = page;
    rec.chunk = cslot;
    rec.rand_idx = static_cast<std::uint32_t>(random_pool_.size());
    random_pool_.push_back(slot);
    linkPageFront(slot);
}

void
ResidencyTracker::onAccess(PageNum page)
{
    auto it = slot_of_.find(page);
    if (it == slot_of_.end())
        return; // access raced with an eviction decision; harmless
    std::uint32_t slot = it->second;
    if (slot != page_head_) {
        unlinkPage(slot);
        linkPageFront(slot);
    }
    touchHierarchy(page_recs_[slot], blockInChunk(page));
}

void
ResidencyTracker::onEvicted(PageNum page)
{
    auto it = slot_of_.find(page);
    if (it == slot_of_.end())
        panic("evicting untracked page %llu",
              static_cast<unsigned long long>(page));
    std::uint32_t slot = it->second;
    PageRec &rec = page_recs_[slot];

    unlinkPage(slot);

    std::uint32_t cslot = rec.chunk;
    if (cslot == npos)
        panic("hierarchy missing chunk for page %llu",
              static_cast<unsigned long long>(page));
    ChunkRec &chunk = chunk_recs_[cslot];
    std::uint8_t b = blockInChunk(page);
    BlockRec &block = chunk.blocks[b];
    if (block.pages == 0)
        panic("hierarchy missing block for page %llu",
              static_cast<unsigned long long>(page));
    --block.pages;
    block.page_bits &=
        static_cast<std::uint16_t>(~(1u << pageInBlock(page)));
    --chunk.pages;
    if (block.pages == 0)
        unlinkBlock(chunk, b);
    if (chunk.pages == 0) {
        unlinkChunk(cslot);
        chunk_of_.erase(chunk.slot_id);
        freeChunk(cslot);
    }

    // Swap-with-back removal keeps the sampler pool dense; the random
    // victim stream is a function of pool order, which this preserves
    // exactly (same swap the std::vector+map sampler performed).
    std::uint32_t idx = rec.rand_idx;
    std::uint32_t last = random_pool_.back();
    random_pool_[idx] = last;
    page_recs_[last].rand_idx = idx;
    random_pool_.pop_back();

    slot_of_.erase(it);
    freePage(slot);
}

bool
ResidencyTracker::isTracked(PageNum page) const
{
    return slot_of_.count(page) > 0;
}

std::optional<PageNum>
ResidencyTracker::lruPageVictim(std::uint64_t skip_pages) const
{
    if (skip_pages >= slot_of_.size())
        return std::nullopt;
    std::uint32_t slot = page_tail_;
    for (std::uint64_t i = 0; i < skip_pages; ++i)
        slot = page_recs_[slot].prev;
    return page_recs_[slot].page;
}

std::optional<PageNum>
ResidencyTracker::randomPageVictim(Rng &rng) const
{
    if (random_pool_.empty())
        return std::nullopt;
    return page_recs_[random_pool_[rng.below(random_pool_.size())]].page;
}

std::optional<PageNum>
ResidencyTracker::mruPageVictim() const
{
    if (page_head_ == npos)
        return std::nullopt;
    return page_recs_[page_head_].page;
}

std::optional<std::uint64_t>
ResidencyTracker::lruBlockVictim(std::uint64_t skip_pages) const
{
    std::uint64_t to_skip = skip_pages;
    // Chunks cold-to-hot, blocks cold-to-hot within each chunk.
    for (std::uint32_t c = chunk_tail_; c != npos;
         c = chunk_recs_[c].prev) {
        const ChunkRec &chunk = chunk_recs_[c];
        for (std::uint8_t b = chunk.block_tail; b != bnil;
             b = chunk.blocks[b].prev) {
            std::uint64_t pages = chunk.blocks[b].pages;
            if (to_skip >= pages) {
                to_skip -= pages;
                continue;
            }
            return chunk.slot_id * blocksPerLargePage + b;
        }
    }
    return std::nullopt;
}

std::optional<std::uint64_t>
ResidencyTracker::lruLargePageVictim(std::uint64_t skip_pages) const
{
    std::uint64_t to_skip = skip_pages;
    for (std::uint32_t c = chunk_tail_; c != npos;
         c = chunk_recs_[c].prev) {
        const ChunkRec &chunk = chunk_recs_[c];
        if (to_skip >= chunk.pages) {
            to_skip -= chunk.pages;
            continue;
        }
        return chunk.slot_id;
    }
    return std::nullopt;
}

std::vector<PageNum>
ResidencyTracker::pagesInBlock(std::uint64_t block) const
{
    std::vector<PageNum> out;
    auto cit = chunk_of_.find(block / blocksPerLargePage);
    if (cit == chunk_of_.end())
        return out;
    const BlockRec &rec =
        chunk_recs_[cit->second]
            .blocks[block & (blocksPerLargePage - 1)];
    PageNum first = pageOf(basicBlockBase(block));
    for (unsigned p = 0; p < pagesPerBasicBlock; ++p) {
        if (rec.page_bits & (1u << p))
            out.push_back(first + p);
    }
    return out;
}

std::vector<PageNum>
ResidencyTracker::pagesInLargePage(std::uint64_t slot) const
{
    std::vector<PageNum> out;
    auto cit = chunk_of_.find(slot);
    if (cit == chunk_of_.end())
        return out;
    const ChunkRec &chunk = chunk_recs_[cit->second];
    PageNum first = pageOf(slot << largePageShift);
    for (unsigned b = 0; b < blocksPerLargePage; ++b) {
        std::uint16_t bits = chunk.blocks[b].page_bits;
        if (bits == 0)
            continue;
        PageNum base = first + b * pagesPerBasicBlock;
        for (unsigned p = 0; p < pagesPerBasicBlock; ++p) {
            if (bits & (1u << p))
                out.push_back(base + p);
        }
    }
    return out;
}

std::uint64_t
ResidencyTracker::blockResidentPages(std::uint64_t block) const
{
    auto cit = chunk_of_.find(block / blocksPerLargePage);
    if (cit == chunk_of_.end())
        return 0;
    return chunk_recs_[cit->second]
        .blocks[block & (blocksPerLargePage - 1)]
        .pages;
}

std::vector<PageNum>
ResidencyTracker::coldPages(std::uint64_t n) const
{
    std::vector<PageNum> out;
    out.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n, slot_of_.size())));
    for (std::uint32_t slot = page_tail_;
         slot != npos && out.size() < n; slot = page_recs_[slot].prev)
        out.push_back(page_recs_[slot].page);
    return out;
}

bool
ResidencyTracker::checkConsistent() const
{
    if (random_pool_.size() != slot_of_.size())
        return false;

    // Flat LRU: every tracked page linked exactly once, links sane,
    // the random pool the exact inverse of each record's rand_idx.
    std::uint64_t walked = 0;
    std::uint32_t prev = npos;
    for (std::uint32_t slot = page_head_; slot != npos;
         slot = page_recs_[slot].next) {
        const PageRec &rec = page_recs_[slot];
        if (rec.prev != prev)
            return false;
        auto it = slot_of_.find(rec.page);
        if (it == slot_of_.end() || it->second != slot)
            return false;
        if (rec.rand_idx >= random_pool_.size() ||
            random_pool_[rec.rand_idx] != slot)
            return false;
        if (rec.chunk >= chunk_recs_.size() ||
            chunk_recs_[rec.chunk].slot_id !=
                largePageOf(pageBase(rec.page)))
            return false;
        prev = slot;
        if (++walked > slot_of_.size())
            return false;
    }
    if (walked != slot_of_.size() || page_tail_ != prev)
        return false;

    // Hierarchy: per-block counts sum to chunk counts, bitmaps match
    // counts, block LRU membership iff the block holds pages, and
    // every chunk in the map is on the chunk LRU list exactly once.
    std::uint64_t hierarchy_pages = 0;
    std::uint64_t chunks_walked = 0;
    std::uint32_t cprev = npos;
    for (std::uint32_t c = chunk_head_; c != npos;
         c = chunk_recs_[c].next) {
        const ChunkRec &chunk = chunk_recs_[c];
        if (chunk.prev != cprev)
            return false;
        auto cit = chunk_of_.find(chunk.slot_id);
        if (cit == chunk_of_.end() || cit->second != c)
            return false;

        std::uint64_t chunk_pages = 0;
        std::uint64_t linked_blocks = 0;
        for (unsigned b = 0; b < blocksPerLargePage; ++b) {
            const BlockRec &block = chunk.blocks[b];
            if (static_cast<unsigned>(
                    std::popcount(block.page_bits)) != block.pages)
                return false;
            chunk_pages += block.pages;
        }
        if (chunk_pages != chunk.pages || chunk.pages == 0)
            return false;
        std::uint8_t bprev = bnil;
        for (std::uint8_t b = chunk.block_head; b != bnil;
             b = chunk.blocks[b].next) {
            if (chunk.blocks[b].prev != bprev ||
                chunk.blocks[b].pages == 0)
                return false;
            bprev = b;
            if (++linked_blocks > blocksPerLargePage)
                return false;
        }
        if (chunk.block_tail != bprev)
            return false;
        std::uint64_t nonempty = 0;
        for (unsigned b = 0; b < blocksPerLargePage; ++b)
            nonempty += chunk.blocks[b].pages > 0;
        if (linked_blocks != nonempty)
            return false;

        hierarchy_pages += chunk.pages;
        cprev = c;
        if (++chunks_walked > chunk_of_.size())
            return false;
    }
    if (chunks_walked != chunk_of_.size() || chunk_tail_ != cprev)
        return false;
    return hierarchy_pages == slot_of_.size();
}

} // namespace uvmsim
