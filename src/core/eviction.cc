#include "eviction.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace uvmsim
{

std::vector<PageNum>
Lru4kEviction::selectVictims(EvictionContext &ctx)
{
    auto victim = ctx.residency.lruPageVictim(ctx.reserve_pages);
    if (!victim)
        return {};
    return {*victim};
}

std::vector<PageNum>
Random4kEviction::selectVictims(EvictionContext &ctx)
{
    auto victim = ctx.residency.randomPageVictim(ctx.rng);
    if (!victim)
        return {};
    return {*victim};
}

std::vector<PageNum>
SequentialLocalEviction::selectVictims(EvictionContext &ctx)
{
    auto block = ctx.residency.lruBlockVictim(ctx.reserve_pages);
    if (!block)
        return {};
    // The whole basic block goes, accessed or not (this is how SLe
    // reclaims the unused pages its companion prefetcher migrated).
    return ctx.residency.pagesInBlock(*block);
}

std::vector<PageNum>
TreeBasedEviction::selectVictims(EvictionContext &ctx)
{
    auto block = ctx.residency.lruBlockVictim(ctx.reserve_pages);
    if (!block)
        return {};

    PageNum first_page = pageOf(basicBlockBase(*block));
    LargePageTree *tree = ctx.space.treeFor(first_page);
    if (!tree) {
        panic("TBNe victim block %llu has no tree",
              static_cast<unsigned long long>(*block));
    }

    // The drain unmarks the victim leaf and rebalances the tree; it
    // may include pages that are marked to-be-valid but still in
    // flight -- the GMMU filters those and restores their marks.
    std::vector<PageNum> drained =
        tree->evictDrain(tree->leafOf(first_page));
    return drained;
}

std::vector<PageNum>
Lru2mbEviction::selectVictims(EvictionContext &ctx)
{
    auto slot = ctx.residency.lruLargePageVictim(ctx.reserve_pages);
    if (!slot)
        return {};
    return ctx.residency.pagesInLargePage(*slot);
}

std::vector<PageNum>
Mru4kEviction::selectVictims(EvictionContext &ctx)
{
    auto victim = ctx.residency.mruPageVictim();
    if (!victim)
        return {};
    return {*victim};
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionKind kind)
{
    switch (kind) {
      case EvictionKind::lru4k:
        return std::make_unique<Lru4kEviction>();
      case EvictionKind::random4k:
        return std::make_unique<Random4kEviction>();
      case EvictionKind::sequentialLocal:
        return std::make_unique<SequentialLocalEviction>();
      case EvictionKind::treeBasedNeighborhood:
        return std::make_unique<TreeBasedEviction>();
      case EvictionKind::lru2mb:
        return std::make_unique<Lru2mbEviction>();
      case EvictionKind::mru4k:
        return std::make_unique<Mru4kEviction>();
    }
    panic("unknown EvictionKind");
}

} // namespace uvmsim
