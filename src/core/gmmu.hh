/**
 * @file
 * The GPU Memory Management Unit.
 *
 * Implements the paper's Figure 1 control flow: SM load/store units
 * relay TLB misses here; the GMMU walks the page table (100 core
 * cycles), registers far-faults in the MSHRs, and resolves them via a
 * serial fault-handling engine that charges the measured 45us driver
 * latency per fault service, asks the active hardware prefetcher for
 * the migration set, reserves device frames (evicting under
 * over-subscription), and schedules grouped PCI-e transfers.  When a
 * transfer lands, PTEs are validated and the waiting warps replay.
 *
 * Over-subscription control (paper Secs. 4.2, 7.2): the GMMU latches
 * an "oversubscribed" state the first time device occupancy reaches
 * capacity minus the configured free-page buffer; from then on the
 * configured after-capacity prefetcher (usually "none" or the
 * eviction-compatible one) takes over, and the free-page buffer is
 * maintained by threshold pre-eviction.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/auditor.hh"
#include "core/eviction.hh"
#include "core/managed_space.hh"
#include "core/tenant.hh"
#include "core/policies.hh"
#include "core/prefetcher.hh"
#include "core/residency_tracker.hh"
#include "interconnect/pcie_link.hh"
#include "mem/frame_allocator.hh"
#include "mem/mshr.hh"
#include "mem/page_table.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace uvmsim
{

/** Tunables for the GMMU (paper Table 2 defaults). */
struct GmmuConfig
{
    /** Driver latency to service one far-fault batch (45us measured). */
    Tick fault_handling_latency = microseconds(45);

    /**
     * Distinct faulting pages serviced per 45us window.  1 is the
     * strict serial model; larger values model a driver that drains
     * several fault-buffer entries per pass (ablation A6).
     */
    std::uint32_t fault_batch_size = 1;

    /**
     * Relative jitter on the fault handling latency: each service
     * costs latency * (1 +/- jitter * U[-1,1]).  The paper reports
     * 45us as an *average*; 0 keeps the deterministic fixed cost.
     */
    double fault_latency_jitter = 0.0;
    /** Page table walk latency (100 cycles at 1481 MHz). */
    Tick page_walk_latency = 100 * periodFromMHz(1481.0);

    /**
     * Concurrent page-table walkers (the multi-threaded walk model of
     * Ausavarungnirun et al. the paper adopts, Sec. 6.1).  Walks
     * beyond this queue on the earliest-free walker.  0 = unlimited.
     */
    std::uint32_t page_walkers = 8;

    /**
     * Far-fault MSHR capacity in distinct pages (Figure 1's "Far-fault
     * MSHRs" are a finite structure).  Faults arriving with the MSHRs
     * full retry after mshr_retry_latency.  0 = unlimited.
     */
    std::uint32_t mshr_entries = 0;

    /** Retry delay when the MSHRs are full. */
    Tick mshr_retry_latency = microseconds(1);
    /** Prefetcher used while the working set still fits. */
    PrefetcherKind prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
    /** Prefetcher used once over-subscribed. */
    PrefetcherKind prefetcher_after = PrefetcherKind::none;
    /** Eviction policy under over-subscription. */
    EvictionKind eviction = EvictionKind::lru4k;
    /** Free-page buffer maintained by threshold pre-eviction (pages). */
    std::uint64_t free_buffer_pages = 0;
    /** Fraction of the LRU list (cold end) reserved from eviction. */
    double lru_reserve_fraction = 0.0;

    /**
     * Honor the block policies' whole-unit write-back (paper Sec. 5.1
     * design choice).  Setting this false forces dirty-page-only
     * write-back for every policy -- the ablation of that choice.
     */
    bool whole_unit_writeback = true;
    /** Seed for the policy RNG (Rp / Re). */
    std::uint64_t seed = 1;

    /**
     * Cross-tenant eviction arbitration (multi-tenant runs only).
     * globalLru keeps the single shared recency order; staticQuota and
     * proportionalShare track residency per tenant and reclaim from
     * the most over-entitled tenant under pressure (core/tenant.hh).
     */
    TenantEvictionKind tenant_eviction = TenantEvictionKind::globalLru;

    /**
     * Run the SimAuditor's cross-subsystem sweep after every fault
     * service, migration arrival and eviction drain (see
     * core/auditor.hh).  O(resident pages) per check -- keep off for
     * performance runs.  The UVMSIM_AUDIT build option forces this on
     * for every run regardless of the flag.
     */
    bool audit = false;
};

/** The GPU memory management unit with UVM support. */
class Gmmu
{
  public:
    /** Invoked when a translated access may proceed to the caches. */
    using AccessDone = std::function<void()>;
    /** Invoked for every page invalidation so SM TLBs can shoot down. */
    using TlbShootdownFn = std::function<void(PageNum)>;
    /** Observer of completed page accesses (used for Fig. 12 traces). */
    using AccessObserver = std::function<void(Tick, PageNum, bool)>;

    /**
     * Multi-tenant constructor: the GMMU serves every space in the
     * set, keeping per-tenant fault queues, MSHR accounting and
     * over-subscription latches keyed by the tenant bits of each
     * address.
     */
    Gmmu(EventQueue &eq, PcieLink &pcie, FrameAllocator &frames,
         PageTable &page_table, TenantSet &tenants, GmmuConfig config);

    /** Single-space convenience constructor (wraps a TenantSet). */
    Gmmu(EventQueue &eq, PcieLink &pcie, FrameAllocator &frames,
         PageTable &page_table, ManagedSpace &space, GmmuConfig config);

    Gmmu(const Gmmu &) = delete;
    Gmmu &operator=(const Gmmu &) = delete;

    /** Register the SM TLB shootdown hook. */
    void setTlbShootdown(TlbShootdownFn fn) { tlb_shootdown_ = std::move(fn); }

    /** Register an access observer (pass nullptr to clear). */
    void setAccessObserver(AccessObserver fn) { observer_ = std::move(fn); }

    /**
     * Resolve a TLB-missing access: page walk, then either complete or
     * take the far-fault path.  `done` fires when the page is valid
     * and the access has been accounted (recency/dirty bits).
     */
    void translate(const MemAccess &access, AccessDone done);

    /**
     * Account a TLB-hitting access (no walk, no fault possible):
     * updates recency and dirty/accessed flags.
     */
    void recordAccess(const MemAccess &access);

    /**
     * User-directed prefetch (the cudaMemPrefetchAsync path of paper
     * Sec. 3): asynchronously migrate every non-resident page of the
     * range, grouped into large-page-sized transfers.  Runs
     * concurrently with kernel execution; faults on in-flight pages
     * merge as usual.
     */
    void prefetchRange(Addr base, std::uint64_t bytes);

    /** Whether any tenant's over-subscription latch has tripped. */
    bool oversubscribed() const { return oversubscribed_; }

    /**
     * Whether one tenant's latch has tripped.  The before/after
     * prefetcher switch is evaluated per tenant: a tenant arriving
     * after another filled the device still runs its aggressive
     * prefetcher until its own first fault observes the pressure.
     */
    bool
    oversubscribedTenant(TenantId t) const
    {
        return tenant_oversub_[t] != 0;
    }

    /** The recency tracker (exposed for tests and policies). */
    ResidencyTracker &residency() { return residency_.front(); }

    /** Recency trackers in use: 1, or one per tenant under quotas. */
    std::uint32_t
    numTrackers() const
    {
        return static_cast<std::uint32_t>(residency_.size());
    }

    /** One recency tracker (per-tenant under quota policies). */
    ResidencyTracker &tracker(std::uint32_t i) { return residency_[i]; }

    /** The tenant set this GMMU serves. */
    TenantSet &tenants() { return tenants_; }

    /**
     * Every resident page, coldest first; per-tenant trackers
     * concatenate in tenant order.  Snapshot/observability helper.
     */
    std::vector<PageNum> residentColdToHot() const;

    /** The MSHRs (exposed for tests). */
    FarFaultMshr &mshr() { return mshr_; }

    /** Whether the state auditor is active for this GMMU. */
    bool auditEnabled() const { return auditor_ != nullptr; }

    /** The auditor, or nullptr when auditing is off (for tests). */
    SimAuditor *auditor() { return auditor_.get(); }

    /** Number of fault services performed. */
    std::uint64_t faultServices() const { return fault_services_.count(); }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

    /** Attach an event tracer (nullptr = tracing off, the default). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

  private:
    /** Emit one trace event when tracing is on (branch-on-null). */
    void
    emit(const trace::Event &event)
    {
        if (tracer_)
            tracer_->record(event);
    }

    /** Emit with the event attributed to `owner`'s tenant. */
    void
    emit(trace::Event event, PageNum owner)
    {
        if (tracer_) {
            event.tenant = tenants_.tenantOf(owner);
            tracer_->record(event);
        }
    }

    /** One queued request for device frames. */
    struct FrameRequest
    {
        std::uint64_t pages;
        TenantId tenant;
        std::function<void(std::vector<FrameNum>)> grant;
    };

    /** After the page walk: complete or fault. */
    void walkDone(const MemAccess &access, AccessDone done);

    /**
     * One in-flight page-table walk (or MSHR-full retry), pooled so
     * the walk-completion event is a POD (fn, this, slot) record --
     * the access + done closure would otherwise overflow any inline
     * callback storage and heap-allocate on every TLB miss.
     */
    struct WalkRequest
    {
        MemAccess access;
        AccessDone done;
        std::uint32_t next = 0; //!< Free-list link.
    };

    std::uint32_t allocWalk(const MemAccess &access, AccessDone done);

    /** POD event thunk: pops the slot and runs walkDone. */
    static void walkDoneThunk(void *gmmu, std::uint64_t slot);

    /** Register a far-fault and wake the fault engine. */
    void raiseFault(const MemAccess &access, AccessDone done);

    /** Start servicing the next queued fault batch if the engine is
     *  idle. */
    void kickFaultEngine();

    /** Runs fault_handling_latency after a batch service began. */
    void serviceBatch(const std::vector<PageNum> &batch);

    /** Handle one faulting page of a batch. */
    void serviceFault(PageNum page);

    /**
     * Schedule PCI-e migration of `pages` (ascending, tree-marked).
     * When `faulty` is set, that page is transferred in its own
     * leading 4KB group so its warps wake first.
     */
    void scheduleMigration(std::vector<PageNum> pages,
                           std::optional<PageNum> faulty);

    /** A migration transfer landed: validate PTEs and replay. */
    void migrationArrived(const std::vector<PageNum> &pages);

    /** Queue a frame reservation for one tenant and pump the queue. */
    void ensureFrames(std::uint64_t pages, TenantId tenant,
                      std::function<void(std::vector<FrameNum>)> grant);

    /** Satisfy queued frame requests; evict when short. */
    void pumpFrameQueue();

    /**
     * Run eviction selections until free + in-flight frees reach
     * `target_frames`, charging `requester` as the tenant whose demand
     * forces the reclaim.  @return false when nothing more is
     * evictable.
     */
    bool evictUntil(std::uint64_t target_frames, TenantId requester);

    /** Apply one selected victim set; schedules write-backs. */
    std::uint64_t applyEviction(const std::vector<PageNum> &victims,
                                TenantId requester);

    /**
     * The tenant that pays for the next reclaim under per-tenant
     * tracking: the one furthest above its frame entitlement (static
     * quota or footprint-proportional share), falling back to the
     * requester itself, then to the largest resident set.
     */
    TenantId pickVictimTenant(TenantId requester) const;

    /** Latch one tenant's over-subscription and switch its prefetcher. */
    void enterOversubscription(TenantId tenant);

    /** Threshold pre-eviction to keep the free-page buffer full. */
    void maintainFreeBuffer();

    /** The prefetcher active right now for one tenant's faults. */
    Prefetcher &activePrefetcher(TenantId tenant);

    /** Run the auditor's full sweep, when enabled. */
    void audit(const char *context);

    /** Common post-translation accounting. */
    void accountAccess(const MemAccess &access);

    /** Whether residency is tracked per tenant (quota policies). */
    bool perTenantTracking() const { return residency_.size() > 1; }

    /** The tracker holding one page's recency state. */
    ResidencyTracker &
    trackerFor(PageNum page)
    {
        return perTenantTracking() ? residency_[tenants_.tenantOf(page)]
                                   : residency_.front();
    }

    /** Per-tenant MSHR occupancy bookkeeping. */
    void mshrEnter(PageNum page);
    void mshrExit(PageNum page);

    EventQueue &eq_;
    PcieLink &pcie_;
    FrameAllocator &frames_;
    PageTable &page_table_;
    TenantSet &tenants_;
    /** Backing store for the single-space convenience constructor. */
    std::unique_ptr<TenantSet> owned_view_;
    GmmuConfig config_;

    FarFaultMshr mshr_;
    /** One tracker, or one per tenant under quota policies. */
    std::vector<ResidencyTracker> residency_;
    Rng rng_;
    std::unique_ptr<SimAuditor> auditor_;

    std::unique_ptr<Prefetcher> prefetcher_before_;
    std::unique_ptr<Prefetcher> prefetcher_after_;
    std::unique_ptr<EvictionPolicy> eviction_;

    TlbShootdownFn tlb_shootdown_;
    AccessObserver observer_;
    trace::Tracer *tracer_ = nullptr;

    /**
     * Per-tenant fault queues: one tenant's fault burst cannot starve
     * another's, and a service batch never mixes tenants (the driver
     * handles each context's fault buffer separately).  Round-robin
     * across non-empty queues.
     */
    std::vector<std::deque<PageNum>> fault_queues_;
    TenantId fault_rr_ = 0;
    bool engine_busy_ = false;

    std::vector<WalkRequest> walks_;
    std::uint32_t walk_free_ = ~std::uint32_t{0};

    /** Earliest-free tick of each page-table walker thread. */
    std::vector<Tick> walker_free_;

    std::deque<FrameRequest> frame_requests_;
    std::uint64_t pending_free_frames_ = 0;
    /** Frames granted to migrations whose transfer has not landed
     *  yet; these become evictable once mapped, so a frame shortage
     *  with transit outstanding waits instead of failing. */
    std::uint64_t frames_in_transit_ = 0;
    /** Any-tenant latch (drives the snapshot/global stat). */
    bool oversubscribed_ = false;
    /** Per-tenant over-subscription latches. */
    std::vector<char> tenant_oversub_;
    /** Tenant whose activity the frame pump is currently serving. */
    TenantId last_tenant_ = 0;
    /** Per-tenant count of MSHR-pending pages. */
    std::vector<std::uint64_t> tenant_mshr_pending_;

    stats::Counter far_faults_;
    stats::Counter fault_services_;
    stats::Counter skipped_services_;
    stats::Counter prefetches_trimmed_;
    stats::Counter pages_migrated_;
    stats::Counter pages_prefetched_;
    stats::Counter pages_evicted_;
    stats::Counter pages_written_back_;
    stats::Counter pages_thrashed_;
    stats::Counter walk_count_;
    stats::Average walk_queue_delay_ns_;
    stats::Counter mshr_stalls_;
    stats::Counter user_prefetched_pages_;
    stats::Scalar oversubscribed_at_us_;
    stats::Counter audit_checks_;

    /** Per-tenant counters, created only for multi-tenant runs. */
    struct TenantStats
    {
        TenantStats(TenantId t);
        stats::Counter far_faults;
        stats::Counter pages_migrated;
        stats::Counter pages_evicted;
        stats::Counter pages_evicted_cross;
        stats::Maximum mshr_pending_peak;
        stats::Scalar oversubscribed_at_us;
    };
    std::vector<std::unique_ptr<TenantStats>> tenant_stats_;
};

} // namespace uvmsim
