/**
 * @file
 * Tenants -- multiple managed address spaces sharing one GPU.
 *
 * The paper models a single kernel stream owning the whole device, but
 * the deployments the ROADMAP targets (inference servers, MPS/MIG,
 * cloud GPUs) run many concurrent contexts whose working sets compete
 * for device memory.  A TenantSet holds one ManagedSpace per tenant,
 * placed at a fixed 32GB virtual-address stride so a PageNum remains
 * globally unique and its owning tenant is recoverable from the high
 * address bits -- the (tenant, va) key is the address itself.
 *
 * Cross-tenant eviction is arbitrated by TenantEvictionKind:
 *  - globalLru:          one shared recency order; the victim is the
 *                        globally coldest unit regardless of owner
 *                        (exactly the single-tenant behavior).
 *  - staticQuota:        device frames split evenly; under pressure the
 *                        tenant furthest above its quota pays.
 *  - proportionalShare:  entitlements proportional to each tenant's
 *                        padded footprint; the most over-entitled
 *                        tenant pays.
 * Quota enforcement is work-conserving: a tenant may exceed its
 * entitlement while memory is plentiful and is only reclaimed from
 * when the device is actually short of frames.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/managed_space.hh"
#include "mem/types.hh"

namespace uvmsim
{

/** Dense tenant identifier (index into the TenantSet). */
using TenantId = std::uint32_t;

/**
 * Virtual-address stride between tenant spaces (32GB).  Tenant t's
 * ManagedSpace bumps from defaultVaBase + t * tenantVaStride, so the
 * stride dwarfs any modeled footprint yet keeps every address inside
 * the GPU cache models' packed 32-bit line tags (addr < 2^39), and the
 * owning tenant of any managed address is its high bits.
 */
constexpr Addr tenantVaStride = 1ull << 35;

/** The tenant owning a managed virtual address. */
inline TenantId
tenantOfAddr(Addr a)
{
    return static_cast<TenantId>(a / tenantVaStride);
}

/** The tenant owning a managed page. */
inline TenantId
tenantOfPage(PageNum page)
{
    return tenantOfAddr(pageBase(page));
}

/** Cross-tenant eviction arbitration policy. */
enum class TenantEvictionKind
{
    globalLru,
    staticQuota,
    proportionalShare,
};

/** Display/CLI name ("globalLru", "staticQuota", "proportionalShare"). */
std::string toString(TenantEvictionKind kind);

/** Parse a TenantEvictionKind name; fatal() on unknown names. */
TenantEvictionKind tenantEvictionFromString(const std::string &name);

/** All parseable TenantEvictionKind values, in declaration order. */
std::vector<TenantEvictionKind> allTenantEvictionKinds();

/**
 * The set of managed address spaces sharing one simulated GPU.
 *
 * Owns one ManagedSpace per tenant (multi-tenant constructor) or wraps
 * an externally owned single space (the single-tenant compatibility
 * view used by components that predate tenancy).  Page-keyed lookups
 * route by the tenant bits of the address, so they stay one bounds
 * check away from the single-space fast path.
 */
class TenantSet
{
  public:
    /** Create `num_tenants` spaces at tenantVaStride-strided bases. */
    explicit TenantSet(std::uint32_t num_tenants);

    /** Wrap one externally owned space as a single-tenant set. */
    explicit TenantSet(ManagedSpace &space);

    TenantSet(const TenantSet &) = delete;
    TenantSet &operator=(const TenantSet &) = delete;

    /** Number of tenants (>= 1). */
    std::uint32_t
    numTenants() const
    {
        return static_cast<std::uint32_t>(spaces_.size());
    }

    /** A tenant's address space. */
    ManagedSpace &space(TenantId t);
    const ManagedSpace &space(TenantId t) const;

    /** The tenant owning a page (always 0 for a single-tenant set). */
    TenantId
    tenantOf(PageNum page) const
    {
        if (spaces_.size() == 1)
            return 0;
        TenantId t = tenantOfPage(page);
        return t < spaces_.size() ? t : 0;
    }

    /** The tree containing a page; nullptr when unmanaged. */
    LargePageTree *
    treeFor(PageNum page) const
    {
        return space(tenantOf(page)).treeFor(page);
    }

    /** The allocation containing a page; nullptr when unmanaged. */
    ManagedAllocation *
    allocationFor(PageNum page) const
    {
        return space(tenantOf(page)).allocationFor(page);
    }

    /** Every tree's identity and marked bytes, in tenant order. */
    std::vector<TreeValidSize> treeValidSizes() const;

    /** Sum of padded footprints across all tenants. */
    std::uint64_t totalPaddedBytes() const;

  private:
    std::vector<std::unique_ptr<ManagedSpace>> owned_;
    std::vector<ManagedSpace *> spaces_;
};

} // namespace uvmsim
