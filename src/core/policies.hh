/**
 * @file
 * Enumerations naming the prefetch and eviction policies the paper
 * studies, plus string conversions used by harness command lines.
 */

#pragma once

#include <string>

namespace uvmsim
{

/**
 * Hardware prefetcher flavours.  The first four are the paper's
 * Sec. 3 set; the last two are the Zheng et al. [26] baselines the
 * paper discusses when positioning SLp (kept as ablation comparators).
 */
enum class PrefetcherKind
{
    none,                  //!< Pure 4KB on-demand migration.
    random,                //!< Rp: +1 random 4KB page in the 2MB range.
    sequentialLocal,       //!< SLp: fill the faulted 64KB basic block.
    treeBasedNeighborhood, //!< TBNp: tree balancing within 2MB.
    sequentialGlobal,      //!< Zheng's sequential: next pages in VA
                           //!< order regardless of fault position.
    zhengLocality,         //!< Zheng's locality-aware: 128 consecutive
                           //!< 4KB pages from the faulting page.
};

/**
 * Page replacement / pre-eviction flavours (paper Secs. 4.2, 5, 7.5).
 * mru4k is the alternative Sec. 5.3 mentions for repetitive linear
 * patterns, kept as an ablation comparator to LRU reservation.
 */
enum class EvictionKind
{
    lru4k,                 //!< Traditional LRU at 4KB granularity.
    random4k,              //!< Re: uniformly random valid 4KB page.
    sequentialLocal,       //!< SLe: evict the victim's 64KB block.
    treeBasedNeighborhood, //!< TBNe: tree balancing within 2MB.
    lru2mb,                //!< Evict the victim's whole 2MB large page.
    mru4k,                 //!< Most-recently-used 4KB eviction.
};

/** Short display name, e.g. "TBNp". */
std::string toString(PrefetcherKind kind);

/** Short display name, e.g. "TBNe". */
std::string toString(EvictionKind kind);

/** Parse a prefetcher name (accepts "none", "Rp", "SLp", "TBNp"). */
PrefetcherKind prefetcherFromString(const std::string &name);

/** Parse an eviction name ("LRU4K", "Re", "SLe", "TBNe", "LRU2MB"). */
EvictionKind evictionFromString(const std::string &name);

} // namespace uvmsim
