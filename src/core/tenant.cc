#include "tenant.hh"

#include "sim/logging.hh"

namespace uvmsim
{

std::string
toString(TenantEvictionKind kind)
{
    switch (kind) {
      case TenantEvictionKind::globalLru:
        return "globalLru";
      case TenantEvictionKind::staticQuota:
        return "staticQuota";
      case TenantEvictionKind::proportionalShare:
        return "proportionalShare";
    }
    panic("unknown TenantEvictionKind");
}

TenantEvictionKind
tenantEvictionFromString(const std::string &name)
{
    for (TenantEvictionKind kind : allTenantEvictionKinds())
        if (name == toString(kind))
            return kind;
    fatal("unknown tenant eviction policy '%s' "
          "(want globalLru|staticQuota|proportionalShare)",
          name.c_str());
}

std::vector<TenantEvictionKind>
allTenantEvictionKinds()
{
    return {TenantEvictionKind::globalLru, TenantEvictionKind::staticQuota,
            TenantEvictionKind::proportionalShare};
}

TenantSet::TenantSet(std::uint32_t num_tenants)
{
    if (num_tenants == 0)
        fatal("a TenantSet needs at least one tenant");
    owned_.reserve(num_tenants);
    spaces_.reserve(num_tenants);
    for (std::uint32_t t = 0; t < num_tenants; ++t) {
        owned_.push_back(std::make_unique<ManagedSpace>(
            ManagedSpace::defaultVaBase +
            static_cast<Addr>(t) * tenantVaStride));
        spaces_.push_back(owned_.back().get());
    }
}

TenantSet::TenantSet(ManagedSpace &space)
{
    spaces_.push_back(&space);
}

ManagedSpace &
TenantSet::space(TenantId t)
{
    if (t >= spaces_.size())
        panic("tenant %u out of range (%zu tenants)", t, spaces_.size());
    return *spaces_[t];
}

const ManagedSpace &
TenantSet::space(TenantId t) const
{
    if (t >= spaces_.size())
        panic("tenant %u out of range (%zu tenants)", t, spaces_.size());
    return *spaces_[t];
}

std::vector<TreeValidSize>
TenantSet::treeValidSizes() const
{
    std::vector<TreeValidSize> out;
    for (const ManagedSpace *space : spaces_) {
        std::vector<TreeValidSize> one = space->treeValidSizes();
        out.insert(out.end(), one.begin(), one.end());
    }
    return out;
}

std::uint64_t
TenantSet::totalPaddedBytes() const
{
    std::uint64_t total = 0;
    for (const ManagedSpace *space : spaces_)
        total += space->totalPaddedBytes();
    return total;
}

} // namespace uvmsim
