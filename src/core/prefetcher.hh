/**
 * @file
 * Hardware prefetchers (paper Sec. 3).
 *
 * A prefetcher answers one question for the GMMU: given a far-fault on
 * a page, which set of pages should migrate together?  The returned
 * set always includes the faulting page.  Every selected page is
 * marked to-be-valid in the allocation's tree as part of selection, so
 * concurrent fault decisions see each other.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/large_page_tree.hh"
#include "core/policies.hh"
#include "mem/types.hh"
#include "sim/rng.hh"

namespace uvmsim
{

/** Strategy interface for the migration-set decision. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Display name ("none", "Rp", "SLp", "TBNp"). */
    virtual std::string name() const = 0;

    /** The kind this instance implements. */
    virtual PrefetcherKind kind() const = 0;

    /**
     * Choose the pages to migrate for a far-fault.
     *
     * @param faulty_page The faulting page; must be unmarked in tree.
     * @param tree        The large-page tree covering faulty_page.
     * @param rng         Randomness source (used by Rp only).
     * @return Newly marked pages in ascending order, always including
     *         faulty_page.
     */
    virtual std::vector<PageNum> selectPages(PageNum faulty_page,
                                             LargePageTree &tree,
                                             Rng &rng) = 0;
};

/** 4KB on-demand: migrate exactly the faulting page. */
class NonePrefetcher : public Prefetcher
{
  public:
    std::string name() const override { return "none"; }
    PrefetcherKind kind() const override { return PrefetcherKind::none; }
    std::vector<PageNum> selectPages(PageNum faulty_page,
                                     LargePageTree &tree,
                                     Rng &rng) override;
};

/**
 * Rp: the faulting page plus one random invalid 4KB page drawn from
 * the same 2MB large-page boundary (paper Sec. 3.1).
 */
class RandomPrefetcher : public Prefetcher
{
  public:
    std::string name() const override { return "Rp"; }
    PrefetcherKind kind() const override { return PrefetcherKind::random; }
    std::vector<PageNum> selectPages(PageNum faulty_page,
                                     LargePageTree &tree,
                                     Rng &rng) override;
};

/**
 * SLp: fill the 64KB basic block containing the faulting page (paper
 * Sec. 3.2) -- 16 contiguous pages local to the fault.
 */
class SequentialLocalPrefetcher : public Prefetcher
{
  public:
    std::string name() const override { return "SLp"; }
    PrefetcherKind
    kind() const override
    {
        return PrefetcherKind::sequentialLocal;
    }
    std::vector<PageNum> selectPages(PageNum faulty_page,
                                     LargePageTree &tree,
                                     Rng &rng) override;
};

/**
 * TBNp: the tree-based neighborhood prefetcher reverse engineered from
 * the CUDA 8.0 driver (paper Sec. 3.3) -- fill the faulted basic block
 * and rebalance ancestors above 50% occupancy.
 */
class TreeBasedPrefetcher : public Prefetcher
{
  public:
    std::string name() const override { return "TBNp"; }
    PrefetcherKind
    kind() const override
    {
        return PrefetcherKind::treeBasedNeighborhood;
    }
    std::vector<PageNum> selectPages(PageNum faulty_page,
                                     LargePageTree &tree,
                                     Rng &rng) override;
};

/**
 * SGp: Zheng et al.'s sequential prefetcher -- on every fault, besides
 * the faulting page, migrate the next invalid pages in ascending
 * virtual-address order within the region, irrespective of where the
 * fault landed.  Kept as the ablation baseline the paper contrasts
 * SLp against.
 */
class SequentialGlobalPrefetcher : public Prefetcher
{
  public:
    /** @param pages_per_fault How many pages to stream per fault. */
    explicit SequentialGlobalPrefetcher(std::uint64_t pages_per_fault =
                                            pagesPerBasicBlock)
        : pages_per_fault_(pages_per_fault)
    {}

    std::string name() const override { return "SGp"; }
    PrefetcherKind
    kind() const override
    {
        return PrefetcherKind::sequentialGlobal;
    }
    std::vector<PageNum> selectPages(PageNum faulty_page,
                                     LargePageTree &tree,
                                     Rng &rng) override;

  private:
    std::uint64_t pages_per_fault_;
};

/**
 * ZLp: Zheng et al.'s locality-aware prefetcher -- migrate 128
 * consecutive 4KB pages (512KB) starting from the faulting page,
 * clamped to the region end.  The paper notes SLp deliberately
 * differs (64KB blocks, no cross-large-page coordination).
 */
class ZhengLocalityPrefetcher : public Prefetcher
{
  public:
    /** @param pages_per_fault Run length from the fault (default 128). */
    explicit ZhengLocalityPrefetcher(std::uint64_t pages_per_fault = 128)
        : pages_per_fault_(pages_per_fault)
    {}

    std::string name() const override { return "ZLp"; }
    PrefetcherKind
    kind() const override
    {
        return PrefetcherKind::zhengLocality;
    }
    std::vector<PageNum> selectPages(PageNum faulty_page,
                                     LargePageTree &tree,
                                     Rng &rng) override;

  private:
    std::uint64_t pages_per_fault_;
};

/** Factory for a prefetcher of the given kind. */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind);

} // namespace uvmsim
