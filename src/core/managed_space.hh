/**
 * @file
 * Managed (unified virtual memory) allocations and their trees.
 *
 * ManagedSpace plays the role of cudaMallocManaged: it hands out
 * regions of the unified virtual address space and builds, per
 * allocation, the full binary trees the GMMU's prefetch/evict policies
 * operate on (paper Sec. 3.3): one 32-leaf tree per whole 2MB large
 * page, plus one rounded-up power-of-two tree for any remainder.
 *
 * No physical memory is allocated here -- pages materialize on demand
 * when the GMMU resolves far-faults, exactly as in the paper.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/large_page_tree.hh"
#include "mem/types.hh"

namespace uvmsim
{

/** One cudaMallocManaged-style allocation. */
class ManagedAllocation
{
  public:
    /**
     * @param name       Debug label (e.g. "temp_grid").
     * @param base       2MB-aligned virtual base address.
     * @param user_bytes Size the "programmer" requested.
     */
    ManagedAllocation(std::string name, Addr base,
                      std::uint64_t user_bytes);

    /** Debug label. */
    const std::string &name() const { return name_; }

    /** Virtual base address (2MB aligned). */
    Addr base() const { return base_; }

    /** Size as requested by the user. */
    std::uint64_t userBytes() const { return user_bytes_; }

    /**
     * Size after the driver's rounding: whole 2MB large pages plus the
     * remainder rounded up to the next 2^i * 64KB.
     */
    std::uint64_t paddedBytes() const { return padded_bytes_; }

    /** One-past-the-end of the padded region. */
    Addr endAddr() const { return base_ + padded_bytes_; }

    /** Whether an address lies in the padded region. */
    bool
    contains(Addr a) const
    {
        return a >= base_ && a < endAddr();
    }

    /** The trees covering this allocation, in address order. */
    const std::vector<std::unique_ptr<LargePageTree>> &trees() const
    {
        return trees_;
    }

    /** The tree covering a page; nullptr when outside the region. */
    LargePageTree *treeFor(PageNum page) const;

    /**
     * The driver's rounding rule for the non-2MB remainder: round up
     * to the next power-of-two multiple of 64KB (192KB -> 256KB).
     */
    static std::uint64_t roundUpRemainder(std::uint64_t remainder_bytes);

    /** Whether the page was ever evicted during this run. */
    bool
    everEvicted(PageNum page) const
    {
        std::uint64_t idx = evictedBitIndex(page);
        return (evicted_bits_[idx >> 6] >> (idx & 63)) & 1u;
    }

    /** Record that the page was evicted (thrashing detection). */
    void
    noteEvicted(PageNum page)
    {
        std::uint64_t idx = evictedBitIndex(page);
        evicted_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }

    /**
     * Fixed byte size of the ever-evicted bitmap: one bit per padded
     * page, sized at construction.  Exposed so tests can assert the
     * thrash-tracking state stays bounded on eviction-churn workloads
     * (it used to be an unordered_set growing with every eviction).
     */
    std::uint64_t
    evictedBitmapBytes() const
    {
        return evicted_bits_.size() * sizeof(std::uint64_t);
    }

  private:
    std::uint64_t
    evictedBitIndex(PageNum page) const
    {
        return (pageBase(page) - base_) / pageSize;
    }

    std::string name_;
    Addr base_;
    std::uint64_t user_bytes_;
    std::uint64_t padded_bytes_;
    std::vector<std::unique_ptr<LargePageTree>> trees_;
    /** One "was ever evicted" bit per padded page. */
    std::vector<std::uint64_t> evicted_bits_;
};

/** A tree's identity and to-be-valid size, for state snapshots. */
struct TreeValidSize
{
    Addr base = 0;
    std::uint64_t capacity_bytes = 0;
    std::uint64_t marked_bytes = 0;
};

/** The unified virtual address space and its allocations. */
class ManagedSpace
{
  public:
    /** Where the first allocation lands when no base is given. */
    static constexpr Addr defaultVaBase = 0x100000000ull;

    ManagedSpace();

    /**
     * Place the space at an explicit 2MB-aligned base.  Multi-tenant
     * runs stagger one space per tenant at tenantVaStride intervals so
     * the owning tenant of any page is its high address bits.
     */
    explicit ManagedSpace(Addr base);

    /** The base virtual address allocations bump from. */
    Addr baseAddr() const { return base_; }

    /**
     * Allocate a managed region.
     *
     * @param bytes User-requested size; must be > 0.
     * @param name  Debug label.
     * @return The allocation (owned by this space; stable address).
     */
    ManagedAllocation &allocate(std::uint64_t bytes,
                                std::string name = "alloc");

    /** The allocation containing a page; nullptr when unmanaged. */
    ManagedAllocation *allocationFor(PageNum page) const;

    /** The tree containing a page; nullptr when unmanaged. */
    LargePageTree *treeFor(PageNum page) const;

    /** All allocations in creation order. */
    const std::vector<std::unique_ptr<ManagedAllocation>> &
    allocations() const
    {
        return allocations_;
    }

    /**
     * Every tree's base, capacity and current to-be-valid (marked)
     * bytes, in address order across all allocations.  The
     * differential fuzz harness diffs this against the
     * FunctionalOracle's independently built trees.
     */
    std::vector<TreeValidSize> treeValidSizes() const;

    /** Sum of user-requested sizes. */
    std::uint64_t totalUserBytes() const { return total_user_bytes_; }

    /** Sum of padded sizes (what the device must eventually hold). */
    std::uint64_t totalPaddedBytes() const { return total_padded_bytes_; }

  private:
    /** Base virtual address (well away from zero to catch bugs). */
    Addr base_;
    Addr next_base_;
    std::vector<std::unique_ptr<ManagedAllocation>> allocations_;

    /**
     * Per-2MB-slot lookup tables, indexed by (slot - base slot).
     * Allocations bump upward from the space's base, so slots are
     * dense: a page-to-tree lookup is one bounds check plus one array
     * read -- this sits on the fault-service, eviction and prefetch
     * loops.
     */
    std::vector<LargePageTree *> tree_by_slot_;
    std::vector<ManagedAllocation *> alloc_by_slot_;

    std::uint64_t total_user_bytes_ = 0;
    std::uint64_t total_padded_bytes_ = 0;
};

} // namespace uvmsim
