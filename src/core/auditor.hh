/**
 * @file
 * SimAuditor -- opt-in cross-subsystem state auditing.
 *
 * The GMMU keeps four views of "which 4KB pages are resident" that
 * must never disagree: the to-be-valid marks in each allocation's
 * LargePageTree, the recency lists of the ResidencyTracker, the valid
 * bits of the PageTable, and the frames handed out by the
 * FrameAllocator (with in-flight pages parked in the FarFaultMshr).
 * The auditor sweeps all of them after every fault service, migration
 * arrival and eviction drain and, on the first violated invariant,
 * dumps a structured state diff (page table entry, tree bitmap, LRU
 * order, MSHR state) before panicking -- so a bookkeeping bug is
 * diagnosable at the moment it happens instead of surfacing as a
 * changed golden number thousands of events later.
 *
 * Invariants checked by checkAll():
 *  - every LargePageTree and the ResidencyTracker pass their own
 *    checkConsistent();
 *  - a tree-marked page is either valid in the PageTable or in-flight
 *    in the MSHRs -- never both, never neither;
 *  - every ResidencyTracker page is valid in the PageTable and marked
 *    in its allocation's tree;
 *  - PageTable valid-page count == ResidencyTracker size;
 *  - every valid page holds a distinct, in-range, allocated frame;
 *  - every MSHR-pending page is non-valid and managed;
 *  - frame accounting closes: used == valid + in-transit + pending
 *    write-back frees.
 *
 * checkVictims() validates an eviction selection before the GMMU
 * applies it: victims ascending and duplicate-free, each one resident
 * (TBNe may additionally return in-flight pages, which the GMMU
 * filters), and -- for the flat LRU policy, whose reservation is
 * defined directly on the page LRU -- never inside the reserved cold
 * prefix.
 *
 * Enabled per-run via GmmuConfig::audit (SimConfig::audit, CLI
 * --audit) or force-enabled for a whole build with the UVMSIM_AUDIT
 * CMake option (the debug CI configuration).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/managed_space.hh"
#include "core/policies.hh"
#include "core/residency_tracker.hh"
#include "core/tenant.hh"
#include "mem/frame_allocator.hh"
#include "mem/mshr.hh"
#include "mem/page_table.hh"
#include "mem/types.hh"

namespace uvmsim
{

/** Cross-subsystem residency invariant checker. */
class SimAuditor
{
  public:
    /**
     * GMMU-private transient counts the auditor cannot observe from
     * the subsystems themselves.
     */
    struct Transients
    {
        /** Frames granted to migrations that have not landed yet. */
        std::uint64_t frames_in_transit = 0;
        /** Frames of evicted pages awaiting write-back completion. */
        std::uint64_t pending_free_frames = 0;
    };

    SimAuditor(const ManagedSpace &space,
               const ResidencyTracker &residency,
               const PageTable &page_table, const FrameAllocator &frames,
               const FarFaultMshr &mshr);

    /**
     * Multi-tenant constructor: audits every tenant space and each
     * recency tracker (one, or one per tenant under quota policies),
     * adding the cross-tenant invariants -- a page may only be
     * tracked by its owning tenant's tracker, and per-tenant resident
     * counts must sum to the page table's valid count.  The tracker
     * vector must not reallocate after construction.
     */
    SimAuditor(const TenantSet &tenants,
               const std::vector<ResidencyTracker> &trackers,
               const PageTable &page_table, const FrameAllocator &frames,
               const FarFaultMshr &mshr);

    /**
     * Sweep every subsystem; on the first violated invariant dump a
     * structured state diff to stderr and panic.
     *
     * @param context Short label of the GMMU event that just finished
     *                (e.g. "fault-service"), included in the dump.
     */
    void checkAll(const char *context, const Transients &transients);

    /**
     * Validate one eviction selection before it is applied.
     *
     * @param kind          Policy that produced the selection.
     * @param victims       Selected pages (policy contract: ascending).
     * @param reserve_pages Cold-end reservation in force during the
     *                      selection.
     * @param tracker       Index of the tracker the selection came
     *                      from (the victim tenant, under per-tenant
     *                      tracking).
     */
    void checkVictims(const char *context, EvictionKind kind,
                      const std::vector<PageNum> &victims,
                      std::uint64_t reserve_pages,
                      std::uint32_t tracker = 0);

    /** Full sweeps performed so far. */
    std::uint64_t checksPerformed() const { return checks_; }

    /** Victim-set validations performed so far. */
    std::uint64_t victimChecksPerformed() const { return victim_checks_; }

  private:
    /** Dump the structured diff for `page` plus counts, then panic. */
    [[noreturn]] void fail(const char *context, const char *invariant,
                           const std::string &detail);

    /** One page's view across every subsystem, as dump lines. */
    std::string pageState(PageNum page) const;

    /** Global counters line (valid pages, frames, MSHR, LRU head). */
    std::string globalState(const Transients &transients) const;

    /** The tracker responsible for one page's recency state. */
    const ResidencyTracker &trackerFor(PageNum page) const;

    /** The space owning one page (tenant-routed). */
    const ManagedSpace &spaceFor(PageNum page) const;

    /** Resident pages across every tracker. */
    std::uint64_t residencySize() const;

    /** One space per tenant (a single entry for legacy callers). */
    std::vector<const ManagedSpace *> spaces_;
    /** One tracker, or one per tenant under quota policies. */
    std::vector<const ResidencyTracker *> trackers_;
    const PageTable &page_table_;
    const FrameAllocator &frames_;
    const FarFaultMshr &mshr_;

    std::uint64_t checks_ = 0;
    std::uint64_t victim_checks_ = 0;
};

} // namespace uvmsim
