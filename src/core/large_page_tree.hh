/**
 * @file
 * The full binary tree the GMMU maintains per 2MB large page.
 *
 * Paper Sec. 3.3: every cudaMallocManaged allocation is logically split
 * into 2MB large pages; each large page is a full binary tree whose
 * leaves are 64KB basic blocks (16 x 4KB pages).  If the allocation
 * size is not a multiple of 2MB, the remainder is rounded up to the
 * next 2^i * 64KB and gets its own (smaller) full binary tree.
 *
 * The tree tracks the *to-be-valid* size of every node: the bytes of
 * 4KB pages under the node that are either resident or already
 * scheduled for migration.  Two balancing walks implement the paper's
 * policies:
 *
 *  - TBNp (faultFill): after a far-fault fills a leaf, any ancestor
 *    whose to-be-valid size strictly exceeds 50% of its capacity has
 *    its emptier child filled up to the fuller child's size, recursing
 *    into descendants with spare capacity.  This exactly reproduces
 *    the paper's Figure 2(a)/(b) examples.
 *
 *  - TBNe (evictDrain): after an eviction empties a leaf, any ancestor
 *    whose valid size falls strictly below 50% of its capacity has its
 *    fuller child drained down to the emptier child's size.  This
 *    exactly reproduces the paper's Figure 8 example.
 *
 * Storage is two small fixed arrays inside the object -- per-leaf
 * 16-bit page bitmaps plus packed per-node marked-page counters in
 * implicit binary-heap layout (node (h, i) lives at heap index
 * (num_leaves >> h) + i, children of heap node n at 2n and 2n+1).
 * Every tree fits in under 200 contiguous bytes, balancing walks are
 * cache-linear, and a node's marked size is a single array read
 * instead of a leaf scan.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/types.hh"

namespace uvmsim
{

/** Full binary tree over the 64KB basic blocks of one large page. */
class LargePageTree
{
  public:
    /**
     * @param base_addr  Virtual base of the region; must be 64KB
     *                   aligned.
     * @param num_leaves Number of 64KB leaves; must be a power of two
     *                   in [1, 32] (32 leaves == one 2MB large page).
     */
    LargePageTree(Addr base_addr, std::uint32_t num_leaves);

    /** Virtual base address of the covered region. */
    Addr baseAddr() const { return base_; }

    /** Bytes covered by the whole tree (leaf count x 64KB). */
    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(num_leaves_) * basicBlockSize;
    }

    /** One-past-the-end address of the covered region. */
    Addr endAddr() const { return base_ + capacityBytes(); }

    /** Number of 64KB leaves. */
    std::uint32_t numLeaves() const { return num_leaves_; }

    /** Height of the root (0 for a single-leaf tree). */
    std::uint32_t rootHeight() const { return height_; }

    /** Whether the page lies inside the covered region. */
    bool covers(PageNum page) const;

    /** Leaf index containing the page. @pre covers(page). */
    std::uint32_t leafOf(PageNum page) const;

    /** First page number of a leaf. */
    PageNum leafFirstPage(std::uint32_t leaf) const;

    /** Mark one page to-be-valid (scheduled or resident). */
    void markPage(PageNum page);

    /** Clear one page's to-be-valid mark. */
    void unmarkPage(PageNum page);

    /** Whether the page is currently marked to-be-valid. */
    bool pageMarked(PageNum page) const;

    /** Number of marked pages in a leaf (0..16). */
    std::uint32_t leafMarkedPages(std::uint32_t leaf) const;

    /** Marked bytes under the node at (height, index). */
    std::uint64_t nodeMarkedBytes(std::uint32_t height,
                                  std::uint32_t index) const;

    /** Capacity in bytes of any node at the given height. */
    std::uint64_t
    nodeCapacityBytes(std::uint32_t height) const
    {
        return basicBlockSize << height;
    }

    /** Total marked bytes in the tree. */
    std::uint64_t totalMarkedBytes() const;

    /** All currently marked pages, in address order. */
    std::vector<PageNum> markedPages() const;

    /**
     * TBNp: handle a far-fault on a page of this tree.
     *
     * Marks the remainder of the faulted 64KB basic block, then walks
     * leaf-to-root balancing every ancestor whose to-be-valid size
     * strictly exceeds half its capacity.
     *
     * @param faulty_page The faulting page (must be unmarked & covered).
     * @return Every page newly marked by this call, in address order;
     *         includes faulty_page itself.
     */
    std::vector<PageNum> faultFill(PageNum faulty_page);

    /**
     * TBNe: handle the eviction of a basic block of this tree.
     *
     * Unmarks every marked page of the victim leaf, then walks
     * leaf-to-root draining the fuller child of every ancestor whose
     * valid size falls strictly below half its capacity.
     *
     * @param victim_leaf Leaf chosen from the LRU list.
     * @return Every page newly unmarked by this call, in address
     *         order.
     */
    std::vector<PageNum> evictDrain(std::uint32_t victim_leaf);

    /**
     * Verify internal consistency (leaf counts within range and
     * aggregate bookkeeping coherent).  Used by tests; returns true
     * when consistent.
     */
    bool checkConsistent() const;

  private:
    /** Node address helpers: node (h, i) spans leaves [i<<h, (i+1)<<h). */
    std::uint32_t firstLeafUnder(std::uint32_t height,
                                 std::uint32_t index) const
    {
        return index << height;
    }

    std::uint32_t leavesUnder(std::uint32_t height) const
    {
        return 1u << height;
    }

    /** Heap index of node (h, i); root is 1, leaves start at
     *  num_leaves. */
    std::uint32_t
    heapIndex(std::uint32_t height, std::uint32_t index) const
    {
        return (num_leaves_ >> height) + index;
    }

    /** Marked bytes in the leaf range of node (h, i): one array read. */
    std::uint64_t
    markedUnder(std::uint32_t height, std::uint32_t index) const
    {
        return static_cast<std::uint64_t>(
                   node_pages_[heapIndex(height, index)]) *
               pageSize;
    }

    /** Mark page `bit` of `leaf`; updates every ancestor counter. */
    void setBit(std::uint32_t leaf, std::uint32_t bit);

    /** Unmark page `bit` of `leaf`; updates every ancestor counter. */
    void clearBit(std::uint32_t leaf, std::uint32_t bit);

    /**
     * Fill `pages` unmarked pages under node (h, i), descending into
     * the child with the smaller marked size first (ties to the lower
     * address), appending newly marked page numbers to out.
     * @return Pages actually filled (limited by spare capacity).
     */
    std::uint64_t fillPages(std::uint32_t height, std::uint32_t index,
                            std::uint64_t pages,
                            std::vector<PageNum> &out);

    /**
     * Drain `pages` marked pages under node (h, i), descending into
     * the child with the larger marked size first (ties to the lower
     * address), appending newly unmarked page numbers to out.
     * @return Pages actually drained (limited by marked content).
     */
    std::uint64_t drainPages(std::uint32_t height, std::uint32_t index,
                             std::uint64_t pages,
                             std::vector<PageNum> &out);

    Addr base_;
    std::uint32_t num_leaves_;
    std::uint32_t height_;

    /** Per-leaf bitmap of marked 4KB pages (bit p = page p of leaf). */
    std::array<std::uint16_t, blocksPerLargePage> leaf_bits_{};

    /**
     * Marked-page counts for every node, implicit heap layout (index 0
     * unused).  Max count is 512 pages (a full 2MB root), so uint16
     * suffices; the whole array is 128 bytes.
     */
    std::array<std::uint16_t, 2 * blocksPerLargePage> node_pages_{};
};

} // namespace uvmsim
