#include "policies.hh"

#include "sim/logging.hh"

namespace uvmsim
{

std::string
toString(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::none:
        return "none";
      case PrefetcherKind::random:
        return "Rp";
      case PrefetcherKind::sequentialLocal:
        return "SLp";
      case PrefetcherKind::treeBasedNeighborhood:
        return "TBNp";
      case PrefetcherKind::sequentialGlobal:
        return "SGp";
      case PrefetcherKind::zhengLocality:
        return "ZLp";
    }
    panic("unknown PrefetcherKind");
}

std::string
toString(EvictionKind kind)
{
    switch (kind) {
      case EvictionKind::lru4k:
        return "LRU4K";
      case EvictionKind::random4k:
        return "Re";
      case EvictionKind::sequentialLocal:
        return "SLe";
      case EvictionKind::treeBasedNeighborhood:
        return "TBNe";
      case EvictionKind::lru2mb:
        return "LRU2MB";
      case EvictionKind::mru4k:
        return "MRU4K";
    }
    panic("unknown EvictionKind");
}

PrefetcherKind
prefetcherFromString(const std::string &name)
{
    if (name == "none" || name == "None")
        return PrefetcherKind::none;
    if (name == "Rp" || name == "random")
        return PrefetcherKind::random;
    if (name == "SLp" || name == "sequential-local")
        return PrefetcherKind::sequentialLocal;
    if (name == "TBNp" || name == "tree-based-neighborhood")
        return PrefetcherKind::treeBasedNeighborhood;
    if (name == "SGp" || name == "sequential-global")
        return PrefetcherKind::sequentialGlobal;
    if (name == "ZLp" || name == "zheng-locality")
        return PrefetcherKind::zhengLocality;
    fatal("unknown prefetcher '%s' (expected none|Rp|SLp|TBNp|SGp|ZLp)",
          name.c_str());
}

EvictionKind
evictionFromString(const std::string &name)
{
    if (name == "LRU4K" || name == "lru4k" || name == "LRU")
        return EvictionKind::lru4k;
    if (name == "Re" || name == "random")
        return EvictionKind::random4k;
    if (name == "SLe" || name == "sequential-local")
        return EvictionKind::sequentialLocal;
    if (name == "TBNe" || name == "tree-based-neighborhood")
        return EvictionKind::treeBasedNeighborhood;
    if (name == "LRU2MB" || name == "lru2mb" || name == "2MB")
        return EvictionKind::lru2mb;
    if (name == "MRU4K" || name == "mru4k" || name == "MRU")
        return EvictionKind::mru4k;
    fatal("unknown eviction policy '%s' "
          "(expected LRU4K|Re|SLe|TBNe|LRU2MB|MRU4K)",
          name.c_str());
}

} // namespace uvmsim
