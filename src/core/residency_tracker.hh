/**
 * @file
 * Recency bookkeeping for resident pages -- the paper's LRU page list.
 *
 * Paper Sec. 5.3 design choices, all implemented here:
 *  - the list holds *every* page whose valid flag is set (not just
 *    accessed pages); pages enter on migration completion;
 *  - any read or write access moves a page to the MRU end;
 *  - ordering is hierarchical: 2MB chunks are ordered by the chunk's
 *    last access, and 64KB basic blocks are ordered within their chunk
 *    by the block's last access;
 *  - a configurable count of pages at the cold (top-of-LRU) end can be
 *    reserved from eviction (Sec. 7.4).
 *
 * The tracker also maintains a flat page-granular LRU (for the
 * traditional LRU-4KB policy) and an O(1) uniform random sampler (for
 * the Re policy).
 */

#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"
#include "sim/rng.hh"

namespace uvmsim
{

/** Tracks which pages are resident and how recently they were used. */
class ResidencyTracker
{
  public:
    ResidencyTracker() = default;

    /** A page finished migrating: insert at the MRU end. */
    void onResident(PageNum page);

    /** A resident page was read or written: move to the MRU end. */
    void onAccess(PageNum page);

    /** A page was evicted: forget it. */
    void onEvicted(PageNum page);

    /** Whether the tracker knows the page as resident. */
    bool isTracked(PageNum page) const;

    /** Number of resident pages tracked. */
    std::uint64_t size() const { return page_pos_.size(); }

    /**
     * Flat 4KB LRU victim: the oldest page after skipping `skip_pages`
     * pages from the cold end (the reservation of Sec. 7.4).
     * @return nullopt when nothing is evictable after the skip.
     */
    std::optional<PageNum> lruPageVictim(std::uint64_t skip_pages) const;

    /** Uniformly random resident page (Re policy). */
    std::optional<PageNum> randomPageVictim(Rng &rng) const;

    /**
     * Most-recently-used page (the MRU policy Sec. 5.3 mentions as the
     * classic fix for repetitive linear patterns).
     */
    std::optional<PageNum> mruPageVictim() const;

    /**
     * Hierarchical 64KB victim: the least-recent basic block of the
     * least-recent 2MB chunk, after skipping blocks covering the first
     * `skip_pages` resident pages from the cold end.
     * @return Global basic-block index (addr >> 16), or nullopt.
     */
    std::optional<std::uint64_t>
    lruBlockVictim(std::uint64_t skip_pages) const;

    /**
     * 2MB victim: the least-recent large-page chunk after skipping
     * chunks covering the first `skip_pages` resident pages.
     * @return Global 2MB slot index (addr >> 21), or nullopt.
     */
    std::optional<std::uint64_t>
    lruLargePageVictim(std::uint64_t skip_pages) const;

    /** Resident pages inside a global basic-block index, ascending. */
    std::vector<PageNum> pagesInBlock(std::uint64_t block) const;

    /** Resident pages inside a global 2MB slot index, ascending. */
    std::vector<PageNum> pagesInLargePage(std::uint64_t slot) const;

    /** Resident-page count of a block (0 when unknown). */
    std::uint64_t blockResidentPages(std::uint64_t block) const;

    /**
     * Up to `n` coldest pages in flat LRU order (coldest first).
     * n >= size() enumerates every tracked page; used by the
     * SimAuditor for its sweep and reservation checks.
     */
    std::vector<PageNum> coldPages(std::uint64_t n) const;

    /** Internal invariants hold (for tests). */
    bool checkConsistent() const;

  private:
    // ---- flat page LRU (MRU at front) ----
    std::list<PageNum> page_order_;
    std::unordered_map<PageNum, std::list<PageNum>::iterator> page_pos_;

    // ---- hierarchical structures ----
    struct ChunkEntry
    {
        /** Blocks of this chunk, MRU at front. */
        std::list<std::uint64_t> block_order;
        std::unordered_map<std::uint64_t,
                           std::list<std::uint64_t>::iterator> block_pos;
        /** Resident pages per block of this chunk. */
        std::unordered_map<std::uint64_t, std::uint64_t> block_pages;
        /** Total resident pages in the chunk. */
        std::uint64_t pages = 0;
        /** Position in chunk_order_. */
        std::list<std::uint64_t>::iterator self;
    };

    /** 2MB chunks, MRU at front. */
    std::list<std::uint64_t> chunk_order_;
    std::unordered_map<std::uint64_t, ChunkEntry> chunks_;

    // ---- O(1) random sampling ----
    std::vector<PageNum> random_pool_;
    std::unordered_map<PageNum, std::size_t> random_pos_;

    void touchHierarchy(PageNum page);
    void removeFromHierarchy(PageNum page);
};

} // namespace uvmsim
