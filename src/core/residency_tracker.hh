/**
 * @file
 * Recency bookkeeping for resident pages -- the paper's LRU page list.
 *
 * Paper Sec. 5.3 design choices, all implemented here:
 *  - the list holds *every* page whose valid flag is set (not just
 *    accessed pages); pages enter on migration completion;
 *  - any read or write access moves a page to the MRU end;
 *  - ordering is hierarchical: 2MB chunks are ordered by the chunk's
 *    last access, and 64KB basic blocks are ordered within their chunk
 *    by the block's last access;
 *  - a configurable count of pages at the cold (top-of-LRU) end can be
 *    reserved from eviction (Sec. 7.4).
 *
 * The tracker also maintains a flat page-granular LRU (for the
 * traditional LRU-4KB policy) and an O(1) uniform random sampler (for
 * the Re policy).
 *
 * All three recency orders are intrusive doubly-linked lists threaded
 * through flat record arenas by 32-bit index links -- no std::list
 * nodes, no per-page heap allocation, and exactly one hash lookup per
 * tracker operation (a page's record caches its owning chunk's arena
 * slot, so the hierarchical touch needs no chunk hash at all).  Blocks
 * live in a fixed 32-entry array inside their chunk record with a
 * 16-bit resident-page bitmap each, making block membership queries
 * pure bit tests.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"
#include "sim/rng.hh"

namespace uvmsim
{

/** Tracks which pages are resident and how recently they were used. */
class ResidencyTracker
{
  public:
    ResidencyTracker() = default;

    /** A page finished migrating: insert at the MRU end. */
    void onResident(PageNum page);

    /** A resident page was read or written: move to the MRU end. */
    void onAccess(PageNum page);

    /** A page was evicted: forget it. */
    void onEvicted(PageNum page);

    /** Whether the tracker knows the page as resident. */
    bool isTracked(PageNum page) const;

    /** Number of resident pages tracked. */
    std::uint64_t size() const { return slot_of_.size(); }

    /**
     * Flat 4KB LRU victim: the oldest page after skipping `skip_pages`
     * pages from the cold end (the reservation of Sec. 7.4).
     * @return nullopt when nothing is evictable after the skip.
     */
    std::optional<PageNum> lruPageVictim(std::uint64_t skip_pages) const;

    /** Uniformly random resident page (Re policy). */
    std::optional<PageNum> randomPageVictim(Rng &rng) const;

    /**
     * Most-recently-used page (the MRU policy Sec. 5.3 mentions as the
     * classic fix for repetitive linear patterns).
     */
    std::optional<PageNum> mruPageVictim() const;

    /**
     * Hierarchical 64KB victim: the least-recent basic block of the
     * least-recent 2MB chunk, after skipping blocks covering the first
     * `skip_pages` resident pages from the cold end.
     * @return Global basic-block index (addr >> 16), or nullopt.
     */
    std::optional<std::uint64_t>
    lruBlockVictim(std::uint64_t skip_pages) const;

    /**
     * 2MB victim: the least-recent large-page chunk after skipping
     * chunks covering the first `skip_pages` resident pages.
     * @return Global 2MB slot index (addr >> 21), or nullopt.
     */
    std::optional<std::uint64_t>
    lruLargePageVictim(std::uint64_t skip_pages) const;

    /** Resident pages inside a global basic-block index, ascending. */
    std::vector<PageNum> pagesInBlock(std::uint64_t block) const;

    /** Resident pages inside a global 2MB slot index, ascending. */
    std::vector<PageNum> pagesInLargePage(std::uint64_t slot) const;

    /** Resident-page count of a block (0 when unknown). */
    std::uint64_t blockResidentPages(std::uint64_t block) const;

    /**
     * Up to `n` coldest pages in flat LRU order (coldest first).
     * n >= size() enumerates every tracked page; used by the
     * SimAuditor for its sweep and reservation checks.
     */
    std::vector<PageNum> coldPages(std::uint64_t n) const;

    /** Internal invariants hold (for tests). */
    bool checkConsistent() const;

  private:
    /** Sentinel for "no record" in 32-bit index links. */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /** Sentinel for "no block" in the per-chunk 8-bit links. */
    static constexpr std::uint8_t bnil = 0xff;

    /** One tracked page: flat-LRU links plus cached hierarchy slots. */
    struct PageRec
    {
        PageNum page = 0;
        std::uint32_t prev = npos;  //!< Flat LRU toward MRU.
        std::uint32_t next = npos;  //!< Flat LRU toward LRU / free link.
        std::uint32_t chunk = npos; //!< Owning chunk's arena slot.
        std::uint32_t rand_idx = 0; //!< Position in random_pool_.
    };

    /** One 64KB basic block inside its chunk's fixed array. */
    struct BlockRec
    {
        std::uint16_t pages = 0;     //!< Resident pages (0..16).
        std::uint16_t page_bits = 0; //!< Bit p: page p resident.
        std::uint8_t prev = bnil;    //!< Block LRU toward MRU.
        std::uint8_t next = bnil;    //!< Block LRU toward LRU.
    };

    /** One 2MB chunk: chunk-LRU links plus its 32 blocks. */
    struct ChunkRec
    {
        std::uint64_t slot_id = 0; //!< Global 2MB slot index.
        std::uint64_t pages = 0;   //!< Resident pages in the chunk.
        std::uint32_t prev = npos; //!< Chunk LRU toward MRU.
        std::uint32_t next = npos; //!< Chunk LRU toward LRU / free link.
        std::uint8_t block_head = bnil; //!< MRU block.
        std::uint8_t block_tail = bnil; //!< LRU block.
        BlockRec blocks[blocksPerLargePage];
    };

    std::uint32_t allocPage();
    void freePage(std::uint32_t slot);
    std::uint32_t allocChunk();
    void freeChunk(std::uint32_t slot);

    /** Unlink a page from the flat LRU list (links left dangling). */
    void unlinkPage(std::uint32_t slot);
    /** Link a page at the MRU (head) end of the flat LRU list. */
    void linkPageFront(std::uint32_t slot);

    void unlinkChunk(std::uint32_t slot);
    void linkChunkFront(std::uint32_t slot);

    void unlinkBlock(ChunkRec &chunk, std::uint8_t b);
    void linkBlockFront(ChunkRec &chunk, std::uint8_t b);

    /** Move the page's chunk and block to their MRU ends. */
    void touchHierarchy(const PageRec &rec, std::uint8_t b);

    // ---- flat page LRU (MRU at head) ----
    std::vector<PageRec> page_recs_;
    std::uint32_t page_free_ = npos;
    std::uint32_t page_head_ = npos;
    std::uint32_t page_tail_ = npos;
    std::unordered_map<PageNum, std::uint32_t> slot_of_;

    // ---- hierarchical structures (chunk MRU at head) ----
    std::vector<ChunkRec> chunk_recs_;
    std::uint32_t chunk_free_ = npos;
    std::uint32_t chunk_head_ = npos;
    std::uint32_t chunk_tail_ = npos;
    std::unordered_map<std::uint64_t, std::uint32_t> chunk_of_;

    // ---- O(1) random sampling (stores page arena slots) ----
    std::vector<std::uint32_t> random_pool_;
};

} // namespace uvmsim
