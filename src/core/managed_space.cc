#include "managed_space.hh"

#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

std::uint64_t
ManagedAllocation::roundUpRemainder(std::uint64_t remainder_bytes)
{
    if (remainder_bytes == 0)
        return 0;
    std::uint64_t blocks =
        (remainder_bytes + basicBlockSize - 1) / basicBlockSize;
    return std::bit_ceil(blocks) * basicBlockSize;
}

ManagedAllocation::ManagedAllocation(std::string name, Addr base,
                                     std::uint64_t user_bytes)
    : name_(std::move(name)), base_(base), user_bytes_(user_bytes)
{
    if (user_bytes_ == 0)
        fatal("managed allocation '%s' of zero bytes", name_.c_str());
    if (base_ % largePageSize != 0)
        panic("allocation base %llx not 2MB aligned",
              static_cast<unsigned long long>(base_));

    std::uint64_t full_large_pages = user_bytes_ / largePageSize;
    std::uint64_t remainder = user_bytes_ % largePageSize;

    Addr cursor = base_;
    for (std::uint64_t i = 0; i < full_large_pages; ++i) {
        trees_.push_back(std::make_unique<LargePageTree>(
            cursor, static_cast<std::uint32_t>(blocksPerLargePage)));
        cursor += largePageSize;
    }
    std::uint64_t padded_remainder = roundUpRemainder(remainder);
    if (padded_remainder > 0) {
        trees_.push_back(std::make_unique<LargePageTree>(
            cursor,
            static_cast<std::uint32_t>(padded_remainder / basicBlockSize)));
        cursor += padded_remainder;
    }
    padded_bytes_ = cursor - base_;
    evicted_bits_.assign((padded_bytes_ / pageSize + 63) / 64, 0);
}

LargePageTree *
ManagedAllocation::treeFor(PageNum page) const
{
    Addr a = pageBase(page);
    if (!contains(a))
        return nullptr;
    std::uint64_t slot = (a - base_) / largePageSize;
    // Full trees occupy one 2MB slot each; the remainder tree (if any)
    // is the last entry and also starts on a 2MB boundary.
    if (slot >= trees_.size())
        return nullptr;
    LargePageTree *tree = trees_[slot].get();
    return tree->covers(page) ? tree : nullptr;
}

ManagedSpace::ManagedSpace()
    : ManagedSpace(defaultVaBase)
{
}

ManagedSpace::ManagedSpace(Addr base)
    : base_(base), next_base_(base)
{
    if (base_ % largePageSize != 0)
        panic("managed space base %llx not 2MB aligned",
              static_cast<unsigned long long>(base_));
}

ManagedAllocation &
ManagedSpace::allocate(std::uint64_t bytes, std::string name)
{
    auto alloc = std::make_unique<ManagedAllocation>(std::move(name),
                                                     next_base_, bytes);
    ManagedAllocation &ref = *alloc;

    // Advance the bump pointer past the padded region, keeping 2MB
    // alignment for the next allocation.
    Addr end = ref.endAddr();
    next_base_ = (end + largePageSize - 1) & ~(largePageSize - 1);

    for (const auto &tree : ref.trees()) {
        std::uint64_t idx =
            tree->baseAddr() / largePageSize - base_ / largePageSize;
        if (idx >= tree_by_slot_.size()) {
            tree_by_slot_.resize(idx + 1, nullptr);
            alloc_by_slot_.resize(idx + 1, nullptr);
        }
        tree_by_slot_[idx] = tree.get();
        alloc_by_slot_[idx] = &ref;
    }

    total_user_bytes_ += ref.userBytes();
    total_padded_bytes_ += ref.paddedBytes();

    allocations_.push_back(std::move(alloc));
    return ref;
}

std::vector<TreeValidSize>
ManagedSpace::treeValidSizes() const
{
    std::vector<TreeValidSize> out;
    for (const auto &alloc : allocations_)
        for (const auto &tree : alloc->trees())
            out.push_back(TreeValidSize{tree->baseAddr(),
                                        tree->capacityBytes(),
                                        tree->totalMarkedBytes()});
    return out;
}

ManagedAllocation *
ManagedSpace::allocationFor(PageNum page) const
{
    Addr a = pageBase(page);
    std::uint64_t slot = a / largePageSize;
    const std::uint64_t first = base_ / largePageSize;
    if (slot < first || slot - first >= alloc_by_slot_.size())
        return nullptr;
    ManagedAllocation *alloc = alloc_by_slot_[slot - first];
    return alloc && alloc->contains(a) ? alloc : nullptr;
}

LargePageTree *
ManagedSpace::treeFor(PageNum page) const
{
    std::uint64_t slot = pageBase(page) / largePageSize;
    const std::uint64_t first = base_ / largePageSize;
    if (slot < first || slot - first >= tree_by_slot_.size())
        return nullptr;
    LargePageTree *tree = tree_by_slot_[slot - first];
    return tree && tree->covers(page) ? tree : nullptr;
}

} // namespace uvmsim
