#include "gmmu.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace uvmsim
{

Gmmu::Gmmu(EventQueue &eq, PcieLink &pcie, FrameAllocator &frames,
           PageTable &page_table, TenantSet &tenants, GmmuConfig config)
    : eq_(eq),
      pcie_(pcie),
      frames_(frames),
      page_table_(page_table),
      tenants_(tenants),
      config_(config),
      rng_(config.seed),
      prefetcher_before_(makePrefetcher(config.prefetcher_before)),
      prefetcher_after_(makePrefetcher(config.prefetcher_after)),
      eviction_(makeEvictionPolicy(config.eviction)),
      far_faults_("gmmu.far_faults",
                  "far-faults that initiated a fault service"),
      fault_services_("gmmu.fault_services",
                      "fault-engine services performed (45us each)"),
      skipped_services_("gmmu.skipped_services",
                        "services whose page was already in flight"),
      prefetches_trimmed_("gmmu.prefetches_trimmed",
                          "prefetch sets trimmed to fit device memory"),
      pages_migrated_("gmmu.pages_migrated",
                      "4KB pages migrated host-to-device"),
      pages_prefetched_("gmmu.pages_prefetched",
                        "migrated pages that were prefetches"),
      pages_evicted_("gmmu.pages_evicted", "4KB pages evicted"),
      pages_written_back_("gmmu.pages_written_back",
                          "4KB pages written back device-to-host"),
      pages_thrashed_("gmmu.pages_thrashed",
                      "evicted pages that were migrated again"),
      walk_count_("gmmu.page_walks", "page table walks performed"),
      walk_queue_delay_ns_("gmmu.walk_queue_delay_ns",
                           "mean wait for a free page walker (ns)"),
      mshr_stalls_("gmmu.mshr_stalls",
                   "faults delayed by full far-fault MSHRs"),
      user_prefetched_pages_("gmmu.user_prefetched_pages",
                             "pages migrated by user-directed prefetch"),
      oversubscribed_at_us_("gmmu.oversubscribed_at_us",
                            "sim time the over-subscription latch tripped"),
      audit_checks_("gmmu.audit_checks",
                    "SimAuditor full-state sweeps performed")
{
    // Per-tenant state: quota-style cross-tenant eviction needs one
    // recency tracker per tenant; globalLru (and every single-tenant
    // run) keeps the one shared order.  Fault queues and
    // over-subscription latches are always per tenant.
    const std::uint32_t num_tenants = tenants_.numTenants();
    bool per_tenant_tracking =
        num_tenants > 1 &&
        config_.tenant_eviction != TenantEvictionKind::globalLru;
    residency_.resize(per_tenant_tracking ? num_tenants : 1);
    fault_queues_.resize(num_tenants);
    tenant_oversub_.assign(num_tenants, 0);
    tenant_mshr_pending_.assign(num_tenants, 0);
    if (num_tenants > 1) {
        tenant_stats_.reserve(num_tenants);
        for (TenantId t = 0; t < num_tenants; ++t)
            tenant_stats_.push_back(std::make_unique<TenantStats>(t));
    }

    // The UVMSIM_AUDIT build config forces the auditor on for every
    // run (the debug CI job); otherwise it is per-run opt-in.
#ifdef UVMSIM_AUDIT
    constexpr bool audit_forced = true;
#else
    constexpr bool audit_forced = false;
#endif
    if (config_.audit || audit_forced) {
        auditor_ = std::make_unique<SimAuditor>(tenants_, residency_,
                                                page_table_, frames_,
                                                mshr_);
    }
    if (config_.lru_reserve_fraction < 0.0 ||
        config_.lru_reserve_fraction >= 1.0) {
        fatal("lru_reserve_fraction %.3f outside [0, 1)",
              config_.lru_reserve_fraction);
    }
    if (config_.page_walkers > 0)
        walker_free_.assign(config_.page_walkers, 0);
}

Gmmu::Gmmu(EventQueue &eq, PcieLink &pcie, FrameAllocator &frames,
           PageTable &page_table, ManagedSpace &space, GmmuConfig config)
    : Gmmu(eq, pcie, frames, page_table, *new TenantSet(space), config)
{
    // The delegated constructor bound tenants_ to the fresh view; take
    // ownership of it now that owned_view_ is constructed.
    owned_view_.reset(&tenants_);
}

Gmmu::TenantStats::TenantStats(TenantId t)
    : far_faults("tenant" + std::to_string(t) + ".far_faults",
                 "far-faults raised by this tenant"),
      pages_migrated("tenant" + std::to_string(t) + ".pages_migrated",
                     "4KB pages migrated for this tenant"),
      pages_evicted("tenant" + std::to_string(t) + ".pages_evicted",
                    "this tenant's 4KB pages evicted"),
      pages_evicted_cross(
          "tenant" + std::to_string(t) + ".pages_evicted_cross",
          "this tenant's pages evicted to satisfy another tenant"),
      mshr_pending_peak(
          "tenant" + std::to_string(t) + ".mshr_pending_peak",
          "peak concurrent MSHR-pending pages owned by this tenant"),
      oversubscribed_at_us(
          "tenant" + std::to_string(t) + ".oversubscribed_at_us",
          "sim time this tenant's over-subscription latch tripped")
{
}

Prefetcher &
Gmmu::activePrefetcher(TenantId tenant)
{
    return tenant_oversub_[tenant] ? *prefetcher_after_
                                   : *prefetcher_before_;
}

std::vector<PageNum>
Gmmu::residentColdToHot() const
{
    std::vector<PageNum> out;
    for (const ResidencyTracker &tracker : residency_) {
        std::vector<PageNum> one = tracker.coldPages(tracker.size());
        out.insert(out.end(), one.begin(), one.end());
    }
    return out;
}

void
Gmmu::mshrEnter(PageNum page)
{
    if (tenant_stats_.empty())
        return;
    TenantId t = tenants_.tenantOf(page);
    ++tenant_mshr_pending_[t];
    tenant_stats_[t]->mshr_pending_peak.sample(
        static_cast<double>(tenant_mshr_pending_[t]));
}

void
Gmmu::mshrExit(PageNum page)
{
    if (tenant_stats_.empty())
        return;
    --tenant_mshr_pending_[tenants_.tenantOf(page)];
}

void
Gmmu::audit(const char *context)
{
    if (!auditor_)
        return;
    auditor_->checkAll(
        context,
        SimAuditor::Transients{frames_in_transit_, pending_free_frames_});
    ++audit_checks_;
}

void
Gmmu::accountAccess(const MemAccess &access)
{
    PageNum page = pageOf(access.addr);
    if (access.is_write)
        page_table_.markDirty(page);
    else
        page_table_.markAccessed(page);
    trackerFor(page).onAccess(page);
    if (observer_)
        observer_(eq_.curTick(), page, access.is_write);
}

void
Gmmu::recordAccess(const MemAccess &access)
{
    accountAccess(access);
}

void
Gmmu::translate(const MemAccess &access, AccessDone done)
{
    ++walk_count_;

    Tick start = eq_.curTick();
    if (!walker_free_.empty()) {
        // Multi-threaded walker pool: take the earliest-free walker.
        auto it = std::min_element(walker_free_.begin(),
                                   walker_free_.end());
        start = std::max(start, *it);
        *it = start + config_.page_walk_latency;
        walk_queue_delay_ns_.sample(
            ticksToNanoseconds(start - eq_.curTick()));
    }

    eq_.scheduleCall(start + config_.page_walk_latency,
                     &Gmmu::walkDoneThunk, this,
                     allocWalk(access, std::move(done)));
}

std::uint32_t
Gmmu::allocWalk(const MemAccess &access, AccessDone done)
{
    std::uint32_t slot;
    if (walk_free_ != ~std::uint32_t{0}) {
        slot = walk_free_;
        walk_free_ = walks_[slot].next;
    } else {
        walks_.emplace_back();
        slot = static_cast<std::uint32_t>(walks_.size() - 1);
    }
    walks_[slot].access = access;
    walks_[slot].done = std::move(done);
    return slot;
}

void
Gmmu::walkDoneThunk(void *gmmu, std::uint64_t slot64)
{
    auto *self = static_cast<Gmmu *>(gmmu);
    auto slot = static_cast<std::uint32_t>(slot64);
    // Move out and recycle first: walkDone may start new walks and
    // reallocate the pool.
    MemAccess access = self->walks_[slot].access;
    AccessDone done = std::move(self->walks_[slot].done);
    self->walks_[slot].next = self->walk_free_;
    self->walk_free_ = slot;
    self->walkDone(access, std::move(done));
}

void
Gmmu::walkDone(const MemAccess &access, AccessDone done)
{
    PageNum page = pageOf(access.addr);
    if (page_table_.isValid(page)) {
        accountAccess(access);
        done();
        return;
    }
    raiseFault(access, std::move(done));
}

void
Gmmu::raiseFault(const MemAccess &access, AccessDone done)
{
    PageNum page = pageOf(access.addr);

    // Finite MSHRs: a fault on a page with no existing entry must
    // wait for space; it retries through the validity check (the page
    // may even have become resident meanwhile).
    if (config_.mshr_entries > 0 && !mshr_.isPending(page) &&
        mshr_.pendingPages() >= config_.mshr_entries) {
        ++mshr_stalls_;
        eq_.scheduleCallAfter(config_.mshr_retry_latency,
                              &Gmmu::walkDoneThunk, this,
                              allocWalk(access, std::move(done)));
        return;
    }

    auto waiter = [this, access, done = std::move(done)]() {
        accountAccess(access);
        done();
    };
    bool primary = mshr_.registerFault(page, std::move(waiter));
    DTRACE("GMMU", "far-fault on page %llu (%s)",
           static_cast<unsigned long long>(page),
           primary ? "primary" : "merged");
    emit(trace::Event{primary ? trace::Kind::faultRaised
                              : trace::Kind::faultMerged,
                      trace::Category::fault,
                      primary ? "fault" : "fault_merged", eq_.curTick(),
                      0, 1, 0, page},
         page);
    if (primary) {
        mshrEnter(page);
        fault_queues_[tenants_.tenantOf(page)].push_back(page);
        kickFaultEngine();
    }
}

void
Gmmu::kickFaultEngine()
{
    if (engine_busy_)
        return;

    // Fault-buffer entries whose page is already in flight (another
    // fault's prefetch covered them) are discarded for free -- the
    // driver processes them in the same buffer sweep.  Tenant fault
    // buffers are swept round-robin so one tenant's burst cannot
    // starve another, and a service batch never mixes tenants.
    const std::uint32_t num_queues =
        static_cast<std::uint32_t>(fault_queues_.size());
    std::deque<PageNum> *queue = nullptr;
    for (std::uint32_t k = 0; k < num_queues && !queue; ++k) {
        std::deque<PageNum> &q =
            fault_queues_[(fault_rr_ + k) % num_queues];
        while (!q.empty()) {
            LargePageTree *tree = tenants_.treeFor(q.front());
            if (!tree || !tree->pageMarked(q.front()))
                break;
            q.pop_front();
            ++skipped_services_;
        }
        if (!q.empty()) {
            queue = &q;
            fault_rr_ = ((fault_rr_ + k) % num_queues + 1) % num_queues;
        }
    }
    if (!queue)
        return;

    engine_busy_ = true;
    std::vector<PageNum> batch;
    std::uint32_t batch_size = std::max<std::uint32_t>(
        1, config_.fault_batch_size);
    while (!queue->empty() && batch.size() < batch_size) {
        batch.push_back(queue->front());
        queue->pop_front();
    }

    Tick latency = config_.fault_handling_latency;
    if (config_.fault_latency_jitter > 0.0) {
        double factor = 1.0 + config_.fault_latency_jitter *
                                  (2.0 * rng_.real() - 1.0);
        latency = static_cast<Tick>(
            static_cast<double>(latency) * std::max(factor, 0.0));
    }
    emit(trace::Event{trace::Kind::faultService, trace::Category::fault,
                      "fault_service", eq_.curTick(), latency,
                      batch.size(), 0, batch.front()},
         batch.front());
    eq_.scheduleAfter(latency, [this, batch = std::move(batch)]() {
        serviceBatch(batch);
    });
}

void
Gmmu::serviceBatch(const std::vector<PageNum> &batch)
{
    ++fault_services_;
    for (PageNum page : batch)
        serviceFault(page);
    audit("fault-service");
    engine_busy_ = false;
    kickFaultEngine();
}

void
Gmmu::serviceFault(PageNum page)
{
    TenantId tenant = tenants_.tenantOf(page);
    last_tenant_ = tenant;

    // The paper's over-subscription trigger: once occupancy reaches
    // capacity (minus any free-page buffer), the aggressive
    // prefetcher is replaced *before* the next migration decision.
    // Each tenant evaluates the latch at its own fault service, so a
    // tenant arriving after another filled the device switches on its
    // own observation of the pressure, not on the first tenant's.
    if (!tenant_oversub_[tenant] &&
        frames_.freeFrames() <= config_.free_buffer_pages)
        enterOversubscription(tenant);

    LargePageTree *tree = tenants_.treeFor(page);
    if (!tree)
        panic("far-fault on unmanaged page %llu",
              static_cast<unsigned long long>(page));

    if (tree->pageMarked(page)) {
        // Another fault's prefetch already scheduled (or completed)
        // this page; the MSHR wakes the waiters when it lands.
        ++skipped_services_;
    } else {
        ++far_faults_;
        if (!tenant_stats_.empty())
            ++tenant_stats_[tenant]->far_faults;
        std::vector<PageNum> pages =
            activePrefetcher(tenant).selectPages(page, *tree, rng_);

        // A single migration may never exceed half the device memory:
        // an aggressive prefetch decision is trimmed to the pages
        // nearest the fault (the driver equivalent of throttling
        // prefetch under memory pressure).
        const std::uint64_t limit =
            std::max<std::uint64_t>(1, frames_.totalFrames() / 2);
        if (pages.size() > limit) {
            std::stable_sort(pages.begin(), pages.end(),
                             [page](PageNum a, PageNum b) {
                                 auto da = a > page ? a - page : page - a;
                                 auto db = b > page ? b - page : page - b;
                                 return da < db;
                             });
            for (std::size_t i = limit; i < pages.size(); ++i)
                tree->unmarkPage(pages[i]);
            pages.resize(limit);
            std::sort(pages.begin(), pages.end());
            ++prefetches_trimmed_;
        }

        emit(trace::Event{trace::Kind::prefetchDecision,
                          trace::Category::prefetch, "prefetch_decision",
                          eq_.curTick(), 0, pages.size(),
                          pages.size() * pageSize, page},
             page);
        scheduleMigration(std::move(pages), page);
    }
}

void
Gmmu::prefetchRange(Addr base, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    PageNum first = pageOf(base);
    PageNum last = pageOf(base + bytes - 1);

    std::vector<PageNum> batch;
    auto flush = [&]() {
        if (batch.empty())
            return;
        user_prefetched_pages_ += batch.size();
        emit(trace::Event{trace::Kind::userPrefetch,
                          trace::Category::migration, "user_prefetch",
                          eq_.curTick(), 0, batch.size(),
                          batch.size() * pageSize, batch.front()},
             batch.front());
        scheduleMigration(std::move(batch), std::nullopt);
        batch.clear();
    };

    // Chunk like the driver's async copies: within one 2MB large
    // page, and never a single batch larger than a quarter of device
    // memory (so an oversized prefetch can recycle frames by evicting
    // its own already-landed head).
    const std::uint64_t max_batch = std::max<std::uint64_t>(
        pagesPerBasicBlock,
        std::min<std::uint64_t>(pagesPerLargePage,
                                frames_.totalFrames() / 4));

    last_tenant_ = tenants_.tenantOf(first);
    for (PageNum p = first; p <= last; ++p) {
        LargePageTree *tree = tenants_.treeFor(p);
        if (!tree || tree->pageMarked(p) || page_table_.isValid(p))
            continue;
        if (!batch.empty() &&
            (batch.size() >= max_batch ||
             largePageOf(pageBase(p)) !=
                 largePageOf(pageBase(batch.back()))))
            flush();
        tree->markPage(p);
        batch.push_back(p);
    }
    flush();
    audit("user-prefetch");
}

void
Gmmu::scheduleMigration(std::vector<PageNum> pages,
                        std::optional<PageNum> faulty)
{
    if (pages.empty())
        panic("empty migration set");

    DTRACE("GMMU", "migrating %zu pages (fault %lld)", pages.size(),
           faulty ? static_cast<long long>(*faulty) : -1ll);
    emit(trace::Event{trace::Kind::migrationStart,
                      trace::Category::migration, "migration_start",
                      eq_.curTick(), 0, pages.size(),
                      pages.size() * pageSize, faulty ? *faulty : 0},
         pages.front());
    pages_migrated_ += pages.size();
    pages_prefetched_ += pages.size() - (faulty ? 1 : 0);
    TenantId tenant = tenants_.tenantOf(pages.front());
    if (!tenant_stats_.empty())
        tenant_stats_[tenant]->pages_migrated += pages.size();
    for (PageNum p : pages) {
        ManagedAllocation *alloc = tenants_.allocationFor(p);
        if (alloc && alloc->everEvicted(p))
            ++pages_thrashed_;
        // Every in-flight page gets an MSHR entry (the faulting page
        // already has one): later faults merge and eviction can tell
        // the page is in flight.
        if (!mshr_.isPending(p)) {
            mshr_.registerPrefetch(p);
            mshrEnter(p);
        }
    }

    const std::uint64_t num_pages = pages.size();
    ensureFrames(num_pages, tenant,
                 [this, pages = std::move(pages), faulty]
                 (std::vector<FrameNum> granted) {
        // Pair page[i] with granted[i], then cut the ascending page
        // list into transfers: the faulting page goes alone and first
        // (the "page fault group"), every other maximal contiguous run
        // is one grouped "prefetch group" transfer.
        struct Run
        {
            std::vector<PageNum> pages;
            std::vector<FrameNum> frames;
        };
        std::vector<Run> runs;
        Run fault_run;
        for (std::size_t i = 0; i < pages.size(); ++i) {
            if (faulty && pages[i] == *faulty) {
                fault_run.pages.push_back(pages[i]);
                fault_run.frames.push_back(granted[i]);
                continue;
            }
            // Contiguity naturally breaks across the hole left by the
            // fault-page cut, because the fault page is not in `runs`.
            bool extend = !runs.empty() &&
                          runs.back().pages.back() + 1 == pages[i] &&
                          !(faulty && pages[i] == *faulty + 1);
            if (!extend)
                runs.emplace_back();
            runs.back().pages.push_back(pages[i]);
            runs.back().frames.push_back(granted[i]);
        }

        frames_in_transit_ += granted.size();
        auto launch = [this](Run run) {
            std::uint64_t bytes = run.pages.size() * pageSize;
            auto arrive = [this, run = std::move(run)]() {
                for (std::size_t i = 0; i < run.pages.size(); ++i) {
                    page_table_.mapPage(run.pages[i], run.frames[i]);
                    trackerFor(run.pages[i]).onResident(run.pages[i]);
                }
                frames_in_transit_ -= run.pages.size();
                migrationArrived(run.pages);
                // Newly resident pages may unblock queued frame
                // requests that had nothing evictable before.
                pumpFrameQueue();
                audit("migration-arrival");
            };
            pcie_.transfer(PcieDir::hostToDevice, bytes, std::move(arrive));
        };

        if (!fault_run.pages.empty())
            launch(std::move(fault_run));
        for (auto &run : runs)
            launch(std::move(run));
    });
}

void
Gmmu::migrationArrived(const std::vector<PageNum> &pages)
{
    emit(trace::Event{trace::Kind::migrationArrived,
                      trace::Category::migration, "migration_arrived",
                      eq_.curTick(), 0, pages.size(),
                      pages.size() * pageSize, pages.front()},
         pages.front());
    for (PageNum p : pages) {
        mshrExit(p);
        auto waiters = mshr_.complete(p);
        for (auto &w : waiters)
            w();
    }
}

void
Gmmu::ensureFrames(std::uint64_t pages, TenantId tenant,
                   std::function<void(std::vector<FrameNum>)> grant)
{
    if (pages > frames_.totalFrames()) {
        fatal("migration of %llu pages exceeds device memory of %llu "
              "frames",
              static_cast<unsigned long long>(pages),
              static_cast<unsigned long long>(frames_.totalFrames()));
    }
    frame_requests_.push_back(FrameRequest{pages, tenant,
                                           std::move(grant)});
    pumpFrameQueue();
}

void
Gmmu::pumpFrameQueue()
{
    while (!frame_requests_.empty()) {
        FrameRequest &req = frame_requests_.front();
        last_tenant_ = req.tenant;
        if (frames_.freeFrames() >= req.pages) {
            std::vector<FrameNum> granted;
            granted.reserve(req.pages);
            for (std::uint64_t i = 0; i < req.pages; ++i)
                granted.push_back(*frames_.allocate());
            auto grant = std::move(req.grant);
            frame_requests_.pop_front();
            grant(std::move(granted));
            continue;
        }
        // Short on frames: this is the over-subscription moment for
        // the requesting tenant.
        if (!tenant_oversub_[req.tenant])
            enterOversubscription(req.tenant);
        if (frames_.freeFrames() + pending_free_frames_ < req.pages) {
            if (!evictUntil(req.pages, req.tenant) &&
                pending_free_frames_ == 0 &&
                frames_in_transit_ == 0) {
                fatal("device memory exhausted and nothing evictable "
                      "(need %llu frames)",
                      static_cast<unsigned long long>(req.pages));
            }
        }
        // Clean 4KB victims free their frames synchronously; retry
        // the request before deciding to wait.
        if (frames_.freeFrames() >= req.pages)
            continue;
        // Wait for in-flight write-backs; completions re-pump.
        break;
    }
    maintainFreeBuffer();
}

void
Gmmu::enterOversubscription(TenantId tenant)
{
    if (tenant_oversub_[tenant])
        return;
    tenant_oversub_[tenant] = 1;
    if (!tenant_stats_.empty()) {
        tenant_stats_[tenant]->oversubscribed_at_us.set(
            ticksToMicroseconds(eq_.curTick()));
    }
    if (!oversubscribed_) {
        oversubscribed_ = true;
        oversubscribed_at_us_.set(ticksToMicroseconds(eq_.curTick()));
    }
    trace::Event latched{trace::Kind::oversubscribed,
                         trace::Category::eviction, "oversubscribed",
                         eq_.curTick(), 0, 0, 0, tenant};
    latched.tenant = tenant;
    emit(latched);
    DTRACE("GMMU", "over-subscription latched for tenant %u at %.1f us",
           tenant, ticksToMicroseconds(eq_.curTick()));
}

void
Gmmu::maintainFreeBuffer()
{
    if (config_.free_buffer_pages == 0)
        return;
    if (frames_.freeFrames() + pending_free_frames_ >=
        config_.free_buffer_pages)
        return;
    // The buffer cannot be maintained without eviction: the threshold
    // pre-eviction latch also disables the aggressive prefetcher
    // (paper Sec. 4.2).
    if (!tenant_oversub_[last_tenant_] &&
        frames_.usedFrames() + pending_free_frames_ +
                config_.free_buffer_pages >=
            frames_.totalFrames()) {
        enterOversubscription(last_tenant_);
    }
    if (oversubscribed_)
        evictUntil(config_.free_buffer_pages, last_tenant_);
}

TenantId
Gmmu::pickVictimTenant(TenantId requester) const
{
    // Work-conserving quota arbitration: the tenant furthest above its
    // frame entitlement pays.  Entitlements are an even split for
    // staticQuota and footprint-proportional for proportionalShare
    // (recomputed per reclaim; footprints are stable by then and the
    // tenant count is small).
    const std::uint32_t n = static_cast<std::uint32_t>(residency_.size());
    std::uint64_t total = frames_.totalFrames();
    std::uint64_t total_padded = tenants_.totalPaddedBytes();

    TenantId best = requester;
    bool have_best = false;
    std::int64_t best_over = 0;
    TenantId largest = requester;
    std::uint64_t largest_size = 0;

    for (TenantId t = 0; t < n; ++t) {
        std::uint64_t resident = residency_[t].size();
        if (resident == 0)
            continue;
        std::uint64_t entitlement;
        if (config_.tenant_eviction ==
                TenantEvictionKind::proportionalShare &&
            total_padded > 0) {
            entitlement = static_cast<std::uint64_t>(
                static_cast<unsigned __int128>(total) *
                tenants_.space(t).totalPaddedBytes() / total_padded);
        } else {
            entitlement = total / n + (t < total % n ? 1 : 0);
        }
        std::int64_t over = static_cast<std::int64_t>(resident) -
                            static_cast<std::int64_t>(entitlement);
        if (!have_best || over > best_over) {
            best = t;
            best_over = over;
            have_best = true;
        }
        if (resident > largest_size) {
            largest = t;
            largest_size = resident;
        }
    }
    if (have_best && best_over > 0)
        return best;
    // Nobody over entitlement: the requester reclaims from itself when
    // it can, otherwise from the largest resident set.
    if (requester < n && residency_[requester].size() > 0)
        return requester;
    return largest;
}

bool
Gmmu::evictUntil(std::uint64_t target_frames, TenantId requester)
{
    const std::uint32_t trackers =
        static_cast<std::uint32_t>(residency_.size());
    while (frames_.freeFrames() + pending_free_frames_ < target_frames) {
        // The arbiter's pick goes first; the remaining trackers serve
        // as deterministic fallbacks so reclaim cannot stall on one
        // empty (or unevictable) tenant while others hold frames.
        std::uint32_t primary =
            trackers > 1 ? pickVictimTenant(requester) : 0;
        std::vector<PageNum> victims;
        std::uint64_t reserve = 0;
        std::uint32_t chosen = primary;
        for (std::uint32_t k = 0; k < trackers && victims.empty(); ++k) {
            std::uint32_t ti = (primary + k) % trackers;
            ResidencyTracker &tracker = residency_[ti];
            reserve = static_cast<std::uint64_t>(
                config_.lru_reserve_fraction *
                static_cast<double>(tracker.size()));
            EvictionContext ctx{tracker, tenants_, rng_, reserve};
            victims = eviction_->selectVictims(ctx);
            if (victims.empty() && reserve > 0) {
                ctx.reserve_pages = 0;
                reserve = 0;
                victims = eviction_->selectVictims(ctx);
            }
            if (!victims.empty())
                chosen = ti;
        }
        if (victims.empty())
            return false;
        emit(trace::Event{trace::Kind::evictionSelect,
                          trace::Category::eviction, "victim_select",
                          eq_.curTick(), 0, victims.size(), 0,
                          victims.front()},
             victims.front());
        if (auditor_) {
            auditor_->checkVictims("victim-selection", eviction_->kind(),
                                   victims, reserve, chosen);
        }
        if (applyEviction(victims, requester) == 0)
            return false; // no progress; avoid spinning
    }
    return true;
}

std::uint64_t
Gmmu::applyEviction(const std::vector<PageNum> &victims,
                    TenantId requester)
{
    struct Victim
    {
        PageNum page;
        FrameNum frame;
        bool dirty;
    };
    std::vector<Victim> evicted;
    evicted.reserve(victims.size());

    for (PageNum p : victims) {
        if (!page_table_.isValid(p)) {
            // TBNe's tree drain can select pages whose migration is
            // still in flight; restore their to-be-valid marks and
            // leave them alone.
            if (mshr_.isPending(p)) {
                if (LargePageTree *tree = tenants_.treeFor(p)) {
                    if (!tree->pageMarked(p))
                        tree->markPage(p);
                }
            }
            continue;
        }
        bool dirty = page_table_.isDirty(p);
        FrameNum frame = page_table_.invalidatePage(p);
        if (tlb_shootdown_)
            tlb_shootdown_(p);
        trackerFor(p).onEvicted(p);
        if (LargePageTree *tree = tenants_.treeFor(p))
            tree->unmarkPage(p);
        if (ManagedAllocation *alloc = tenants_.allocationFor(p))
            alloc->noteEvicted(p);
        ++pages_evicted_;
        if (!tenant_stats_.empty()) {
            TenantId owner = tenants_.tenantOf(p);
            ++tenant_stats_[owner]->pages_evicted;
            if (owner != requester)
                ++tenant_stats_[owner]->pages_evicted_cross;
        }
        DTRACE("Evict", "evicting page %llu (%s)",
               static_cast<unsigned long long>(p),
               dirty ? "dirty" : "clean");
        evicted.push_back(Victim{p, frame, dirty});
    }

    if (evicted.empty())
        return 0;

    emit(trace::Event{trace::Kind::evictionDrain,
                      trace::Category::eviction, "eviction_drain",
                      eq_.curTick(), 0, evicted.size(),
                      evicted.size() * pageSize, evicted.front().page},
         evicted.front().page);

    auto writeBack = [this](std::vector<FrameNum> frames,
                            std::uint64_t num_pages) {
        pages_written_back_ += num_pages;
        pending_free_frames_ += frames.size();
        pcie_.transfer(PcieDir::deviceToHost, num_pages * pageSize,
                       [this, frames = std::move(frames)]() {
                           for (FrameNum f : frames)
                               frames_.free(f);
                           pending_free_frames_ -= frames.size();
                           pumpFrameQueue();
                       });
    };

    if (eviction_->writesBackWholeUnits() && config_.whole_unit_writeback) {
        // Contiguous victim pages group into single write-back
        // transfers (paper Sec. 5.1: the whole 64KB unit goes back
        // regardless of which pages are dirty).
        std::size_t i = 0;
        while (i < evicted.size()) {
            std::size_t j = i + 1;
            while (j < evicted.size() &&
                   evicted[j].page == evicted[j - 1].page + 1)
                ++j;
            std::vector<FrameNum> frames;
            frames.reserve(j - i);
            for (std::size_t k = i; k < j; ++k)
                frames.push_back(evicted[k].frame);
            writeBack(std::move(frames), j - i);
            i = j;
        }
    } else {
        // 4KB policies: dirty pages round-trip through the write-back
        // channel; clean frames are reusable immediately.
        for (const Victim &v : evicted) {
            if (v.dirty)
                writeBack({v.frame}, 1);
            else
                frames_.free(v.frame);
        }
    }
    audit("eviction-drain");
    return evicted.size();
}

void
Gmmu::registerStats(stats::StatRegistry &registry)
{
    registry.add(&far_faults_);
    registry.add(&fault_services_);
    registry.add(&skipped_services_);
    registry.add(&prefetches_trimmed_);
    registry.add(&pages_migrated_);
    registry.add(&pages_prefetched_);
    registry.add(&pages_evicted_);
    registry.add(&pages_written_back_);
    registry.add(&pages_thrashed_);
    registry.add(&walk_count_);
    registry.add(&walk_queue_delay_ns_);
    registry.add(&mshr_stalls_);
    registry.add(&user_prefetched_pages_);
    registry.add(&oversubscribed_at_us_);
    registry.add(&audit_checks_);
    for (auto &ts : tenant_stats_) {
        registry.add(&ts->far_faults);
        registry.add(&ts->pages_migrated);
        registry.add(&ts->pages_evicted);
        registry.add(&ts->pages_evicted_cross);
        registry.add(&ts->mshr_pending_peak);
        registry.add(&ts->oversubscribed_at_us);
    }
    mshr_.registerStats(registry);
}

} // namespace uvmsim
