#include "auditor.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

/** printf-append into a std::string. */
void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

} // namespace

SimAuditor::SimAuditor(const ManagedSpace &space,
                       const ResidencyTracker &residency,
                       const PageTable &page_table,
                       const FrameAllocator &frames,
                       const FarFaultMshr &mshr)
    : spaces_{&space},
      trackers_{&residency},
      page_table_(page_table),
      frames_(frames),
      mshr_(mshr)
{
}

SimAuditor::SimAuditor(const TenantSet &tenants,
                       const std::vector<ResidencyTracker> &trackers,
                       const PageTable &page_table,
                       const FrameAllocator &frames,
                       const FarFaultMshr &mshr)
    : page_table_(page_table), frames_(frames), mshr_(mshr)
{
    for (TenantId t = 0; t < tenants.numTenants(); ++t)
        spaces_.push_back(&tenants.space(t));
    for (const ResidencyTracker &tracker : trackers)
        trackers_.push_back(&tracker);
}

const ResidencyTracker &
SimAuditor::trackerFor(PageNum page) const
{
    if (trackers_.size() == 1)
        return *trackers_.front();
    TenantId t = tenantOfPage(page);
    return *trackers_[t < trackers_.size() ? t : 0];
}

const ManagedSpace &
SimAuditor::spaceFor(PageNum page) const
{
    if (spaces_.size() == 1)
        return *spaces_.front();
    TenantId t = tenantOfPage(page);
    return *spaces_[t < spaces_.size() ? t : 0];
}

std::uint64_t
SimAuditor::residencySize() const
{
    std::uint64_t total = 0;
    for (const ResidencyTracker *tracker : trackers_)
        total += tracker->size();
    return total;
}

std::string
SimAuditor::pageState(PageNum page) const
{
    std::string out;
    appendf(out, "  page       : %llu (va 0x%llx)\n",
            static_cast<unsigned long long>(page),
            static_cast<unsigned long long>(pageBase(page)));

    const Pte *pte = page_table_.lookup(page);
    if (pte) {
        appendf(out,
                "  page table : valid=%d dirty=%d accessed=%d frame=%lld\n",
                pte->valid ? 1 : 0, pte->dirty ? 1 : 0,
                pte->accessed ? 1 : 0,
                pte->frame == invalidFrame
                    ? -1ll
                    : static_cast<long long>(pte->frame));
    } else {
        appendf(out, "  page table : no entry\n");
    }

    appendf(out, "  residency  : tracked=%s (size %llu of %llu)\n",
            trackerFor(page).isTracked(page) ? "yes" : "no",
            static_cast<unsigned long long>(trackerFor(page).size()),
            static_cast<unsigned long long>(residencySize()));
    appendf(out, "  mshr       : in-flight=%s (pending pages %zu)\n",
            mshr_.isPending(page) ? "yes" : "no", mshr_.pendingPages());

    LargePageTree *tree = spaceFor(page).treeFor(page);
    if (tree) {
        std::uint32_t leaf = tree->leafOf(page);
        appendf(out,
                "  tree       : base=0x%llx leaves=%u leaf=%u marked=%s "
                "leaf_pages=%u/%llu total_marked=%llu pages\n",
                static_cast<unsigned long long>(tree->baseAddr()),
                tree->numLeaves(), leaf,
                tree->pageMarked(page) ? "yes" : "no",
                tree->leafMarkedPages(leaf),
                static_cast<unsigned long long>(pagesPerBasicBlock),
                static_cast<unsigned long long>(tree->totalMarkedBytes() /
                                                pageSize));
        // The leaf's page bitmap, lowest page first.
        std::string bits;
        PageNum first = tree->leafFirstPage(leaf);
        for (std::uint64_t p = 0; p < pagesPerBasicBlock; ++p)
            bits += tree->pageMarked(first + p) ? '1' : '0';
        appendf(out, "  leaf bitmap: %s (page %llu..%llu)\n", bits.c_str(),
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(first + pagesPerBasicBlock -
                                                1));
    } else {
        appendf(out, "  tree       : page is unmanaged\n");
    }
    return out;
}

std::string
SimAuditor::globalState(const Transients &transients) const
{
    std::string out;
    appendf(out,
            "  counts     : pt.valid=%llu residency=%llu mshr=%zu "
            "frames{free=%llu used=%llu total=%llu} in_transit=%llu "
            "pending_free=%llu\n",
            static_cast<unsigned long long>(page_table_.validPages()),
            static_cast<unsigned long long>(residencySize()),
            mshr_.pendingPages(),
            static_cast<unsigned long long>(frames_.freeFrames()),
            static_cast<unsigned long long>(frames_.usedFrames()),
            static_cast<unsigned long long>(frames_.totalFrames()),
            static_cast<unsigned long long>(transients.frames_in_transit),
            static_cast<unsigned long long>(
                transients.pending_free_frames));

    for (std::size_t ti = 0; ti < trackers_.size(); ++ti) {
        const ResidencyTracker &tracker = *trackers_[ti];
        std::vector<PageNum> cold = tracker.coldPages(16);
        if (trackers_.size() == 1)
            appendf(out, "  lru cold   :");
        else
            appendf(out, "  lru cold %zu :", ti);
        for (PageNum p : cold)
            appendf(out, " %llu", static_cast<unsigned long long>(p));
        if (tracker.size() > cold.size())
            appendf(out, " ... (%llu more)",
                    static_cast<unsigned long long>(tracker.size() -
                                                    cold.size()));
        appendf(out, "\n");
    }
    return out;
}

void
SimAuditor::fail(const char *context, const char *invariant,
                 const std::string &detail)
{
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        std::fprintf(stderr,
                     "==== SimAuditor violation ====\n"
                     "  context    : %s\n"
                     "  invariant  : %s\n"
                     "%s"
                     "==============================\n",
                     context, invariant, detail.c_str());
        std::fflush(stderr);
    }
    panic("SimAuditor: %s (context: %s)", invariant, context);
}

void
SimAuditor::checkAll(const char *context, const Transients &transients)
{
    ++checks_;

    // 1. Each subsystem's own internal bookkeeping.
    for (const ResidencyTracker *tracker : trackers_) {
        if (!tracker->checkConsistent())
            fail(context, "ResidencyTracker::checkConsistent failed",
                 globalState(transients));
    }

    // 2. Every tree-marked page is valid XOR in-flight, and every
    //    valid page is tracked.
    for (const ManagedSpace *space : spaces_)
    for (const auto &alloc : space->allocations()) {
        for (const auto &tree : alloc->trees()) {
            if (!tree->checkConsistent()) {
                std::string detail;
                appendf(detail,
                        "  tree       : base=0x%llx (allocation '%s') "
                        "failed checkConsistent\n",
                        static_cast<unsigned long long>(tree->baseAddr()),
                        alloc->name().c_str());
                detail += globalState(transients);
                fail(context, "LargePageTree::checkConsistent failed",
                     detail);
            }
            for (PageNum page : tree->markedPages()) {
                bool valid = page_table_.isValid(page);
                bool pending = mshr_.isPending(page);
                if (valid && pending) {
                    fail(context, "page both valid and in-flight",
                         pageState(page) + globalState(transients));
                }
                if (!valid && !pending) {
                    fail(context,
                         "tree-marked page neither valid nor in-flight",
                         pageState(page) + globalState(transients));
                }
                if (valid && !trackerFor(page).isTracked(page)) {
                    fail(context, "valid page missing from residency LRU",
                         pageState(page) + globalState(transients));
                }
            }
        }
    }

    // 3. Every tracked page is valid, marked, and holds a distinct
    //    allocated frame.
    std::unordered_map<FrameNum, PageNum> frame_owner;
    for (std::size_t ti = 0; ti < trackers_.size(); ++ti) {
    for (PageNum page : trackers_[ti]->coldPages(trackers_[ti]->size())) {
        if (trackers_.size() > 1 && tenantOfPage(page) != ti) {
            // Per-tenant frame accounting: a page's recency state must
            // live in its owning tenant's tracker, or quota arbitration
            // charges the wrong tenant.
            fail(context, "resident page tracked under the wrong tenant",
                 pageState(page) + globalState(transients));
        }
        if (!page_table_.isValid(page)) {
            fail(context, "residency-tracked page not valid in page table",
                 pageState(page) + globalState(transients));
        }
        LargePageTree *tree = spaceFor(page).treeFor(page);
        if (!tree) {
            fail(context, "residency-tracked page is unmanaged",
                 pageState(page) + globalState(transients));
        }
        if (!tree->pageMarked(page)) {
            fail(context, "resident page not marked in its tree",
                 pageState(page) + globalState(transients));
        }

        const Pte *pte = page_table_.lookup(page);
        if (pte->frame == invalidFrame ||
            pte->frame >= frames_.totalFrames()) {
            fail(context, "valid page maps an out-of-range frame",
                 pageState(page) + globalState(transients));
        }
        if (!frames_.isAllocated(pte->frame)) {
            fail(context, "valid page maps an unallocated frame",
                 pageState(page) + globalState(transients));
        }
        auto [it, inserted] = frame_owner.emplace(pte->frame, page);
        if (!inserted) {
            std::string detail = pageState(page);
            appendf(detail, "  also mapped by:\n");
            detail += pageState(it->second);
            detail += globalState(transients);
            fail(context, "frame mapped by two valid pages", detail);
        }
    }
    }

    // 4. Aggregate counts agree across the subsystems (per-tenant
    //    resident counts must sum to the page table's valid count).
    if (page_table_.validPages() != residencySize()) {
        fail(context, "page-table valid count != residency size",
             globalState(transients));
    }

    // 5. Every in-flight page is non-valid and managed.
    for (PageNum page : mshr_.pendingPageList()) {
        if (page_table_.isValid(page)) {
            fail(context, "MSHR-pending page already valid",
                 pageState(page) + globalState(transients));
        }
        if (!spaceFor(page).treeFor(page)) {
            fail(context, "MSHR-pending page is unmanaged",
                 pageState(page) + globalState(transients));
        }
    }

    // 6. Frame accounting closes: every used frame is either backing a
    //    valid page, granted to an in-transit migration, or waiting
    //    for its eviction write-back to land.
    if (frames_.usedFrames() != page_table_.validPages() +
                                    transients.frames_in_transit +
                                    transients.pending_free_frames) {
        fail(context, "frame accounting does not close",
             globalState(transients));
    }
}

void
SimAuditor::checkVictims(const char *context, EvictionKind kind,
                         const std::vector<PageNum> &victims,
                         std::uint64_t reserve_pages,
                         std::uint32_t tracker)
{
    ++victim_checks_;
    const ResidencyTracker &selector =
        *trackers_[tracker < trackers_.size() ? tracker : 0];

    auto describe = [&](PageNum offender) {
        std::string detail;
        appendf(detail, "  policy     : %s (reserve %llu pages)\n",
                toString(kind).c_str(),
                static_cast<unsigned long long>(reserve_pages));
        appendf(detail, "  victims    :");
        for (PageNum v : victims)
            appendf(detail, " %llu%s",
                    static_cast<unsigned long long>(v),
                    v == offender ? "*" : "");
        appendf(detail, "\n");
        detail += pageState(offender);
        detail += globalState(Transients{});
        return detail;
    };

    for (std::size_t i = 0; i < victims.size(); ++i) {
        PageNum v = victims[i];
        if (i > 0 && v == victims[i - 1])
            fail(context, "duplicate eviction victim", describe(v));
        if (i > 0 && v < victims[i - 1])
            fail(context, "eviction victims not ascending", describe(v));

        if (!selector.isTracked(v)) {
            // TBNe's drain may legitimately select in-flight pages;
            // the GMMU filters them and restores their marks.
            bool inflight_ok =
                kind == EvictionKind::treeBasedNeighborhood &&
                mshr_.isPending(v);
            if (!inflight_ok)
                fail(context, "non-resident eviction victim", describe(v));
        }
    }

    // The flat LRU policy defines its reservation directly on the
    // page-granular LRU order: no victim may come from the reserved
    // cold prefix.  (Block policies skip in whole-unit granules and
    // Re/MRU ignore the reservation by design.)
    if (kind == EvictionKind::lru4k && reserve_pages > 0) {
        std::vector<PageNum> protected_pages =
            selector.coldPages(reserve_pages);
        for (PageNum v : victims) {
            if (std::find(protected_pages.begin(), protected_pages.end(),
                          v) != protected_pages.end())
                fail(context, "eviction victim inside reserved LRU prefix",
                     describe(v));
        }
    }
}

} // namespace uvmsim
