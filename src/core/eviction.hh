/**
 * @file
 * Page replacement / pre-eviction policies (paper Secs. 4.2, 5, 7.5).
 *
 * A policy produces one eviction "unit" per call -- a 4KB page for the
 * traditional policies, a 64KB basic block for SLe, a tree-balanced
 * set of blocks for TBNe, or a whole 2MB large page for LRU-2MB.  The
 * GMMU keeps calling until it has freed enough frames.
 *
 * Victim recency comes from the ResidencyTracker; TBNe additionally
 * mutates the allocation's LargePageTree (its drain *is* the selection
 * algorithm).  Applying the eviction -- invalidating PTEs, shooting
 * down TLBs, scheduling write-backs -- is the GMMU's job.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policies.hh"
#include "core/residency_tracker.hh"
#include "core/tenant.hh"
#include "mem/types.hh"
#include "sim/rng.hh"

namespace uvmsim
{

/** Everything a policy may consult when choosing victims. */
struct EvictionContext
{
    /**
     * The recency order to pick from.  Under per-tenant tracking the
     * GMMU's cross-tenant arbiter has already chosen the victim
     * tenant; this is that tenant's tracker.
     */
    ResidencyTracker &residency;
    /** Page-to-tree lookup across every tenant (TBNe's drain). */
    TenantSet &space;
    Rng &rng;
    /** Pages at the cold end of the LRU protected from eviction. */
    std::uint64_t reserve_pages = 0;
};

/** Strategy interface for victim selection. */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    /** Display name ("LRU4K", "Re", "SLe", "TBNe", "LRU2MB"). */
    virtual std::string name() const = 0;

    /** The kind this instance implements. */
    virtual EvictionKind kind() const = 0;

    /**
     * Whether eviction write-backs cover whole selected units
     * regardless of dirtiness (true for the block/tree policies per
     * paper Sec. 5.1; the 4KB policies write back dirty pages only).
     */
    virtual bool writesBackWholeUnits() const = 0;

    /**
     * Select the next eviction unit.
     *
     * @return Candidate pages in ascending order; empty when nothing
     *         is evictable under the context's reservation (the caller
     *         retries with reserve_pages = 0 before giving up).
     */
    virtual std::vector<PageNum> selectVictims(EvictionContext &ctx) = 0;
};

/** Traditional 4KB LRU replacement. */
class Lru4kEviction : public EvictionPolicy
{
  public:
    std::string name() const override { return "LRU4K"; }
    EvictionKind kind() const override { return EvictionKind::lru4k; }
    bool writesBackWholeUnits() const override { return false; }
    std::vector<PageNum> selectVictims(EvictionContext &ctx) override;
};

/** Re: uniformly random 4KB page replacement. */
class Random4kEviction : public EvictionPolicy
{
  public:
    std::string name() const override { return "Re"; }
    EvictionKind kind() const override { return EvictionKind::random4k; }
    bool writesBackWholeUnits() const override { return false; }
    std::vector<PageNum> selectVictims(EvictionContext &ctx) override;
};

/**
 * SLe: pick the LRU candidate hierarchically, then evict its entire
 * 64KB basic block as one unit (paper Sec. 5.1).
 */
class SequentialLocalEviction : public EvictionPolicy
{
  public:
    std::string name() const override { return "SLe"; }
    EvictionKind
    kind() const override
    {
        return EvictionKind::sequentialLocal;
    }
    bool writesBackWholeUnits() const override { return true; }
    std::vector<PageNum> selectVictims(EvictionContext &ctx) override;
};

/**
 * TBNe: evict the LRU candidate's basic block, then rebalance the
 * large-page tree, draining ancestors below 50% occupancy (paper
 * Sec. 5.2).  Adaptive granularity between 64KB and 1MB.
 */
class TreeBasedEviction : public EvictionPolicy
{
  public:
    std::string name() const override { return "TBNe"; }
    EvictionKind
    kind() const override
    {
        return EvictionKind::treeBasedNeighborhood;
    }
    bool writesBackWholeUnits() const override { return true; }
    std::vector<PageNum> selectVictims(EvictionContext &ctx) override;
};

/** Static 2MB large-page LRU eviction (paper Sec. 7.5). */
class Lru2mbEviction : public EvictionPolicy
{
  public:
    std::string name() const override { return "LRU2MB"; }
    EvictionKind kind() const override { return EvictionKind::lru2mb; }
    bool writesBackWholeUnits() const override { return true; }
    std::vector<PageNum> selectVictims(EvictionContext &ctx) override;
};

/**
 * MRU 4KB eviction: the classic alternative the paper's Sec. 5.3
 * mentions for repetitive linear access patterns (evicting the most
 * recently used page keeps the loop prefix resident).  Kept as the
 * ablation comparator to LRU-list reservation.
 */
class Mru4kEviction : public EvictionPolicy
{
  public:
    std::string name() const override { return "MRU4K"; }
    EvictionKind kind() const override { return EvictionKind::mru4k; }
    bool writesBackWholeUnits() const override { return false; }
    std::vector<PageNum> selectVictims(EvictionContext &ctx) override;
};

/** Factory for an eviction policy of the given kind. */
std::unique_ptr<EvictionPolicy> makeEvictionPolicy(EvictionKind kind);

} // namespace uvmsim
