#include "prefetcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

void
checkPreconditions(PageNum faulty_page, LargePageTree &tree)
{
    if (!tree.covers(faulty_page))
        panic("prefetcher: fault page %llu not covered by tree",
              static_cast<unsigned long long>(faulty_page));
    if (tree.pageMarked(faulty_page))
        panic("prefetcher: fault page %llu already to-be-valid",
              static_cast<unsigned long long>(faulty_page));
}

} // namespace

std::vector<PageNum>
NonePrefetcher::selectPages(PageNum faulty_page, LargePageTree &tree,
                            Rng &rng)
{
    (void)rng;
    checkPreconditions(faulty_page, tree);
    tree.markPage(faulty_page);
    return {faulty_page};
}

std::vector<PageNum>
RandomPrefetcher::selectPages(PageNum faulty_page, LargePageTree &tree,
                              Rng &rng)
{
    checkPreconditions(faulty_page, tree);
    tree.markPage(faulty_page);

    // Candidate pool: every unmarked page within the tree (the 2MB
    // large-page boundary, or the rounded remainder region).
    std::uint64_t total_pages = tree.capacityBytes() / pageSize;
    std::uint64_t marked_pages = tree.totalMarkedBytes() / pageSize;
    std::uint64_t invalid = total_pages - marked_pages;
    if (invalid == 0)
        return {faulty_page};

    // Pick the k-th unmarked page uniformly.
    std::uint64_t k = rng.below(invalid);
    PageNum first = pageOf(tree.baseAddr());
    for (PageNum p = first; p < first + total_pages; ++p) {
        if (tree.pageMarked(p))
            continue;
        if (k == 0) {
            tree.markPage(p);
            std::vector<PageNum> out{faulty_page, p};
            std::sort(out.begin(), out.end());
            return out;
        }
        --k;
    }
    panic("RandomPrefetcher: candidate scan fell through");
}

std::vector<PageNum>
SequentialLocalPrefetcher::selectPages(PageNum faulty_page,
                                       LargePageTree &tree, Rng &rng)
{
    (void)rng;
    checkPreconditions(faulty_page, tree);

    // Fill the unmarked remainder of the faulted basic block.
    std::uint32_t leaf = tree.leafOf(faulty_page);
    PageNum first = tree.leafFirstPage(leaf);
    std::vector<PageNum> out;
    for (std::uint64_t p = 0; p < pagesPerBasicBlock; ++p) {
        PageNum page = first + p;
        if (!tree.pageMarked(page)) {
            tree.markPage(page);
            out.push_back(page);
        }
    }
    return out;
}

std::vector<PageNum>
TreeBasedPrefetcher::selectPages(PageNum faulty_page, LargePageTree &tree,
                                 Rng &rng)
{
    (void)rng;
    checkPreconditions(faulty_page, tree);
    return tree.faultFill(faulty_page);
}

std::vector<PageNum>
SequentialGlobalPrefetcher::selectPages(PageNum faulty_page,
                                        LargePageTree &tree, Rng &rng)
{
    (void)rng;
    checkPreconditions(faulty_page, tree);
    tree.markPage(faulty_page);
    std::vector<PageNum> out{faulty_page};

    // Stream from the lowest invalid page of the region upward,
    // ignoring the fault position (Zheng et al.'s "sequential").
    PageNum first = pageOf(tree.baseAddr());
    PageNum end = pageOf(tree.endAddr() - 1) + 1;
    std::uint64_t taken = 0;
    for (PageNum p = first; p < end && taken < pages_per_fault_; ++p) {
        if (tree.pageMarked(p))
            continue;
        tree.markPage(p);
        out.push_back(p);
        ++taken;
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<PageNum>
ZhengLocalityPrefetcher::selectPages(PageNum faulty_page,
                                     LargePageTree &tree, Rng &rng)
{
    (void)rng;
    checkPreconditions(faulty_page, tree);
    std::vector<PageNum> out;

    // 128 consecutive pages starting at the fault, clamped to the
    // region end; already-valid pages in the run are skipped.
    PageNum end = pageOf(tree.endAddr() - 1) + 1;
    for (PageNum p = faulty_page;
         p < end && p < faulty_page + pages_per_fault_; ++p) {
        if (tree.pageMarked(p))
            continue;
        tree.markPage(p);
        out.push_back(p);
    }
    return out;
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::none:
        return std::make_unique<NonePrefetcher>();
      case PrefetcherKind::random:
        return std::make_unique<RandomPrefetcher>();
      case PrefetcherKind::sequentialLocal:
        return std::make_unique<SequentialLocalPrefetcher>();
      case PrefetcherKind::treeBasedNeighborhood:
        return std::make_unique<TreeBasedPrefetcher>();
      case PrefetcherKind::sequentialGlobal:
        return std::make_unique<SequentialGlobalPrefetcher>();
      case PrefetcherKind::zhengLocality:
        return std::make_unique<ZhengLocalityPrefetcher>();
    }
    panic("unknown PrefetcherKind");
}

} // namespace uvmsim
