/**
 * @file
 * Kernels and thread blocks.
 *
 * A Kernel is a lazy stream of ThreadBlocks; the GPU's dispatcher pulls
 * blocks as SMs free up, mirroring the hardware TB scheduler.  Each
 * ThreadBlock carries the warp traces that execute it.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpu/warp_trace.hh"

namespace uvmsim
{

/** One thread block ready for dispatch. */
struct ThreadBlock
{
    std::uint64_t id = 0;
    /** Which launch the block belongs to (set by the dispatcher). */
    std::uint64_t launch_seq = 0;
    std::vector<std::unique_ptr<WarpTrace>> warps;
};

/** A lazy stream of thread blocks. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Kernel name for tracing. */
    virtual std::string name() const = 0;

    /**
     * Produce the next thread block, or nullptr when the grid is
     * exhausted.
     */
    virtual std::unique_ptr<ThreadBlock> nextThreadBlock() = 0;
};

/**
 * A kernel defined by a grid size and a factory that builds the warp
 * traces of block `tb` on demand -- the form every workload generator
 * uses.
 */
class GridKernel : public Kernel
{
  public:
    /** Builds the warps of one thread block. */
    using BlockFactory = std::function<
        std::vector<std::unique_ptr<WarpTrace>>(std::uint64_t tb)>;

    GridKernel(std::string name, std::uint64_t num_blocks,
               BlockFactory factory)
        : name_(std::move(name)),
          num_blocks_(num_blocks),
          factory_(std::move(factory))
    {}

    std::string name() const override { return name_; }

    std::unique_ptr<ThreadBlock>
    nextThreadBlock() override
    {
        if (next_ >= num_blocks_)
            return nullptr;
        auto tb = std::make_unique<ThreadBlock>();
        tb->id = next_;
        tb->warps = factory_(next_);
        ++next_;
        return tb;
    }

  private:
    std::string name_;
    std::uint64_t num_blocks_;
    BlockFactory factory_;
    std::uint64_t next_ = 0;
};

} // namespace uvmsim
