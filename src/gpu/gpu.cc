#include "gpu.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace uvmsim
{

Gpu::Gpu(EventQueue &eq, const GpuConfig &config, Gmmu &gmmu)
    : eq_(eq),
      config_(config),
      gmmu_(gmmu),
      l2_(config.l2_bytes, config.l2_assoc, config.l2_line_bytes),
      dram_(eq, nanoseconds(config.dram_latency_ns),
            config.dram_bandwidth_gbps),
      kernels_("gpu.kernels", "kernels completed"),
      blocks_dispatched_("gpu.blocks_dispatched",
                         "thread blocks dispatched to SMs"),
      kernel_time_us_("gpu.kernel_time_us",
                      "accumulated kernel execution time (us)",
                      [this] {
                          return ticksToMicroseconds(total_kernel_ticks_);
                      })
{
    if (config_.num_sms == 0)
        fatal("GPU needs at least one SM");
    if (config_.max_concurrent_kernels == 0)
        fatal("GPU needs max_concurrent_kernels >= 1");
    sms_.reserve(config_.num_sms);
    for (std::uint32_t i = 0; i < config_.num_sms; ++i) {
        sms_.push_back(std::make_unique<Sm>(
            i, config_, eq_, gmmu_, l2_, dram_,
            [this](std::uint64_t seq) { onBlockDone(seq); }));
    }
    gmmu_.setTlbShootdown([this](PageNum page) { invalidatePage(page); });
}

Gpu::Launch *
Gpu::findLaunch(std::uint64_t launch_seq)
{
    for (auto &launch : launches_) {
        if (launch->seq == launch_seq)
            return launch.get();
    }
    return nullptr;
}

void
Gpu::launch(Kernel &kernel, std::function<void()> on_done)
{
    if (launches_.size() >= config_.max_concurrent_kernels)
        panic("kernel '%s' launched while %zu of %u launch slots are "
              "busy", kernel.name().c_str(), launches_.size(),
              config_.max_concurrent_kernels);

    DTRACE("GPU", "launching kernel '%s'", kernel.name().c_str());
    auto launch = std::make_unique<Launch>();
    launch->kernel = &kernel;
    launch->seq = next_launch_seq_++;
    launch->on_done = std::move(on_done);
    launch->start = eq_.curTick();
    std::uint64_t seq = launch->seq;
    launches_.push_back(std::move(launch));

    eq_.scheduleAfter(config_.kernel_launch_overhead, [this, seq]() {
        if (Launch *ln = findLaunch(seq))
            ln->started = true;
        dispatch();
        checkLaunchDone(seq);
    });
}

void
Gpu::dispatch()
{
    if (launches_.empty())
        return;

    // Round-robin over the live launches so concurrent tenants share
    // SM capacity fairly.  Stop once a full pass over the launches
    // placed nothing (`stalled` counts consecutive launches with no
    // dispatchable block) or the SMs fill up.
    std::size_t stalled = 0;
    while (stalled < launches_.size()) {
        if (launch_rr_ >= launches_.size())
            launch_rr_ = 0;
        Launch &ln = *launches_[launch_rr_];

        if (!ln.started) {
            ++launch_rr_;
            ++stalled;
            continue;
        }

        // Pull the next block (or use the one parked when no SM had
        // room on the previous round).
        if (!ln.pending && !ln.exhausted) {
            ln.pending = ln.kernel->nextThreadBlock();
            if (!ln.pending)
                ln.exhausted = true;
        }
        if (!ln.pending) {
            ++launch_rr_;
            ++stalled;
            continue;
        }

        auto warps = static_cast<std::uint32_t>(ln.pending->warps.size());
        if (warps > config_.max_warps_per_sm)
            fatal("thread block with %u warps exceeds the %u-warp SM "
                  "limit", warps, config_.max_warps_per_sm);

        // Round-robin placement so blocks spread across SMs.
        Sm *target = nullptr;
        for (std::uint32_t i = 0; i < config_.num_sms; ++i) {
            Sm &sm = *sms_[(rr_cursor_ + i) % config_.num_sms];
            if (sm.canAccept(warps)) {
                target = &sm;
                rr_cursor_ = (sm.id() + 1) % config_.num_sms;
                break;
            }
        }
        if (!target)
            return; // everything full; a draining block re-dispatches

        ln.pending->launch_seq = ln.seq;
        std::uint64_t first_id = next_warp_id_;
        next_warp_id_ += warps;
        ++blocks_dispatched_;
        ++ln.live_blocks;
        target->acceptBlock(std::move(ln.pending), first_id);
        ++launch_rr_;
        stalled = 0;
    }
}

void
Gpu::checkLaunchDone(std::uint64_t launch_seq)
{
    auto it = std::find_if(launches_.begin(), launches_.end(),
                           [launch_seq](const auto &launch) {
                               return launch->seq == launch_seq;
                           });
    if (it == launches_.end())
        return;
    Launch &ln = **it;
    if (!ln.started || !ln.exhausted || ln.pending || ln.live_blocks > 0)
        return;

    DTRACE("GPU", "kernel complete after %.1f us",
           ticksToMicroseconds(eq_.curTick() - ln.start));
    total_kernel_ticks_ += eq_.curTick() - ln.start;
    ++kernels_;
    auto done = std::move(ln.on_done);
    launches_.erase(it);
    if (launch_rr_ >= launches_.size())
        launch_rr_ = 0;
    if (done)
        done();
}

void
Gpu::onBlockDone(std::uint64_t launch_seq)
{
    if (Launch *ln = findLaunch(launch_seq)) {
        if (ln->live_blocks == 0)
            panic("block retired for launch %llu with none in flight",
                  static_cast<unsigned long long>(launch_seq));
        --ln->live_blocks;
    }
    dispatch();
    checkLaunchDone(launch_seq);
}

void
Gpu::invalidatePage(PageNum page)
{
    for (auto &sm : sms_) {
        sm->tlb().invalidate(page);
        if (L2Cache *l1 = sm->l1())
            l1->invalidatePage(page);
    }
    l2_.invalidatePage(page);
}

void
Gpu::registerStats(stats::StatRegistry &registry)
{
    registry.add(&kernels_);
    registry.add(&blocks_dispatched_);
    registry.add(&kernel_time_us_);
    l2_.registerStats(registry);
    dram_.registerStats(registry);
    for (auto &sm : sms_)
        sm->registerStats(registry);
}

} // namespace uvmsim
