#include "gpu.hh"

#include "sim/logging.hh"

namespace uvmsim
{

Gpu::Gpu(EventQueue &eq, const GpuConfig &config, Gmmu &gmmu)
    : eq_(eq),
      config_(config),
      gmmu_(gmmu),
      l2_(config.l2_bytes, config.l2_assoc, config.l2_line_bytes),
      dram_(eq, nanoseconds(config.dram_latency_ns),
            config.dram_bandwidth_gbps),
      kernels_("gpu.kernels", "kernels completed"),
      blocks_dispatched_("gpu.blocks_dispatched",
                         "thread blocks dispatched to SMs"),
      kernel_time_us_("gpu.kernel_time_us",
                      "accumulated kernel execution time (us)",
                      [this] {
                          return ticksToMicroseconds(total_kernel_ticks_);
                      })
{
    if (config_.num_sms == 0)
        fatal("GPU needs at least one SM");
    sms_.reserve(config_.num_sms);
    for (std::uint32_t i = 0; i < config_.num_sms; ++i) {
        sms_.push_back(std::make_unique<Sm>(
            i, config_, eq_, gmmu_, l2_, dram_,
            [this]() { onBlockDone(); }));
    }
    gmmu_.setTlbShootdown([this](PageNum page) { invalidatePage(page); });
}

void
Gpu::launch(Kernel &kernel, std::function<void()> on_done)
{
    if (current_)
        panic("kernel '%s' launched while '%s' is running",
              kernel.name().c_str(), current_->name().c_str());

    DTRACE("GPU", "launching kernel '%s'", kernel.name().c_str());
    current_ = &kernel;
    stream_exhausted_ = false;
    on_done_ = std::move(on_done);
    kernel_start_ = eq_.curTick();

    eq_.scheduleAfter(config_.kernel_launch_overhead, [this]() {
        dispatch();
        checkKernelDone();
    });
}

void
Gpu::dispatch()
{
    if (!current_)
        return;

    while (true) {
        // Pull the next block (or use the one parked when no SM had
        // room on the previous round).
        if (!pending_block_ && !stream_exhausted_) {
            pending_block_ = current_->nextThreadBlock();
            if (!pending_block_)
                stream_exhausted_ = true;
        }
        if (!pending_block_)
            return;

        auto warps =
            static_cast<std::uint32_t>(pending_block_->warps.size());
        if (warps > config_.max_warps_per_sm)
            fatal("thread block with %u warps exceeds the %u-warp SM "
                  "limit", warps, config_.max_warps_per_sm);

        // Round-robin placement so blocks spread across SMs.
        Sm *target = nullptr;
        for (std::uint32_t i = 0; i < config_.num_sms; ++i) {
            Sm &sm = *sms_[(rr_cursor_ + i) % config_.num_sms];
            if (sm.canAccept(warps)) {
                target = &sm;
                rr_cursor_ = (sm.id() + 1) % config_.num_sms;
                break;
            }
        }
        if (!target)
            return; // everything full; a draining block re-dispatches

        std::uint64_t first_id = next_warp_id_;
        next_warp_id_ += warps;
        ++blocks_dispatched_;
        target->acceptBlock(std::move(pending_block_), first_id);
    }
}

void
Gpu::checkKernelDone()
{
    if (!current_ || !stream_exhausted_ || pending_block_)
        return;
    for (const auto &sm : sms_) {
        if (!sm->idle())
            return;
    }

    DTRACE("GPU", "kernel complete after %.1f us",
           ticksToMicroseconds(eq_.curTick() - kernel_start_));
    total_kernel_ticks_ += eq_.curTick() - kernel_start_;
    ++kernels_;
    current_ = nullptr;
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    if (done)
        done();
}

void
Gpu::onBlockDone()
{
    dispatch();
    checkKernelDone();
}

void
Gpu::invalidatePage(PageNum page)
{
    for (auto &sm : sms_) {
        sm->tlb().invalidate(page);
        if (L2Cache *l1 = sm->l1())
            l1->invalidatePage(page);
    }
    l2_.invalidatePage(page);
}

void
Gpu::registerStats(stats::StatRegistry &registry)
{
    registry.add(&kernels_);
    registry.add(&blocks_dispatched_);
    registry.add(&kernel_time_us_);
    l2_.registerStats(registry);
    dram_.registerStats(registry);
    for (auto &sm : sms_)
        sm->registerStats(registry);
}

} // namespace uvmsim
