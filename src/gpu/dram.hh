/**
 * @file
 * Device DRAM (GDDR5-class) channel model.
 *
 * A single logical channel with fixed access latency plus a bandwidth
 * constraint: each line fill occupies the channel for
 * line_bytes / bandwidth, so sustained miss streams see queueing
 * exactly like a real memory controller's bank/bus serialization --
 * without modeling banks individually (UVM behaviour is insensitive to
 * that level of detail).
 */

#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace uvmsim
{

/** Fixed-latency, bandwidth-limited device memory channel. */
class DramModel
{
  public:
    /**
     * @param eq             Event queue.
     * @param latency        Access latency in ticks.
     * @param bandwidth_gbps Sustained bandwidth (1e9 B/s).
     */
    DramModel(EventQueue &eq, Tick latency, double bandwidth_gbps)
        : eq_(eq),
          latency_(latency),
          accesses_("dram.accesses", "DRAM line transfers"),
          bytes_("dram.bytes", "bytes moved through DRAM")
    {
        if (bandwidth_gbps <= 0.0)
            fatal("DRAM bandwidth must be positive");
        ticks_per_byte_ =
            static_cast<double>(oneSecond) / (bandwidth_gbps * 1e9);
    }

    /**
     * Complete one line transfer of `bytes` and report its completion
     * tick: the channel serializes occupancy, then the fixed latency
     * applies.
     */
    Tick
    access(std::uint32_t bytes)
    {
        Tick now = eq_.curTick();
        Tick start = std::max(now, busy_until_);
        // Line size is constant in practice; memoize the float math.
        if (bytes != memo_bytes_) {
            memo_bytes_ = bytes;
            memo_occupy_ = static_cast<Tick>(
                ticks_per_byte_ * static_cast<double>(bytes) + 0.5);
        }
        busy_until_ = start + memo_occupy_;
        ++accesses_;
        bytes_ += bytes;
        return busy_until_ + latency_;
    }

    /** Register this component's statistics. */
    void
    registerStats(stats::StatRegistry &registry)
    {
        registry.add(&accesses_);
        registry.add(&bytes_);
    }

  private:
    EventQueue &eq_;
    Tick latency_;
    double ticks_per_byte_;
    Tick busy_until_ = 0;
    std::uint32_t memo_bytes_ = 0;
    Tick memo_occupy_ = 0;

    stats::Counter accesses_;
    stats::Counter bytes_;
};

} // namespace uvmsim
