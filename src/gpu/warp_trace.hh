/**
 * @file
 * Warp instruction traces.
 *
 * A warp's execution is modeled as a sequence of WarpOps: a burst of
 * compute cycles followed by the coalesced global-memory transactions
 * the warp's load/store unit emits for one (or a few fused) memory
 * instructions.  Workload generators implement WarpTrace to produce
 * these lazily, so multi-gigabyte traces never materialize.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mem/types.hh"
#include "sim/ticks.hh"

namespace uvmsim
{

/** One coalesced memory transaction of a warp op. */
struct TraceAccess
{
    Addr addr = 0;
    std::uint32_t size = 128; //!< One fully coalesced warp access.
    bool is_write = false;
};

/** One step of a warp: compute, then memory. */
struct WarpOp
{
    /** Cycles of compute before the memory accesses issue. */
    Cycles compute_cycles = 0;
    /** Coalesced transactions; may be empty (pure compute). */
    std::vector<TraceAccess> accesses;
};

/** Lazily generated stream of WarpOps. */
class WarpTrace
{
  public:
    virtual ~WarpTrace() = default;

    /**
     * Produce the next op.
     * @return false when the warp has retired (op is unchanged).
     */
    virtual bool next(WarpOp &op) = 0;
};

/** A trace backed by a pre-built vector (tests, tiny kernels). */
class VectorTrace : public WarpTrace
{
  public:
    explicit VectorTrace(std::vector<WarpOp> ops)
        : ops_(std::move(ops))
    {}

    bool
    next(WarpOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

  private:
    std::vector<WarpOp> ops_;
    std::size_t pos_ = 0;
};

} // namespace uvmsim
