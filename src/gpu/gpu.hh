/**
 * @file
 * The whole GPU: SMs, L2, DRAM, the thread-block dispatcher, and the
 * kernel-launch interface.
 *
 * Kernels execute one at a time (the benchmarks synchronize between
 * launches, as the paper's iterative workloads do); the dispatcher
 * pulls thread blocks from the kernel stream into any SM with room,
 * re-filling as blocks drain.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/gmmu.hh"
#include "gpu/dram.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "gpu/l2_cache.hh"
#include "gpu/sm.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** The device: execution resources plus their shared memory side. */
class Gpu
{
  public:
    Gpu(EventQueue &eq, const GpuConfig &config, Gmmu &gmmu);

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /**
     * Launch a kernel.  Only one kernel runs at a time; `on_done`
     * fires when every thread block has completed.
     */
    void launch(Kernel &kernel, std::function<void()> on_done);

    /** Whether a kernel is currently executing. */
    bool busy() const { return current_ != nullptr; }

    /**
     * Page shootdown hook for the GMMU: drops the page's translations
     * from every SM TLB and its lines from the L2.
     */
    void invalidatePage(PageNum page);

    /** Accumulated kernel execution time (the paper's main metric). */
    Tick totalKernelTime() const { return total_kernel_ticks_; }

    /** Number of kernels completed. */
    std::uint64_t kernelsCompleted() const { return kernels_.count(); }

    /** The shared L2 (exposed for tests). */
    L2Cache &l2() { return l2_; }

    /** The DRAM channel (exposed for tests). */
    DramModel &dram() { return dram_; }

    /** The configuration in use. */
    const GpuConfig &config() const { return config_; }

    /** Register this component's (and its children's) statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    /** Fill SMs from the current kernel's block stream. */
    void dispatch();

    /** A block finished somewhere; refill and check for completion. */
    void onBlockDone();

    /** Finish the kernel when the stream drained and all SMs idle. */
    void checkKernelDone();

    EventQueue &eq_;
    GpuConfig config_;
    Gmmu &gmmu_;

    L2Cache l2_;
    DramModel dram_;
    std::vector<std::unique_ptr<Sm>> sms_;

    Kernel *current_ = nullptr;
    std::unique_ptr<ThreadBlock> pending_block_;
    bool stream_exhausted_ = false;
    std::function<void()> on_done_;
    Tick kernel_start_ = 0;
    Tick total_kernel_ticks_ = 0;
    std::uint64_t next_warp_id_ = 0;
    std::uint32_t rr_cursor_ = 0;

    stats::Counter kernels_;
    stats::Counter blocks_dispatched_;
    stats::Formula kernel_time_us_;
};

} // namespace uvmsim
