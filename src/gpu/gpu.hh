/**
 * @file
 * The whole GPU: SMs, L2, DRAM, the thread-block dispatcher, and the
 * kernel-launch interface.
 *
 * Up to `max_concurrent_kernels` launches may be resident at once
 * (MPS-style sharing for multi-tenant runs).  The dispatcher
 * round-robins across the live launches, pulling thread blocks from
 * each stream into any SM with room and re-filling as blocks drain.
 * With the default limit of 1 this degenerates to the paper's
 * one-kernel-at-a-time model (the benchmarks synchronize between
 * launches, as the paper's iterative workloads do).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/gmmu.hh"
#include "gpu/dram.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "gpu/l2_cache.hh"
#include "gpu/sm.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** The device: execution resources plus their shared memory side. */
class Gpu
{
  public:
    Gpu(EventQueue &eq, const GpuConfig &config, Gmmu &gmmu);

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /**
     * Launch a kernel.  At most `max_concurrent_kernels` may be in
     * flight; `on_done` fires when every thread block of this launch
     * has completed.
     */
    void launch(Kernel &kernel, std::function<void()> on_done);

    /** Whether any kernel is currently executing. */
    bool busy() const { return !launches_.empty(); }

    /** Number of launches currently in flight. */
    std::size_t launchesInFlight() const { return launches_.size(); }

    /**
     * Page shootdown hook for the GMMU: drops the page's translations
     * from every SM TLB and its lines from the L2.
     */
    void invalidatePage(PageNum page);

    /**
     * Accumulated kernel execution time (the paper's main metric).
     * Each launch contributes its own launch-to-completion interval,
     * so concurrent launches overlap and the sum can exceed wall
     * clock.
     */
    Tick totalKernelTime() const { return total_kernel_ticks_; }

    /** Number of kernels completed. */
    std::uint64_t kernelsCompleted() const { return kernels_.count(); }

    /** The shared L2 (exposed for tests). */
    L2Cache &l2() { return l2_; }

    /** The DRAM channel (exposed for tests). */
    DramModel &dram() { return dram_; }

    /** The configuration in use. */
    const GpuConfig &config() const { return config_; }

    /** Register this component's (and its children's) statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    /** One in-flight kernel launch. */
    struct Launch
    {
        Kernel *kernel = nullptr;
        /** Dispatch tag; ties retired blocks back to their launch. */
        std::uint64_t seq = 0;
        /** Block parked when no SM had room on the previous round. */
        std::unique_ptr<ThreadBlock> pending;
        bool exhausted = false;
        /** Whether the launch overhead has elapsed. */
        bool started = false;
        /** Blocks dispatched to SMs and not yet retired. */
        std::uint64_t live_blocks = 0;
        std::function<void()> on_done;
        Tick start = 0;
    };

    /** Fill SMs from the live launches' block streams. */
    void dispatch();

    /** A block finished somewhere; refill and check for completion. */
    void onBlockDone(std::uint64_t launch_seq);

    /** Finish a launch when its stream drained and blocks retired. */
    void checkLaunchDone(std::uint64_t launch_seq);

    /** The in-flight launch with the given tag, or nullptr. */
    Launch *findLaunch(std::uint64_t launch_seq);

    EventQueue &eq_;
    GpuConfig config_;
    Gmmu &gmmu_;

    L2Cache l2_;
    DramModel dram_;
    std::vector<std::unique_ptr<Sm>> sms_;

    std::vector<std::unique_ptr<Launch>> launches_;
    std::uint64_t next_launch_seq_ = 0;
    /** Round-robin cursor over launches_ (clamped after erases). */
    std::size_t launch_rr_ = 0;
    Tick total_kernel_ticks_ = 0;
    std::uint64_t next_warp_id_ = 0;
    std::uint32_t rr_cursor_ = 0;

    stats::Counter kernels_;
    stats::Counter blocks_dispatched_;
    stats::Formula kernel_time_us_;
};

} // namespace uvmsim
