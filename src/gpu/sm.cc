#include "sm.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

Sm::Sm(std::uint32_t id, const GpuConfig &config, EventQueue &eq,
       Gmmu &gmmu, L2Cache &l2, DramModel &dram, BlockDoneFn block_done)
    : id_(id),
      config_(config),
      eq_(eq),
      gmmu_(gmmu),
      l2_(l2),
      dram_(dram),
      block_done_(std::move(block_done)),
      tlb_("sm" + std::to_string(id) + ".tlb", config.tlb_entries),
      core_period_(config.corePeriod()),
      l1_hit_latency_(config.l1_hit_cycles * config.corePeriod()),
      l2_hit_latency_(config.l2_hit_cycles * config.corePeriod()),
      line_shift_(static_cast<std::uint32_t>(
          std::bit_width(config.l2_line_bytes) - 1)),
      warps_retired_("sm" + std::to_string(id) + ".warps_retired",
                     "warps that completed their trace"),
      ops_executed_("sm" + std::to_string(id) + ".ops_executed",
                    "warp ops executed"),
      accesses_issued_("sm" + std::to_string(id) + ".accesses_issued",
                       "coalesced memory accesses issued")
{
    if (config.l1_bytes > 0) {
        l1_ = std::make_unique<L2Cache>(
            config.l1_bytes, config.l1_assoc, config.l2_line_bytes,
            "sm" + std::to_string(id) + ".l1");
    }
}

bool
Sm::canAccept(std::uint32_t warps) const
{
    return blocks_.size() < config_.max_tbs_per_sm &&
           live_warps_ + warps <= config_.max_warps_per_sm;
}

void
Sm::acceptBlock(std::unique_ptr<ThreadBlock> block,
                std::uint64_t first_warp_id)
{
    if (!canAccept(static_cast<std::uint32_t>(block->warps.size())))
        panic("SM %u accepted a block it cannot host", id_);
    if (block->warps.empty())
        panic("thread block %llu has no warps",
              static_cast<unsigned long long>(block->id));

    blocks_.push_back(BlockCtx{
        block->id, block->launch_seq,
        static_cast<std::uint32_t>(block->warps.size())});
    BlockCtx *ctx = &blocks_.back();

    std::uint64_t warp_id = first_warp_id;
    for (auto &trace : block->warps) {
        warps_.push_back(WarpCtx{warp_id++, std::move(trace), ctx,
                                 WarpOp{}, 0, false});
        ++live_warps_;
        stepWarp(&warps_.back());
    }
}

void
Sm::stepWarp(WarpCtx *warp)
{
    if (!warp->trace->next(warp->op)) {
        retireWarp(warp);
        return;
    }
    ++ops_executed_;

    Cycles cycles = warp->op.compute_cycles;
    if (cycles == 0 && warp->op.accesses.empty())
        cycles = 1; // guarantee forward progress through empty ops

    Tick ready = eq_.curTick() + cycles * core_period_;

    // Memory ops contend for the SM's issue ports: at most
    // issue_ports_per_sm warp ops begin per core cycle.
    if (!warp->op.accesses.empty() && config_.issue_ports_per_sm > 0) {
        Tick slot_interval =
            core_period_ / config_.issue_ports_per_sm;
        if (slot_interval == 0)
            slot_interval = 1;
        Tick slot = std::max(ready, next_issue_free_);
        next_issue_free_ = slot + slot_interval;
        ready = slot;
    }

    if (ready == eq_.curTick()) {
        issueOp(warp);
    } else {
        eq_.scheduleCall(ready, &Sm::issueOpThunk, this,
                         reinterpret_cast<std::uint64_t>(warp));
    }
}

void
Sm::issueOpThunk(void *sm, std::uint64_t warp)
{
    static_cast<Sm *>(sm)->issueOp(reinterpret_cast<WarpCtx *>(warp));
}

void
Sm::accessDoneThunk(void *sm, std::uint64_t warp)
{
    static_cast<Sm *>(sm)->accessDone(
        reinterpret_cast<WarpCtx *>(warp));
}

std::uint32_t
Sm::allocPending(const MemAccess &access, WarpCtx *warp)
{
    std::uint32_t slot;
    if (pending_free_ != ~std::uint32_t{0}) {
        slot = pending_free_;
        pending_free_ = pending_[slot].next;
    } else {
        pending_.emplace_back();
        slot = static_cast<std::uint32_t>(pending_.size() - 1);
    }
    pending_[slot].access = access;
    pending_[slot].warp = warp;
    return slot;
}

void
Sm::issueOp(WarpCtx *warp)
{
    if (warp->op.accesses.empty()) {
        stepWarp(warp);
        return;
    }
    warp->outstanding =
        static_cast<std::uint32_t>(warp->op.accesses.size());
    // Issue on a copy: completing accesses may advance warp->op.
    std::vector<TraceAccess> accesses = warp->op.accesses;
    for (const TraceAccess &access : accesses)
        performAccess(warp, access);
}

void
Sm::performAccess(WarpCtx *warp, const TraceAccess &access)
{
    ++accesses_issued_;
    if (pageOf(access.addr) != pageOf(access.addr + access.size - 1))
        panic("coalesced access spans pages (addr %llx size %u)",
              static_cast<unsigned long long>(access.addr), access.size);

    MemAccess m;
    m.addr = access.addr;
    m.size = access.size;
    m.is_write = access.is_write;
    m.sm_id = id_;
    m.warp_id = warp->id;

    PageNum page = pageOf(m.addr);
    if (tlb_.lookup(page)) {
        gmmu_.recordAccess(m);
        memoryStage(m, warp);
    } else {
        std::uint32_t slot = allocPending(m, warp);
        gmmu_.translate(m, [this, slot]() {
            // Copy out before freeing: memoryStage may grow pending_.
            MemAccess done = pending_[slot].access;
            WarpCtx *w = pending_[slot].warp;
            pending_[slot].next = pending_free_;
            pending_free_ = slot;
            tlb_.insert(pageOf(done.addr));
            memoryStage(done, w);
        });
    }
}

void
Sm::memoryStage(const MemAccess &access, WarpCtx *warp)
{
    // Touch every line the access covers; the completion time is the
    // slowest line's.  Reads probe the write-through L1 first; writes
    // go straight to the L2 (no-write-allocate L1, GPU style).
    Addr first_line = access.addr >> line_shift_;
    Addr last_line = (access.addr + access.size - 1) >> line_shift_;
    Tick completion = eq_.curTick() + l1_hit_latency_;
    for (Addr line = first_line; line <= last_line; ++line) {
        Addr line_addr = line << line_shift_;
        if (l1_ && !access.is_write) {
            if (l1_->access(line_addr, false))
                continue; // L1 hit: the base latency covers it
        }
        bool hit = l2_.access(line_addr, access.is_write);
        if (hit) {
            completion = std::max(completion,
                                  eq_.curTick() + l2_hit_latency_);
        } else {
            Tick fill = dram_.access(config_.l2_line_bytes);
            completion = std::max(completion, fill + l2_hit_latency_);
        }
    }
    eq_.scheduleCall(completion, &Sm::accessDoneThunk, this,
                     reinterpret_cast<std::uint64_t>(warp));
}

void
Sm::accessDone(WarpCtx *warp)
{
    if (warp->outstanding == 0)
        panic("access completion with none outstanding (warp %llu)",
              static_cast<unsigned long long>(warp->id));
    if (--warp->outstanding == 0)
        stepWarp(warp);
}

void
Sm::retireWarp(WarpCtx *warp)
{
    if (warp->retired)
        panic("double retire of warp %llu",
              static_cast<unsigned long long>(warp->id));
    warp->retired = true;
    ++warps_retired_;
    --live_warps_;

    BlockCtx *block = warp->block;
    if (--block->live_warps == 0) {
        // Reap the block and its warp contexts.  Reap by identity:
        // block ids are only unique within one kernel, and concurrent
        // launches can have same-id blocks resident on one SM.
        std::uint64_t launch_seq = block->launch_seq;
        warps_.remove_if([block](const WarpCtx &w) {
            return w.block == block && w.retired;
        });
        blocks_.remove_if(
            [block](const BlockCtx &b) { return &b == block; });
        block_done_(launch_seq);
    }
}

void
Sm::registerStats(stats::StatRegistry &registry)
{
    registry.add(&warps_retired_);
    registry.add(&ops_executed_);
    registry.add(&accesses_issued_);
    tlb_.registerStats(registry);
    if (l1_)
        l1_->registerStats(registry);
}

} // namespace uvmsim
