/**
 * @file
 * Set-associative data cache tag store.
 *
 * Used twice: as the unified L2 shared by all SMs and as each SM's
 * private L1 (with a different geometry and stat prefix).
 * Write-back, write-allocate, true-LRU within a set.  The UVM study
 * only needs hit/miss classification and invalidation of lines whose
 * backing page is evicted; replacement traffic is folded into the
 * DRAM channel occupancy.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** Set-associative tag store with named stats. */
class L2Cache
{
  public:
    /**
     * @param capacity_bytes Total capacity; must be divisible by
     *                       assoc * line_bytes.
     * @param assoc          Ways per set.
     * @param line_bytes     Line size (power of two).
     * @param stat_prefix    Prefix for the stat names ("l2", "sm0.l1").
     */
    L2Cache(std::uint64_t capacity_bytes, std::uint32_t assoc,
            std::uint32_t line_bytes, std::string stat_prefix = "l2");

    /**
     * Look up (and on miss, fill) the line for an address.
     * @param addr     Byte address accessed.
     * @param is_write Marks the line dirty on hit/fill.
     * @return true on hit, false on miss (line now filled).
     */
    bool access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate every line belonging to a 4KB page. */
    void invalidatePage(PageNum page);

    /** Drop all lines. */
    void flushAll();

    /** Hit count so far. */
    std::uint64_t hits() const { return hits_.count(); }

    /** Miss count so far. */
    std::uint64_t misses() const { return misses_.count(); }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; //!< Higher = more recent.
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    std::uint32_t assoc_;
    std::uint32_t line_bytes_;
    std::uint64_t num_sets_;
    std::uint64_t tick_ = 0;
    std::vector<Line> lines_; //!< num_sets_ * assoc_, set-major.

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter invalidations_;
};

} // namespace uvmsim
