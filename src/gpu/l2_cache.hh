/**
 * @file
 * Set-associative data cache tag store.
 *
 * Used twice: as the unified L2 shared by all SMs and as each SM's
 * private L1 (with a different geometry and stat prefix).
 * Write-back, write-allocate, true-LRU within a set.  The UVM study
 * only needs hit/miss classification and invalidation of lines whose
 * backing page is evicted; replacement traffic is folded into the
 * DRAM channel occupancy.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** Set-associative tag store with named stats. */
class L2Cache
{
  public:
    /**
     * @param capacity_bytes Total capacity; must be divisible by
     *                       assoc * line_bytes.
     * @param assoc          Ways per set.
     * @param line_bytes     Line size (power of two).
     * @param stat_prefix    Prefix for the stat names ("l2", "sm0.l1").
     */
    L2Cache(std::uint64_t capacity_bytes, std::uint32_t assoc,
            std::uint32_t line_bytes, std::string stat_prefix = "l2");

    /**
     * Look up (and on miss, fill) the line for an address.
     * @param addr     Byte address accessed.
     * @param is_write Marks the line dirty on hit/fill.
     * @return true on hit, false on miss (line now filled).
     */
    bool access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate every line belonging to a 4KB page. */
    void invalidatePage(PageNum page);

    /** Drop all lines. */
    void flushAll();

    /** Hit count so far. */
    std::uint64_t hits() const { return hits_.count(); }

    /** Miss count so far. */
    std::uint64_t misses() const { return misses_.count(); }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    /** Tag value that never matches a real line (addr >> shift). */
    static constexpr std::uint32_t invalidTag = ~std::uint32_t{0};

    /** Counting-filter buckets for the page-presence pre-check. */
    static constexpr std::uint64_t filterBuckets = 4096;

    /**
     * Line index of an address: a shift (line size is power of two).
     * Tags are stored in 32 bits; the constructor-checked geometry and
     * the access-path guard keep real addresses below the sentinel.
     */
    std::uint32_t
    tagOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr >> line_shift_);
    }

    /**
     * Set of an address: mask when the set count is a power of two,
     * else Lemire's multiply-shift fastmod -- exact for 32-bit line
     * numbers and 32-bit set counts, which the tag-range guard and the
     * constructor enforce.  Replaces a hardware divide on the hottest
     * path for non-power-of-two geometries (e.g. the 48-set L1).
     */
    std::uint64_t
    setIndex(Addr addr) const
    {
        std::uint64_t line = addr >> line_shift_;
        if (sets_pow2_)
            return line & set_mask_;
        std::uint64_t lowbits = mod_magic_ * line;
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(lowbits) * num_sets_) >> 64);
    }

    /** Move a way to the top (most recent) of its set's rank order. */
    void
    touchRank(std::uint64_t base, std::uint32_t way)
    {
        std::uint8_t *ranks = &rank_[base];
        std::uint8_t r = ranks[way];
        for (std::uint32_t w = 0; w < assoc_; ++w)
            ranks[w] -= ranks[w] > r;
        ranks[way] = static_cast<std::uint8_t>(assoc_ - 1);
    }

    std::uint32_t assoc_;
    std::uint32_t line_bytes_;
    std::uint32_t line_shift_ = 0;
    std::uint64_t num_sets_;
    std::uint64_t set_mask_ = 0;
    std::uint64_t mod_magic_ = 0; //!< ~0/num_sets + 1 (fastmod).
    bool sets_pow2_ = false;

    /**
     * Tag store as structure-of-arrays (set-major): the hit probe is
     * a linear scan of `assoc_` contiguous 32-bit tags with validity
     * folded into the tag via a sentinel, and recency is a per-set
     * rank permutation (one byte per way, move-to-top on touch) so a
     * whole set's LRU state is a single 16-byte read -- the same
     * victim order as per-line timestamps at a quarter of the
     * footprint.
     */
    std::vector<std::uint32_t> tags_; //!< invalidTag = empty way.
    std::vector<std::uint8_t> rank_;  //!< 0 = LRU .. assoc-1 = MRU.
    std::vector<std::uint8_t> dirty_;

    /**
     * Counting filter over pages with cached lines: bucket
     * page & (filterBuckets-1) counts this cache's valid lines of all
     * pages hashing there.  Maintained on fill/replace (a masked
     * increment/decrement, no hashing), it lets invalidatePage() skip
     * the 32-set tag sweep entirely when the evicted page provably has
     * no lines here -- the common case, since eviction targets cold
     * pages.  Collisions only cause a redundant sweep, never a missed
     * invalidation.
     */
    std::vector<std::uint16_t> page_lines_;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter invalidations_;
};

} // namespace uvmsim
