/**
 * @file
 * GPU execution-model parameters.
 *
 * Defaults follow the paper's Table 2 (a Pascal-class GPU: 28 SMs of
 * 128 cores at 1481 MHz) plus conventional Pascal-era memory-side
 * constants for the parts the paper holds fixed (L2, GDDR5).
 */

#pragma once

#include <cstdint>

#include "sim/ticks.hh"

namespace uvmsim
{

/** Static configuration of the modeled GPU. */
struct GpuConfig
{
    /** Number of streaming multiprocessors. */
    std::uint32_t num_sms = 28;

    /** Core clock in MHz (Table 2: 1481 MHz). */
    double core_mhz = 1481.0;

    /** Maximum warps resident per SM (TLP available to hide faults). */
    std::uint32_t max_warps_per_sm = 16;

    /** Maximum thread blocks resident per SM. */
    std::uint32_t max_tbs_per_sm = 4;

    /** Per-SM TLB entries (fully associative, single-cycle lookup). */
    std::uint32_t tlb_entries = 64;

    /** Per-SM L1 data cache capacity in bytes (0 disables the L1). */
    std::uint64_t l1_bytes = 24 * sizeKiB;

    /** L1 associativity. */
    std::uint32_t l1_assoc = 4;

    /** L1 hit latency in core cycles. */
    std::uint32_t l1_hit_cycles = 28;

    /** Unified L2 capacity in bytes (GTX 1080ti-class). */
    std::uint64_t l2_bytes = 2 * sizeMiB;

    /** L2 associativity. */
    std::uint32_t l2_assoc = 16;

    /** L2 line size in bytes. */
    std::uint32_t l2_line_bytes = 128;

    /** L2 hit latency in core cycles. */
    std::uint32_t l2_hit_cycles = 120;

    /** Device DRAM access latency in nanoseconds. */
    std::uint64_t dram_latency_ns = 220;

    /** Device DRAM bandwidth in GB/s (GDDR5X-class). */
    double dram_bandwidth_gbps = 320.0;

    /** Fixed driver overhead per kernel launch. */
    Tick kernel_launch_overhead = microseconds(8);

    /**
     * Concurrently resident kernel launches (MPS-style sharing).  The
     * default 1 keeps the paper's one-kernel-at-a-time model; the
     * multi-tenant driver raises it so every tenant's stream executes
     * simultaneously, with the dispatcher round-robining thread
     * blocks across the live launches.
     */
    std::uint32_t max_concurrent_kernels = 1;

    /**
     * Warp ops an SM can begin per core cycle (its issue ports for
     * memory instructions).  Creates back-pressure when many resident
     * warps are compute-light; 0 disables the throttle.
     */
    std::uint32_t issue_ports_per_sm = 2;

    /** The core clock period in ticks. */
    Tick corePeriod() const { return periodFromMHz(core_mhz); }
};

} // namespace uvmsim
