#include "l2_cache.hh"

#include <algorithm>
#include <bit>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "sim/logging.hh"

namespace uvmsim
{

L2Cache::L2Cache(std::uint64_t capacity_bytes, std::uint32_t assoc,
                 std::uint32_t line_bytes, std::string stat_prefix)
    : assoc_(assoc),
      line_bytes_(line_bytes),
      hits_(stat_prefix + ".hits", "cache hits"),
      misses_(stat_prefix + ".misses", "cache misses"),
      invalidations_(stat_prefix + ".invalidations",
                     "cache lines invalidated by page eviction")
{
    if (assoc_ == 0 || line_bytes_ == 0 ||
        !std::has_single_bit(line_bytes_))
        panic("L2Cache: bad geometry");
    std::uint64_t set_bytes =
        static_cast<std::uint64_t>(assoc_) * line_bytes_;
    if (capacity_bytes == 0 || capacity_bytes % set_bytes != 0)
        panic("L2Cache: capacity not divisible by set size");
    num_sets_ = capacity_bytes / set_bytes;
    line_shift_ = static_cast<std::uint32_t>(
        std::bit_width(line_bytes_) - 1);
    sets_pow2_ = std::has_single_bit(num_sets_);
    set_mask_ = num_sets_ - 1;
    if (num_sets_ > 0xffffffffull)
        panic("L2Cache: more than 2^32 sets unsupported");
    mod_magic_ = ~std::uint64_t{0} / num_sets_ + 1;
    if (assoc_ > 0xff)
        panic("L2Cache: associativity above 255 unsupported");
    tags_.assign(num_sets_ * assoc_, invalidTag);
    rank_.resize(num_sets_ * assoc_);
    for (std::uint64_t s = 0; s < num_sets_; ++s)
        for (std::uint32_t w = 0; w < assoc_; ++w)
            rank_[s * assoc_ + w] = static_cast<std::uint8_t>(w);
    dirty_.assign(num_sets_ * assoc_, 0);
    page_lines_.assign(filterBuckets, 0);
}

bool
L2Cache::access(Addr addr, bool is_write)
{
    if ((addr >> line_shift_) >= invalidTag)
        panic("L2Cache: address %llx beyond the 32-bit tag range",
              static_cast<unsigned long long>(addr));
    std::uint64_t base = setIndex(addr) * assoc_;
    std::uint32_t tag = tagOf(addr);
    std::uint32_t *tags = &tags_[base];

    // One branch-free pass over the set's (single cache line of) tags:
    // a tag is present in at most one way, so a full last-match scan
    // finds the hit way, and the same pass records the last invalid
    // way -- the fill target the per-way scan picked.  The UVM
    // workloads are overwhelmingly miss-dominated, so full vectorized
    // scans beat early-exit probing.
    std::uint32_t hit_way = invalidTag;
    std::uint32_t inv_way = invalidTag;
#if defined(__SSE2__)
    if (assoc_ % 4 == 0) {
        // GCC cannot auto-vectorize a last-match-index scan, so build
        // the match masks explicitly; at most one tag matches, so the
        // lowest hit bit is the hit and the highest invalid bit is the
        // scalar loop's last-invalid way.
        const __m128i vtag = _mm_set1_epi32(static_cast<int>(tag));
        const __m128i vinv = _mm_set1_epi32(-1);
        std::uint32_t hm = 0;
        std::uint32_t im = 0;
        for (std::uint32_t w = 0; w < assoc_; w += 4) {
            __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tags + w));
            hm |= static_cast<std::uint32_t>(_mm_movemask_ps(
                      _mm_castsi128_ps(_mm_cmpeq_epi32(v, vtag))))
                  << w;
            im |= static_cast<std::uint32_t>(_mm_movemask_ps(
                      _mm_castsi128_ps(_mm_cmpeq_epi32(v, vinv))))
                  << w;
        }
        if (hm != 0)
            hit_way = static_cast<std::uint32_t>(std::countr_zero(hm));
        if (im != 0)
            inv_way = static_cast<std::uint32_t>(std::bit_width(im)) - 1;
    } else
#endif
    {
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (tags[w] == tag)
                hit_way = w;
            if (tags[w] == invalidTag)
                inv_way = w;
        }
    }
    if (hit_way != invalidTag) {
        touchRank(base, hit_way);
        dirty_[base + hit_way] |= is_write;
        ++hits_;
        return true;
    }

    // Miss: fill into the (last) invalid way, else the rank-0 way --
    // ranks are a permutation ordering valid ways exactly as recency
    // timestamps would, so rank 0 is the victim the timestamped tag
    // store chose.
    std::uint32_t victim = inv_way;
    if (victim == invalidTag) {
        const std::uint8_t *ranks = &rank_[base];
        victim = 0;
#if defined(__SSE2__)
        if (assoc_ % 16 == 0) {
            for (std::uint32_t w = 0; w < assoc_; w += 16) {
                __m128i v = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(ranks + w));
                std::uint32_t m = static_cast<std::uint32_t>(
                    _mm_movemask_epi8(
                        _mm_cmpeq_epi8(v, _mm_setzero_si128())));
                if (m != 0) {
                    victim = w + static_cast<std::uint32_t>(
                                     std::countr_zero(m));
                    break;
                }
            }
        } else
#endif
        {
            for (std::uint32_t w = 0; w < assoc_; ++w) {
                if (ranks[w] == 0)
                    victim = w;
            }
        }
        Addr old_page =
            static_cast<Addr>(tags[victim]) >> (pageShift - line_shift_);
        --page_lines_[old_page & (filterBuckets - 1)];
    }
    ++page_lines_[(addr >> pageShift) & (filterBuckets - 1)];
    tags[victim] = tag;
    dirty_[base + victim] = is_write;
    touchRank(base, victim);
    ++misses_;
    return false;
}

bool
L2Cache::contains(Addr addr) const
{
    std::uint64_t base = setIndex(addr) * assoc_;
    std::uint32_t tag = tagOf(addr);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (tags_[base + w] == tag)
            return true;
    }
    return false;
}

void
L2Cache::invalidatePage(PageNum page)
{
    if (page_lines_[page & (filterBuckets - 1)] == 0)
        return; // no line of any page in this bucket is cached
    Addr lo = pageBase(page);
    for (Addr a = lo; a < lo + pageSize; a += line_bytes_) {
        std::uint64_t base = setIndex(a) * assoc_;
        std::uint32_t tag = tagOf(a);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (tags_[base + w] == tag) {
                tags_[base + w] = invalidTag;
                dirty_[base + w] = 0;
                --page_lines_[page & (filterBuckets - 1)];
                ++invalidations_;
            }
        }
    }
}

void
L2Cache::flushAll()
{
    std::fill(tags_.begin(), tags_.end(), invalidTag);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    std::fill(page_lines_.begin(), page_lines_.end(), 0);
}

void
L2Cache::registerStats(stats::StatRegistry &registry)
{
    registry.add(&hits_);
    registry.add(&misses_);
    registry.add(&invalidations_);
}

} // namespace uvmsim
