#include "l2_cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

L2Cache::L2Cache(std::uint64_t capacity_bytes, std::uint32_t assoc,
                 std::uint32_t line_bytes, std::string stat_prefix)
    : assoc_(assoc),
      line_bytes_(line_bytes),
      hits_(stat_prefix + ".hits", "cache hits"),
      misses_(stat_prefix + ".misses", "cache misses"),
      invalidations_(stat_prefix + ".invalidations",
                     "cache lines invalidated by page eviction")
{
    if (assoc_ == 0 || line_bytes_ == 0 ||
        !std::has_single_bit(line_bytes_))
        panic("L2Cache: bad geometry");
    std::uint64_t set_bytes =
        static_cast<std::uint64_t>(assoc_) * line_bytes_;
    if (capacity_bytes == 0 || capacity_bytes % set_bytes != 0)
        panic("L2Cache: capacity not divisible by set size");
    num_sets_ = capacity_bytes / set_bytes;
    lines_.assign(num_sets_ * assoc_, Line{});
}

std::uint64_t
L2Cache::setIndex(Addr addr) const
{
    return (addr / line_bytes_) % num_sets_;
}

Addr
L2Cache::tagOf(Addr addr) const
{
    return addr / line_bytes_;
}

bool
L2Cache::access(Addr addr, bool is_write)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines_[set * assoc_];

    Line *victim = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = ++tick_;
            line.dirty = line.dirty || is_write;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    // Miss: fill into the invalid way or the LRU way.
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru = ++tick_;
    ++misses_;
    return false;
}

bool
L2Cache::contains(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines_[set * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
L2Cache::invalidatePage(PageNum page)
{
    Addr lo = pageBase(page);
    for (Addr a = lo; a < lo + pageSize; a += line_bytes_) {
        std::uint64_t set = setIndex(a);
        Addr tag = tagOf(a);
        Line *base = &lines_[set * assoc_];
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                base[w].valid = false;
                base[w].dirty = false;
                ++invalidations_;
            }
        }
    }
}

void
L2Cache::flushAll()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

void
L2Cache::registerStats(stats::StatRegistry &registry)
{
    registry.add(&hits_);
    registry.add(&misses_);
    registry.add(&invalidations_);
}

} // namespace uvmsim
