/**
 * @file
 * Streaming multiprocessor model.
 *
 * Each SM hosts a bounded set of thread blocks and their warps.  A
 * warp is an event-driven state machine over its WarpTrace: it
 * computes for the op's cycle count, then issues the op's coalesced
 * accesses through its SM's TLB into the GMMU/L2/DRAM path, and
 * proceeds to the next op when all accesses complete.  Warps that
 * far-fault simply see their access complete much later -- the rest of
 * the SM's warps keep running, which is exactly the TLP-hides-latency
 * behaviour the paper leans on.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <vector>

#include "core/gmmu.hh"
#include "gpu/dram.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "gpu/l2_cache.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"

namespace uvmsim
{

/** One streaming multiprocessor. */
class Sm
{
  public:
    /** Invoked whenever a resident thread block completes, with the
     *  launch_seq of the launch the block belonged to. */
    using BlockDoneFn = std::function<void(std::uint64_t)>;

    Sm(std::uint32_t id, const GpuConfig &config, EventQueue &eq,
       Gmmu &gmmu, L2Cache &l2, DramModel &dram, BlockDoneFn block_done);

    Sm(const Sm &) = delete;
    Sm &operator=(const Sm &) = delete;

    /** SM index. */
    std::uint32_t id() const { return id_; }

    /** Whether a block with `warps` warps fits right now. */
    bool canAccept(std::uint32_t warps) const;

    /** Take ownership of a thread block and start its warps. */
    void acceptBlock(std::unique_ptr<ThreadBlock> block,
                     std::uint64_t first_warp_id);

    /** True when no warps are resident. */
    bool idle() const { return live_warps_ == 0; }

    /** Resident warp count. */
    std::uint32_t residentWarps() const { return live_warps_; }

    /** Resident block count. */
    std::uint32_t residentBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /** This SM's TLB (the GPU uses it for shootdowns). */
    Tlb &tlb() { return tlb_; }

    /** This SM's private L1 data cache (nullptr when disabled). */
    L2Cache *l1() { return l1_ ? l1_.get() : nullptr; }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    struct BlockCtx
    {
        std::uint64_t id;
        std::uint64_t launch_seq;
        std::uint32_t live_warps;
    };

    struct WarpCtx
    {
        std::uint64_t id;
        std::unique_ptr<WarpTrace> trace;
        BlockCtx *block;
        WarpOp op;
        std::uint32_t outstanding = 0;
        bool retired = false;
    };

    /** Pull and schedule the warp's next op. */
    void stepWarp(WarpCtx *warp);

    /** Issue the current op's accesses after its compute burst. */
    void issueOp(WarpCtx *warp);

    /** Route one coalesced access through TLB / GMMU / memory. */
    void performAccess(WarpCtx *warp, const TraceAccess &access);

    /** Charge L2/DRAM time for a translated access; completion wakes
     *  the warp via the POD event path. */
    void memoryStage(const MemAccess &access, WarpCtx *warp);

    /** One access of the current op finished. */
    void accessDone(WarpCtx *warp);

    /** POD event thunks (EventQueue fast path; arg = WarpCtx*). */
    static void issueOpThunk(void *sm, std::uint64_t warp);
    static void accessDoneThunk(void *sm, std::uint64_t warp);

    /**
     * One TLB-missing access parked in the GMMU: kept in a free-list
     * pool so the translate-done closure captures only (this, slot)
     * and fits std::function's small-buffer storage -- no heap
     * allocation per miss.
     */
    struct PendingAccess
    {
        MemAccess access;
        WarpCtx *warp = nullptr;
        std::uint32_t next = 0; //!< Free-list link.
    };

    std::uint32_t allocPending(const MemAccess &access, WarpCtx *warp);

    /** The warp's trace is exhausted. */
    void retireWarp(WarpCtx *warp);

    std::uint32_t id_;
    const GpuConfig &config_;
    EventQueue &eq_;
    Gmmu &gmmu_;
    L2Cache &l2_;
    DramModel &dram_;
    BlockDoneFn block_done_;

    Tlb tlb_;
    std::unique_ptr<L2Cache> l1_;
    Tick core_period_;
    Tick l1_hit_latency_;
    Tick l2_hit_latency_;
    std::uint32_t line_shift_; //!< log2(l2_line_bytes), for div-free math.
    /** Next tick with a free issue port (0-width = unthrottled). */
    Tick next_issue_free_ = 0;

    std::list<BlockCtx> blocks_;
    std::list<WarpCtx> warps_;
    std::uint32_t live_warps_ = 0;

    std::vector<PendingAccess> pending_;
    std::uint32_t pending_free_ = ~std::uint32_t{0};

    stats::Counter warps_retired_;
    stats::Counter ops_executed_;
    stats::Counter accesses_issued_;
};

} // namespace uvmsim
