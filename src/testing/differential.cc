#include "differential.hh"

#include <cstdio>
#include <sstream>

#include "api/simulator.hh"

namespace uvmsim
{
namespace fuzzing
{

namespace
{

std::string
pageListPreview(const std::vector<PageNum> &pages, std::size_t limit = 8)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < pages.size() && i < limit; ++i) {
        if (i)
            out << ",";
        out << pages[i];
    }
    if (pages.size() > limit)
        out << ",... +" << pages.size() - limit;
    out << "] (" << pages.size() << " pages)";
    return out.str();
}

struct Differ
{
    DiffResult &result;

    void
    add(const std::string &field, const std::string &expected,
        const std::string &actual)
    {
        result.mismatch = true;
        result.mismatches.push_back(Mismatch{field, expected, actual});
    }

    void
    counter(const std::string &field, std::uint64_t expected,
            double actual)
    {
        if (static_cast<double>(expected) == actual)
            return;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f", actual);
        add(field, std::to_string(expected), buf);
    }

    void
    flag(const std::string &field, bool expected, bool actual)
    {
        if (expected != actual)
            return add(field, expected ? "true" : "false",
                       actual ? "true" : "false");
    }
};

} // namespace

DiffResult
runDifferential(const FuzzSpec &spec, OracleMutation mutation)
{
    DiffResult result;
    result.spec = spec;

    // Real side: event-driven simulator, audit on, snapshot at drain.
    Simulator sim(simConfigFor(spec));
    SystemSnapshot snap;
    bool have_snapshot = false;
    sim.setSnapshotObserver([&](const SystemSnapshot &s) {
        snap = s;
        have_snapshot = true;
    });
    std::vector<std::unique_ptr<Workload>> workloads =
        buildTenantWorkloads(spec);
    std::vector<Workload *> ptrs;
    for (auto &w : workloads)
        ptrs.push_back(w.get());
    RunResult run = sim.run(ptrs);
    if (!have_snapshot)
        panic("differential run produced no end-state snapshot");

    // Oracle side: timing-free prediction over the same stream.
    FunctionalOracle oracle(mutation);
    OracleResult predicted = oracle.run(spec);

    Differ diff{result};

    diff.counter("device_memory_bytes", predicted.device_bytes,
                 static_cast<double>(run.device_memory_bytes));
    diff.flag("oversubscribed", predicted.oversubscribed,
              snap.oversubscribed);
    diff.counter("total_frames", predicted.total_frames,
                 static_cast<double>(snap.total_frames));
    diff.counter("free_frames", predicted.free_frames,
                 static_cast<double>(snap.free_frames));

    diff.counter("gmmu.far_faults", predicted.far_faults,
                 run.stat("gmmu.far_faults"));
    diff.counter("gmmu.fault_services", predicted.fault_services,
                 run.stat("gmmu.fault_services"));
    diff.counter("gmmu.skipped_services", predicted.skipped_services,
                 run.stat("gmmu.skipped_services"));
    diff.counter("gmmu.prefetches_trimmed", predicted.prefetches_trimmed,
                 run.stat("gmmu.prefetches_trimmed"));
    diff.counter("gmmu.pages_migrated", predicted.pages_migrated,
                 run.stat("gmmu.pages_migrated"));
    diff.counter("gmmu.pages_prefetched", predicted.pages_prefetched,
                 run.stat("gmmu.pages_prefetched"));
    diff.counter("gmmu.pages_evicted", predicted.pages_evicted,
                 run.stat("gmmu.pages_evicted"));
    diff.counter("gmmu.pages_written_back", predicted.pages_written_back,
                 run.stat("gmmu.pages_written_back"));
    diff.counter("gmmu.pages_thrashed", predicted.pages_thrashed,
                 run.stat("gmmu.pages_thrashed"));
    diff.counter("gmmu.user_prefetched_pages",
                 predicted.user_prefetched_pages,
                 run.stat("gmmu.user_prefetched_pages"));

    // Per-tenant attribution (only registered with >1 tenant).
    if (spec.tenants > 1) {
        for (std::uint32_t t = 0; t < spec.tenants; ++t) {
            const std::string pre = "tenant" + std::to_string(t);
            diff.counter(pre + ".far_faults",
                         predicted.tenant_far_faults[t],
                         run.stat(pre + ".far_faults"));
            diff.counter(pre + ".pages_migrated",
                         predicted.tenant_pages_migrated[t],
                         run.stat(pre + ".pages_migrated"));
            diff.counter(pre + ".pages_evicted",
                         predicted.tenant_pages_evicted[t],
                         run.stat(pre + ".pages_evicted"));
            diff.counter(pre + ".pages_evicted_cross",
                         predicted.tenant_pages_evicted_cross[t],
                         run.stat(pre + ".pages_evicted_cross"));
        }
    }

    // Resident set, in LRU cold-to-hot order: both the membership and
    // the recency ordering must agree page for page.
    if (predicted.resident_cold_to_hot != snap.resident_cold_to_hot) {
        const auto &want = predicted.resident_cold_to_hot;
        const auto &got = snap.resident_cold_to_hot;
        if (want.size() != got.size()) {
            diff.add("resident.count", std::to_string(want.size()),
                     std::to_string(got.size()));
        }
        std::size_t limit = std::min(want.size(), got.size());
        std::size_t reported = 0;
        for (std::size_t i = 0; i < limit && reported < 4; ++i) {
            if (want[i] == got[i])
                continue;
            diff.add("resident[" + std::to_string(i) + "]",
                     std::to_string(want[i]), std::to_string(got[i]));
            ++reported;
        }
        if (result.mismatches.empty()) {
            // Same size, same prefix window -- summarize.
            diff.add("resident", pageListPreview(want),
                     pageListPreview(got));
        }
    }

    // Per-tree to-be-valid sizes, in address order.
    if (predicted.trees.size() != snap.trees.size()) {
        diff.add("trees.count", std::to_string(predicted.trees.size()),
                 std::to_string(snap.trees.size()));
    } else {
        for (std::size_t i = 0; i < predicted.trees.size(); ++i) {
            const TreeValidSize &want = predicted.trees[i];
            const TreeValidSize &got = snap.trees[i];
            std::string tag = "tree[" + std::to_string(i) + "]";
            if (want.base != got.base) {
                diff.add(tag + ".base", std::to_string(want.base),
                         std::to_string(got.base));
                continue;
            }
            if (want.capacity_bytes != got.capacity_bytes) {
                diff.add(tag + ".capacity",
                         std::to_string(want.capacity_bytes),
                         std::to_string(got.capacity_bytes));
            }
            if (want.marked_bytes != got.marked_bytes) {
                diff.add(tag + ".valid_bytes",
                         std::to_string(want.marked_bytes),
                         std::to_string(got.marked_bytes));
            }
        }
    }

    if (result.mismatch) {
        std::ostringstream report;
        report << "DIFFERENTIAL MISMATCH\n"
               << "  spec: " << toSpecString(spec) << "\n";
        if (mutation != OracleMutation::none)
            report << "  oracle mutation: " << toString(mutation) << "\n";
        for (const Mismatch &m : result.mismatches) {
            report << "  " << m.field << ": oracle=" << m.expected
                   << " simulator=" << m.actual << "\n";
        }
        result.report = report.str();
    }
    return result;
}

} // namespace fuzzing
} // namespace uvmsim
