/**
 * @file
 * Timing-free functional oracle of the UVM migration semantics.
 *
 * The oracle consumes a FuzzSpec's canonical access stream (see
 * workload_gen.hh) and predicts the end state the real, event-driven
 * simulator must reach: the exact resident set in LRU order, every
 * tree's to-be-valid size, and the migration/eviction counters.  It is
 * a deliberate *reimplementation* -- its own binary tree, its own
 * stamp-based LRU, its own frame arithmetic -- sharing no code with
 * the GMMU, the policies, the residency tracker or the PCI-e model, so
 * a semantic bug on either side surfaces as a differential mismatch
 * rather than cancelling out.
 *
 * Why a timing-free oracle can be exact: the generated workloads are
 * serialized (one access at a time, long drain gap in between -- see
 * workload_gen.hh), so every fault's full pipeline -- prefetcher
 * selection, trim, eviction, grant, transfer, arrival, MSHR wake-up --
 * completes before the next access issues.  Under that guarantee the
 * only event ordering that matters is the one *within* one fault's
 * synchronous processing, which the oracle replays step for step:
 *
 *   fault -> oversubscription latch (free <= buffer) -> prefetcher
 *   marks tree -> trim to totalFrames/2 nearest the fault -> eviction
 *   loop (reserve recomputed per round, retry once at reserve 0, TBNe
 *   re-marks in-flight picks) -> frame grant -> free-buffer upkeep ->
 *   arrival (fault page inserted then touched by its waiter, prefetch
 *   pages inserted in ascending order).
 *
 * Stochastic policies (Rp, Re) are replicated by drawing from an
 * identical xorshift64* generator at exactly the GMMU's draw sites, in
 * the same order.
 *
 * OracleMutation deliberately mis-implements one rule so the
 * differential harness can prove it catches semantic bugs (the
 * "seeded bug" acceptance test, and uvmsim_fuzz --mutate).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/managed_space.hh" // TreeValidSize (reporting POD only)
#include "testing/workload_gen.hh"

namespace uvmsim
{
namespace fuzzing
{

/** Deliberately seeded semantic bugs, for harness self-tests. */
enum class OracleMutation
{
    none,
    /** TBNe balances ancestors at <= 50% instead of strictly < 50%. */
    tbneBalanceAtHalf,
    /** TBNp balances ancestors at >= 50% instead of strictly > 50%. */
    tbnpBalanceAtHalf,
    /** Eviction forgets to unmark victims in the tree. */
    evictKeepsTreeMark,
};

/** Short names: "none", "tbne-at-half", "tbnp-at-half",
 *  "evict-keeps-mark". */
std::string toString(OracleMutation mutation);

/** Parse a mutation name; fatal() on unknown names. */
OracleMutation mutationFromString(const std::string &name);

/** Everything the oracle predicts about the end of a run. */
struct OracleResult
{
    /** Predicted resident pages, coldest first. */
    std::vector<PageNum> resident_cold_to_hot;

    /** Predicted per-tree to-be-valid sizes, in address order. */
    std::vector<TreeValidSize> trees;

    bool oversubscribed = false;
    std::uint64_t device_bytes = 0;
    std::uint64_t total_frames = 0;
    std::uint64_t free_frames = 0;

    // Predicted counters (the gmmu.* stats of the real run).
    std::uint64_t far_faults = 0;
    std::uint64_t fault_services = 0;
    std::uint64_t skipped_services = 0;
    std::uint64_t prefetches_trimmed = 0;
    std::uint64_t pages_migrated = 0;
    std::uint64_t pages_prefetched = 0;
    std::uint64_t pages_evicted = 0;
    std::uint64_t pages_written_back = 0;
    std::uint64_t pages_thrashed = 0;
    std::uint64_t user_prefetched_pages = 0;

    // Per-tenant predictions (size = spec.tenants; index = TenantId).
    // With one tenant the single entries mirror the global counters.
    std::vector<std::uint64_t> tenant_far_faults;
    std::vector<std::uint64_t> tenant_pages_migrated;
    std::vector<std::uint64_t> tenant_pages_evicted;
    std::vector<std::uint64_t> tenant_pages_evicted_cross;
    std::vector<bool> tenant_oversubscribed;
};

/** The timing-free reference model. */
class FunctionalOracle
{
  public:
    /**
     * One victim-selection round, reported to the eviction observer.
     * Everything is captured *at selection time*, before the eviction
     * is applied, so property tests (e.g. the Fig. 14 LRU-reservation
     * test) can check the selection against the exact LRU state it
     * was made from.
     */
    struct EvictionEvent
    {
        EvictionKind kind = EvictionKind::lru4k;

        /** Reserved cold pages requested for this selection. */
        std::uint64_t reserve_pages = 0;

        /** True when an empty first selection retried at reserve 0. */
        bool used_fallback = false;

        /** The selected victims (TBNe: the drained set). */
        std::vector<PageNum> victims;

        /** The unit the hierarchical traversal chose, if any. */
        std::optional<std::uint64_t> chosen_block;
        std::optional<std::uint64_t> chosen_chunk;

        /** Flat LRU at selection time, coldest first. */
        std::vector<PageNum> pages_cold_to_hot;

        /** 64KB blocks coldest first, with resident-page counts. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>>
            blocks_cold_to_hot;

        /** 2MB chunks coldest first, with resident-page counts. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>>
            chunks_cold_to_hot;
    };

    using EvictionObserver = std::function<void(const EvictionEvent &)>;

    explicit FunctionalOracle(
        OracleMutation mutation = OracleMutation::none)
        : mutation_(mutation)
    {}

    /** Observe every victim selection of subsequent run() calls. */
    void
    setEvictionObserver(EvictionObserver observer)
    {
        observer_ = std::move(observer);
    }

    /** Predict the end state of `spec` (validateSpec()-checked). */
    OracleResult run(const FuzzSpec &spec);

  private:
    OracleMutation mutation_ = OracleMutation::none;
    EvictionObserver observer_;
};

} // namespace fuzzing
} // namespace uvmsim
