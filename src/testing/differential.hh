/**
 * @file
 * Differential runner: real event-driven simulator vs functional
 * oracle over the same FuzzSpec.
 *
 * runDifferential() materializes the spec as a serialized workload,
 * runs the production Simulator with the state auditor enabled and a
 * snapshot observer attached, runs the FunctionalOracle over the same
 * canonical access stream, and diffs the two end states field by
 * field: the resident set in LRU cold-to-hot order, every tree's
 * to-be-valid size, the oversubscription latch, frame accounting, and
 * the full gmmu.* counter set.  Any disagreement produces a
 * structured, human-readable report plus the spec string that
 * reproduces it.
 */

#pragma once

#include <string>
#include <vector>

#include "testing/functional_oracle.hh"
#include "testing/workload_gen.hh"

namespace uvmsim
{
namespace fuzzing
{

/** One field-level disagreement between simulator and oracle. */
struct Mismatch
{
    std::string field;    //!< e.g. "gmmu.pages_evicted", "resident[12]"
    std::string expected; //!< Oracle's prediction.
    std::string actual;   //!< Real simulator's end state.
};

/** Outcome of one differential run. */
struct DiffResult
{
    FuzzSpec spec;
    bool mismatch = false;
    std::vector<Mismatch> mismatches;

    /** Multi-line report: spec string, then one line per mismatch.
     *  Empty when the run matched. */
    std::string report;
};

/** Run `spec` through both sides and diff the end states.  The
 *  mutation (default none) is injected into the oracle only, so a
 *  non-none mutation *should* produce a mismatch -- that is the
 *  harness's self-test. */
DiffResult runDifferential(const FuzzSpec &spec,
                           OracleMutation mutation = OracleMutation::none);

} // namespace fuzzing
} // namespace uvmsim
