#include "functional_oracle.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace uvmsim
{
namespace fuzzing
{

std::string
toString(OracleMutation mutation)
{
    switch (mutation) {
      case OracleMutation::none:
        return "none";
      case OracleMutation::tbneBalanceAtHalf:
        return "tbne-at-half";
      case OracleMutation::tbnpBalanceAtHalf:
        return "tbnp-at-half";
      case OracleMutation::evictKeepsTreeMark:
        return "evict-keeps-mark";
    }
    panic("unknown OracleMutation");
}

OracleMutation
mutationFromString(const std::string &name)
{
    if (name == "none")
        return OracleMutation::none;
    if (name == "tbne-at-half")
        return OracleMutation::tbneBalanceAtHalf;
    if (name == "tbnp-at-half")
        return OracleMutation::tbnpBalanceAtHalf;
    if (name == "evict-keeps-mark")
        return OracleMutation::evictKeepsTreeMark;
    fatal("unknown oracle mutation '%s' (want none|tbne-at-half|"
          "tbnp-at-half|evict-keeps-mark)", name.c_str());
}

namespace
{

/**
 * The oracle's own full binary tree over 64KB leaves.  Counts are kept
 * in 4KB pages rather than bytes, and aggregates are summed on demand
 * from per-leaf popcounts -- structurally different from the
 * production LargePageTree on purpose.
 */
class OracleTree
{
  public:
    OracleTree(Addr base, std::uint64_t capacity_bytes,
               OracleMutation mutation)
        : base_(base),
          num_leaves_(static_cast<std::uint32_t>(capacity_bytes /
                                                 basicBlockSize)),
          mutation_(mutation)
    {
        if (num_leaves_ == 0 || !std::has_single_bit(num_leaves_))
            panic("oracle tree leaf count %u not a power of two",
                  num_leaves_);
        height_ =
            static_cast<std::uint32_t>(std::bit_width(num_leaves_)) - 1;
        bits_.assign(num_leaves_, 0);
    }

    Addr base() const { return base_; }
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(num_leaves_) * basicBlockSize;
    }
    Addr end() const { return base_ + capacityBytes(); }

    bool
    covers(PageNum page) const
    {
        Addr a = pageBase(page);
        return a >= base_ && a < end();
    }

    std::uint32_t
    leafOf(PageNum page) const
    {
        return static_cast<std::uint32_t>((pageBase(page) - base_) >>
                                          basicBlockShift);
    }

    PageNum
    leafFirstPage(std::uint32_t leaf) const
    {
        return pageOf(base_ + static_cast<Addr>(leaf) * basicBlockSize);
    }

    bool
    marked(PageNum page) const
    {
        std::uint32_t leaf = leafOf(page);
        return (bits_[leaf] >> (page - leafFirstPage(leaf))) & 1u;
    }

    void
    mark(PageNum page)
    {
        std::uint32_t leaf = leafOf(page);
        bits_[leaf] |= static_cast<std::uint16_t>(
            1u << (page - leafFirstPage(leaf)));
    }

    void
    unmark(PageNum page)
    {
        std::uint32_t leaf = leafOf(page);
        bits_[leaf] &= static_cast<std::uint16_t>(
            ~(1u << (page - leafFirstPage(leaf))));
    }

    std::uint64_t
    markedPagesTotal() const
    {
        return markedPagesUnder(height_, 0);
    }

    /** TBNp: fill the faulted leaf, then balance ancestors whose
     *  to-be-valid size strictly exceeds half their capacity. */
    std::vector<PageNum>
    faultFill(PageNum faulty_page)
    {
        std::uint32_t leaf = leafOf(faulty_page);
        std::vector<PageNum> out;
        PageNum first = leafFirstPage(leaf);
        for (std::uint32_t p = 0; p < pagesPerBasicBlock; ++p) {
            if (!((bits_[leaf] >> p) & 1u)) {
                bits_[leaf] |= static_cast<std::uint16_t>(1u << p);
                out.push_back(first + p);
            }
        }
        for (std::uint32_t h = 1; h <= height_; ++h) {
            std::uint32_t node = leaf >> h;
            std::uint64_t marked_pages = markedPagesUnder(h, node);
            std::uint64_t cap_pages = capacityPagesAt(h);
            bool balance = mutation_ == OracleMutation::tbnpBalanceAtHalf
                               ? marked_pages * 2 >= cap_pages
                               : marked_pages * 2 > cap_pages;
            if (!balance)
                continue;
            std::uint64_t lm = markedPagesUnder(h - 1, 2 * node);
            std::uint64_t rm = markedPagesUnder(h - 1, 2 * node + 1);
            if (lm == rm)
                continue;
            if (lm < rm)
                fillInto(h - 1, 2 * node, rm - lm, out);
            else
                fillInto(h - 1, 2 * node + 1, lm - rm, out);
        }
        std::sort(out.begin(), out.end());
        return out;
    }

    /** TBNe: drain the victim leaf, then balance ancestors whose
     *  valid size falls strictly below half their capacity. */
    std::vector<PageNum>
    evictDrain(std::uint32_t victim_leaf)
    {
        std::vector<PageNum> out;
        PageNum first = leafFirstPage(victim_leaf);
        for (std::uint32_t p = 0; p < pagesPerBasicBlock; ++p) {
            if ((bits_[victim_leaf] >> p) & 1u) {
                bits_[victim_leaf] &=
                    static_cast<std::uint16_t>(~(1u << p));
                out.push_back(first + p);
            }
        }
        for (std::uint32_t h = 1; h <= height_; ++h) {
            std::uint32_t node = victim_leaf >> h;
            std::uint64_t marked_pages = markedPagesUnder(h, node);
            std::uint64_t cap_pages = capacityPagesAt(h);
            bool balance = mutation_ == OracleMutation::tbneBalanceAtHalf
                               ? marked_pages * 2 <= cap_pages
                               : marked_pages * 2 < cap_pages;
            if (!balance)
                continue;
            std::uint64_t lm = markedPagesUnder(h - 1, 2 * node);
            std::uint64_t rm = markedPagesUnder(h - 1, 2 * node + 1);
            if (lm == rm)
                continue;
            if (lm > rm)
                drainFrom(h - 1, 2 * node, lm - rm, out);
            else
                drainFrom(h - 1, 2 * node + 1, rm - lm, out);
        }
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::uint64_t
    capacityPagesAt(std::uint32_t height) const
    {
        return pagesPerBasicBlock << height;
    }

    std::uint64_t
    markedPagesUnder(std::uint32_t height, std::uint32_t index) const
    {
        std::uint32_t first = index << height;
        std::uint64_t pages = 0;
        for (std::uint32_t l = first; l < first + (1u << height); ++l)
            pages += std::popcount(bits_[l]);
        return pages;
    }

    void
    fillInto(std::uint32_t height, std::uint32_t index,
             std::uint64_t pages, std::vector<PageNum> &out)
    {
        for (std::uint64_t filled = 0; filled < pages; ++filled) {
            std::uint32_t h = height, i = index;
            while (h > 0) {
                std::uint64_t cap_child = capacityPagesAt(h - 1);
                std::uint64_t lm = markedPagesUnder(h - 1, 2 * i);
                std::uint64_t rm = markedPagesUnder(h - 1, 2 * i + 1);
                bool left_room = lm < cap_child;
                bool right_room = rm < cap_child;
                if (!left_room && !right_room)
                    return;
                i = (left_room && (!right_room || lm <= rm)) ? 2 * i
                                                             : 2 * i + 1;
                --h;
            }
            if (bits_[i] == 0xffff)
                return;
            std::uint32_t bit = std::countr_one(bits_[i]);
            bits_[i] |= static_cast<std::uint16_t>(1u << bit);
            out.push_back(leafFirstPage(i) + bit);
        }
    }

    void
    drainFrom(std::uint32_t height, std::uint32_t index,
              std::uint64_t pages, std::vector<PageNum> &out)
    {
        for (std::uint64_t drained = 0; drained < pages; ++drained) {
            std::uint32_t h = height, i = index;
            while (h > 0) {
                std::uint64_t lm = markedPagesUnder(h - 1, 2 * i);
                std::uint64_t rm = markedPagesUnder(h - 1, 2 * i + 1);
                if (lm == 0 && rm == 0)
                    return;
                i = (lm > 0 && (rm == 0 || lm >= rm)) ? 2 * i : 2 * i + 1;
                --h;
            }
            if (bits_[i] == 0)
                return;
            std::uint32_t bit =
                static_cast<std::uint32_t>(
                    std::bit_width(static_cast<unsigned>(bits_[i]))) - 1;
            bits_[i] &= static_cast<std::uint16_t>(~(1u << bit));
            out.push_back(leafFirstPage(i) + bit);
        }
    }

    Addr base_;
    std::uint32_t num_leaves_;
    std::uint32_t height_ = 0;
    OracleMutation mutation_;
    std::vector<std::uint16_t> bits_;
};

/**
 * The oracle's LRU: a monotonic stamp per page / per 64KB block / per
 * 2MB chunk, updated on every touch and kept until the unit empties
 * (removals deliberately do NOT refresh a unit's recency, matching the
 * production tracker's list semantics).  Cold-to-hot is ascending
 * stamp order.  The random pool is the exact vector-plus-swap-remove
 * construction, so Re's index draws land on the same pages.
 */
class OracleLru
{
  public:
    bool tracked(PageNum page) const { return page_stamp_.count(page); }
    std::uint64_t size() const { return page_stamp_.size(); }

    void
    insert(PageNum page)
    {
        if (tracked(page))
            panic("oracle LRU: page %llu already resident",
                  static_cast<unsigned long long>(page));
        stampPage(page);
        touchHierarchy(page);
        std::uint64_t block = basicBlockOf(pageBase(page));
        ChunkInfo &chunk = chunks_.at(largePageOf(pageBase(page)));
        ++chunk.blocks.at(block).pages;
        ++chunk.pages;
        random_pos_[page] = random_pool_.size();
        random_pool_.push_back(page);
    }

    void
    touch(PageNum page)
    {
        if (!tracked(page))
            return; // mirrors the tracker's tolerated race no-op
        stampPage(page);
        touchHierarchy(page);
    }

    void
    evict(PageNum page)
    {
        auto it = page_stamp_.find(page);
        if (it == page_stamp_.end())
            panic("oracle LRU: evicting non-resident page %llu",
                  static_cast<unsigned long long>(page));
        pages_by_stamp_.erase(it->second);
        page_stamp_.erase(it);

        std::uint64_t block = basicBlockOf(pageBase(page));
        std::uint64_t slot = largePageOf(pageBase(page));
        ChunkInfo &chunk = chunks_.at(slot);
        BlockInfo &binfo = chunk.blocks.at(block);
        --binfo.pages;
        --chunk.pages;
        if (binfo.pages == 0) {
            chunk.blocks_by_stamp.erase(binfo.stamp);
            chunk.blocks.erase(block);
        }
        if (chunk.pages == 0) {
            chunks_by_stamp_.erase(chunk.stamp);
            chunks_.erase(slot);
        }

        std::size_t idx = random_pos_.at(page);
        PageNum last = random_pool_.back();
        random_pool_[idx] = last;
        random_pos_[last] = idx;
        random_pool_.pop_back();
        random_pos_.erase(page);
    }

    std::vector<PageNum>
    coldToHot() const
    {
        std::vector<PageNum> out;
        out.reserve(pages_by_stamp_.size());
        for (const auto &[stamp, page] : pages_by_stamp_)
            out.push_back(page);
        return out;
    }

    std::optional<PageNum>
    lruVictim(std::uint64_t skip_pages) const
    {
        if (skip_pages >= pages_by_stamp_.size())
            return std::nullopt;
        auto it = pages_by_stamp_.begin();
        std::advance(it, static_cast<long>(skip_pages));
        return it->second;
    }

    std::optional<PageNum>
    mruVictim() const
    {
        if (pages_by_stamp_.empty())
            return std::nullopt;
        return pages_by_stamp_.rbegin()->second;
    }

    std::optional<PageNum>
    randomVictim(Rng &rng) const
    {
        if (random_pool_.empty())
            return std::nullopt;
        return random_pool_[rng.below(random_pool_.size())];
    }

    std::optional<std::uint64_t>
    lruBlockVictim(std::uint64_t skip_pages) const
    {
        std::uint64_t to_skip = skip_pages;
        for (const auto &[cstamp, slot] : chunks_by_stamp_) {
            const ChunkInfo &chunk = chunks_.at(slot);
            for (const auto &[bstamp, block] : chunk.blocks_by_stamp) {
                std::uint64_t pages = chunk.blocks.at(block).pages;
                if (to_skip >= pages) {
                    to_skip -= pages;
                    continue;
                }
                return block;
            }
        }
        return std::nullopt;
    }

    std::optional<std::uint64_t>
    lruChunkVictim(std::uint64_t skip_pages) const
    {
        std::uint64_t to_skip = skip_pages;
        for (const auto &[cstamp, slot] : chunks_by_stamp_) {
            std::uint64_t pages = chunks_.at(slot).pages;
            if (to_skip >= pages) {
                to_skip -= pages;
                continue;
            }
            return slot;
        }
        return std::nullopt;
    }

    std::vector<PageNum>
    pagesInBlock(std::uint64_t block) const
    {
        std::vector<PageNum> out;
        PageNum first = pageOf(basicBlockBase(block));
        for (std::uint64_t p = 0; p < pagesPerBasicBlock; ++p)
            if (tracked(first + p))
                out.push_back(first + p);
        return out;
    }

    std::vector<PageNum>
    pagesInChunk(std::uint64_t slot) const
    {
        std::vector<PageNum> out;
        PageNum first = pageOf(static_cast<Addr>(slot) << largePageShift);
        for (std::uint64_t p = 0; p < pagesPerLargePage; ++p)
            if (tracked(first + p))
                out.push_back(first + p);
        return out;
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    blocksColdToHot() const
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        for (const auto &[cstamp, slot] : chunks_by_stamp_) {
            const ChunkInfo &chunk = chunks_.at(slot);
            for (const auto &[bstamp, block] : chunk.blocks_by_stamp)
                out.emplace_back(block, chunk.blocks.at(block).pages);
        }
        return out;
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    chunksColdToHot() const
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        for (const auto &[cstamp, slot] : chunks_by_stamp_)
            out.emplace_back(slot, chunks_.at(slot).pages);
        return out;
    }

  private:
    struct BlockInfo
    {
        std::uint64_t stamp = 0;
        std::uint64_t pages = 0;
    };

    struct ChunkInfo
    {
        std::uint64_t stamp = 0;
        std::uint64_t pages = 0;
        /** Blocks of this chunk, ascending stamp = cold to hot. */
        std::map<std::uint64_t, std::uint64_t> blocks_by_stamp;
        std::unordered_map<std::uint64_t, BlockInfo> blocks;
    };

    void
    stampPage(PageNum page)
    {
        auto it = page_stamp_.find(page);
        if (it != page_stamp_.end())
            pages_by_stamp_.erase(it->second);
        std::uint64_t stamp = ++next_stamp_;
        page_stamp_[page] = stamp;
        pages_by_stamp_[stamp] = page;
    }

    void
    touchHierarchy(PageNum page)
    {
        std::uint64_t block = basicBlockOf(pageBase(page));
        std::uint64_t slot = largePageOf(pageBase(page));

        auto [cit, chunk_new] = chunks_.try_emplace(slot);
        ChunkInfo &chunk = cit->second;
        if (!chunk_new)
            chunks_by_stamp_.erase(chunk.stamp);
        chunk.stamp = ++next_stamp_;
        chunks_by_stamp_[chunk.stamp] = slot;

        auto [bit, block_new] = chunk.blocks.try_emplace(block);
        BlockInfo &binfo = bit->second;
        if (!block_new)
            chunk.blocks_by_stamp.erase(binfo.stamp);
        binfo.stamp = ++next_stamp_;
        chunk.blocks_by_stamp[binfo.stamp] = block;
    }

    std::uint64_t next_stamp_ = 0;
    std::map<std::uint64_t, PageNum> pages_by_stamp_;
    std::unordered_map<PageNum, std::uint64_t> page_stamp_;
    std::map<std::uint64_t, std::uint64_t> chunks_by_stamp_;
    std::unordered_map<std::uint64_t, ChunkInfo> chunks_;
    std::vector<PageNum> random_pool_;
    std::unordered_map<PageNum, std::size_t> random_pos_;
};

/** One oracle run's working state and step functions. */
struct OracleMachine
{
    const FuzzSpec &spec;
    OracleMutation mutation;
    const FunctionalOracle::EvictionObserver &observer;

    std::vector<OracleTree> trees;
    std::unordered_map<std::uint64_t, std::size_t> slot_to_tree;
    /** One tracker mirror per tenant under quota arbitration, one
     *  shared otherwise -- exactly the GMMU's residency_ shape. */
    std::vector<OracleLru> lrus;
    Rng rng;
    std::unordered_set<PageNum> dirty;
    std::unordered_set<PageNum> ever_evicted;
    std::unordered_set<PageNum> in_flight;

    std::uint64_t total_frames = 0;
    std::uint64_t free_frames = 0;
    std::uint64_t buffer_pages = 0;
    double reserve_fraction = 0.0;
    bool oversubscribed = false;
    std::vector<char> tenant_oversub;
    std::uint32_t last_tenant = 0;
    std::uint64_t padded_per_tenant = 0;
    std::uint64_t padded_total = 0;

    OracleResult res;

    OracleMachine(const FuzzSpec &s, OracleMutation m,
                  const FunctionalOracle::EvictionObserver &obs)
        : spec(s), mutation(m), observer(obs), rng(s.seed)
    {
        // Every tenant replays the alloc list in its own VA partition.
        std::uint64_t padded = 0;
        for (std::uint32_t tn = 0; tn < spec.tenants; ++tn) {
            const Addr off = static_cast<Addr>(tn) * tenantVaStride;
            for (const AllocLayout &alloc : layoutAllocations(spec)) {
                if (tn == 0)
                    padded += alloc.padded_bytes;
                for (const TreeLayout &t : alloc.trees) {
                    std::size_t index = trees.size();
                    trees.emplace_back(off + t.base, t.capacity_bytes,
                                       mutation);
                    for (Addr a = off + t.base;
                         a < off + t.base + t.capacity_bytes;
                         a += largePageSize)
                        slot_to_tree[largePageOf(a)] = index;
                    // A sub-2MB remainder tree still owns its slot.
                    slot_to_tree[largePageOf(off + t.base)] = index;
                }
            }
        }
        padded_per_tenant = padded;
        padded_total = padded * spec.tenants;
        padded = padded_total;

        bool per_tenant_tracking =
            spec.tenants > 1 &&
            spec.tenant_eviction != TenantEvictionKind::globalLru;
        lrus.resize(per_tenant_tracking ? spec.tenants : 1);
        tenant_oversub.assign(spec.tenants, 0);
        res.tenant_far_faults.assign(spec.tenants, 0);
        res.tenant_pages_migrated.assign(spec.tenants, 0);
        res.tenant_pages_evicted.assign(spec.tenants, 0);
        res.tenant_pages_evicted_cross.assign(spec.tenants, 0);

        std::uint64_t device = 0;
        if (spec.oversubscription_percent > 100.0) {
            device = static_cast<std::uint64_t>(
                static_cast<double>(padded) * 100.0 /
                spec.oversubscription_percent);
        } else {
            device = padded + largePageSize;
        }
        device = roundUpToPages(device);

        res.device_bytes = device;
        total_frames = device / pageSize;
        free_frames = total_frames;
        buffer_pages = static_cast<std::uint64_t>(
            spec.free_buffer_percent / 100.0 *
            static_cast<double>(total_frames));
        reserve_fraction = spec.lru_reserve_percent / 100.0;
    }

    OracleTree *
    treeFor(PageNum page)
    {
        auto it = slot_to_tree.find(largePageOf(pageBase(page)));
        if (it == slot_to_tree.end())
            return nullptr;
        OracleTree &tree = trees[it->second];
        return tree.covers(page) ? &tree : nullptr;
    }

    /** Owning tenant of a page (mirror of TenantSet::tenantOf). */
    std::uint32_t
    tenantOf(PageNum page) const
    {
        if (spec.tenants == 1)
            return 0;
        std::uint32_t t =
            static_cast<std::uint32_t>(tenantOfPage(page));
        return t < spec.tenants ? t : 0;
    }

    /** The tracker mirror a page lives in (GMMU trackerFor). */
    OracleLru &
    lruFor(PageNum page)
    {
        return lrus.size() > 1 ? lrus[tenantOf(page)] : lrus.front();
    }

    void
    latch(std::uint32_t tenant)
    {
        if (tenant_oversub[tenant])
            return;
        tenant_oversub[tenant] = 1;
        oversubscribed = true;
    }

    /** One victim selection from one tracker mirror; TBNe mutates
     *  its tree here, like the production policy. */
    std::vector<PageNum>
    selectVictims(OracleLru &lru, std::uint64_t reserve,
                  std::optional<std::uint64_t> &chosen_block,
                  std::optional<std::uint64_t> &chosen_chunk)
    {
        switch (spec.eviction) {
          case EvictionKind::lru4k: {
            auto victim = lru.lruVictim(reserve);
            if (!victim)
                return {};
            return {*victim};
          }
          case EvictionKind::random4k: {
            auto victim = lru.randomVictim(rng);
            if (!victim)
                return {};
            return {*victim};
          }
          case EvictionKind::sequentialLocal: {
            auto block = lru.lruBlockVictim(reserve);
            if (!block)
                return {};
            chosen_block = block;
            return lru.pagesInBlock(*block);
          }
          case EvictionKind::treeBasedNeighborhood: {
            auto block = lru.lruBlockVictim(reserve);
            if (!block)
                return {};
            chosen_block = block;
            PageNum first_page = pageOf(basicBlockBase(*block));
            OracleTree *tree = treeFor(first_page);
            if (!tree)
                panic("oracle: TBNe victim block has no tree");
            return tree->evictDrain(tree->leafOf(first_page));
          }
          case EvictionKind::lru2mb: {
            auto slot = lru.lruChunkVictim(reserve);
            if (!slot)
                return {};
            chosen_chunk = slot;
            return lru.pagesInChunk(*slot);
          }
          case EvictionKind::mru4k: {
            auto victim = lru.mruVictim();
            if (!victim)
                return {};
            return {*victim};
          }
        }
        panic("unknown EvictionKind");
    }

    std::uint64_t
    applyEviction(const std::vector<PageNum> &victims,
                  std::uint32_t requester)
    {
        struct Victim
        {
            PageNum page;
            bool dirty;
        };
        std::vector<Victim> evicted;
        for (PageNum p : victims) {
            OracleLru &lru = lruFor(p);
            if (!lru.tracked(p)) {
                // TBNe's drain can pick pages whose migration is in
                // flight; their marks are restored and they survive.
                if (in_flight.count(p)) {
                    if (OracleTree *tree = treeFor(p)) {
                        if (!tree->marked(p))
                            tree->mark(p);
                    }
                }
                continue;
            }
            bool was_dirty = dirty.erase(p) > 0;
            lru.evict(p);
            if (OracleTree *tree = treeFor(p)) {
                if (mutation != OracleMutation::evictKeepsTreeMark)
                    tree->unmark(p);
            }
            ever_evicted.insert(p);
            ++res.pages_evicted;
            std::uint32_t owner = tenantOf(p);
            ++res.tenant_pages_evicted[owner];
            if (owner != requester)
                ++res.tenant_pages_evicted_cross[owner];
            evicted.push_back(Victim{p, was_dirty});
        }
        if (evicted.empty())
            return 0;

        bool whole_unit =
            spec.eviction == EvictionKind::sequentialLocal ||
            spec.eviction == EvictionKind::treeBasedNeighborhood ||
            spec.eviction == EvictionKind::lru2mb;
        if (whole_unit) {
            // Whole contiguous runs go back over PCI-e, dirty or not;
            // their frames free once the (instantaneous, here)
            // write-back completes.
            std::size_t i = 0;
            while (i < evicted.size()) {
                std::size_t j = i + 1;
                while (j < evicted.size() &&
                       evicted[j].page == evicted[j - 1].page + 1)
                    ++j;
                res.pages_written_back += j - i;
                free_frames += j - i;
                i = j;
            }
        } else {
            for (const Victim &v : evicted) {
                if (v.dirty)
                    ++res.pages_written_back;
                ++free_frames;
            }
        }
        return evicted.size();
    }

    /** Mirror of Gmmu::pickVictimTenant: the tenant furthest above
     *  its frame entitlement pays; ties and under-entitlement resolve
     *  to the requester, then the largest resident set. */
    std::uint32_t
    pickVictimTenant(std::uint32_t requester) const
    {
        const std::uint32_t n =
            static_cast<std::uint32_t>(lrus.size());
        std::uint64_t total = total_frames;

        std::uint32_t best = requester;
        bool have_best = false;
        std::int64_t best_over = 0;
        std::uint32_t largest = requester;
        std::uint64_t largest_size = 0;

        for (std::uint32_t t = 0; t < n; ++t) {
            std::uint64_t resident = lrus[t].size();
            if (resident == 0)
                continue;
            std::uint64_t entitlement;
            if (spec.tenant_eviction ==
                    TenantEvictionKind::proportionalShare &&
                padded_total > 0) {
                entitlement = static_cast<std::uint64_t>(
                    static_cast<unsigned __int128>(total) *
                    padded_per_tenant / padded_total);
            } else {
                entitlement = total / n + (t < total % n ? 1 : 0);
            }
            std::int64_t over = static_cast<std::int64_t>(resident) -
                                static_cast<std::int64_t>(entitlement);
            if (!have_best || over > best_over) {
                best = t;
                best_over = over;
                have_best = true;
            }
            if (resident > largest_size) {
                largest = t;
                largest_size = resident;
            }
        }
        if (have_best && best_over > 0)
            return best;
        if (requester < n && lrus[requester].size() > 0)
            return requester;
        return largest;
    }

    bool
    evictUntil(std::uint64_t target_frames, std::uint32_t requester)
    {
        const std::uint32_t trackers =
            static_cast<std::uint32_t>(lrus.size());
        while (free_frames < target_frames) {
            // The arbiter's pick goes first; the remaining trackers
            // are deterministic fallbacks, exactly like the GMMU.
            std::uint32_t primary =
                trackers > 1 ? pickVictimTenant(requester) : 0;
            std::vector<PageNum> victims;
            std::uint64_t reserve = 0;
            std::uint32_t chosen = primary;
            std::optional<std::uint64_t> chosen_block, chosen_chunk;
            bool fallback = false;
            for (std::uint32_t k = 0; k < trackers && victims.empty();
                 ++k) {
                std::uint32_t ti = (primary + k) % trackers;
                OracleLru &lru = lrus[ti];
                reserve = static_cast<std::uint64_t>(
                    reserve_fraction *
                    static_cast<double>(lru.size()));
                chosen_block.reset();
                chosen_chunk.reset();
                fallback = false;
                victims = selectVictims(lru, reserve, chosen_block,
                                        chosen_chunk);
                if (victims.empty() && reserve > 0) {
                    fallback = true;
                    victims = selectVictims(lru, 0, chosen_block,
                                            chosen_chunk);
                }
                if (!victims.empty())
                    chosen = ti;
            }
            if (victims.empty())
                return false;

            if (observer) {
                OracleLru &lru = lrus[chosen];
                FunctionalOracle::EvictionEvent event;
                event.kind = spec.eviction;
                event.pages_cold_to_hot = lru.coldToHot();
                event.blocks_cold_to_hot = lru.blocksColdToHot();
                event.chunks_cold_to_hot = lru.chunksColdToHot();
                event.reserve_pages = fallback ? 0 : reserve;
                event.used_fallback = fallback;
                event.victims = victims;
                event.chosen_block = chosen_block;
                event.chosen_chunk = chosen_chunk;
                observer(event);
            }

            if (applyEviction(victims, requester) == 0)
                return false;
        }
        return true;
    }

    void
    maintainFreeBuffer()
    {
        if (buffer_pages == 0)
            return;
        if (free_frames >= buffer_pages)
            return;
        std::uint64_t used = total_frames - free_frames;
        if (used + buffer_pages >= total_frames)
            latch(last_tenant);
        if (oversubscribed)
            evictUntil(buffer_pages, last_tenant);
    }

    /**
     * One migration, end to end: accounting, frame acquisition
     * (evicting as needed), free-buffer upkeep, and the arrival -- the
     * fault page lands first and is immediately touched by its MSHR
     * waiter, then the prefetched pages land in ascending order.
     */
    void
    migrate(const std::vector<PageNum> &pages,
            std::optional<PageNum> faulty, bool fault_is_write)
    {
        res.pages_migrated += pages.size();
        res.tenant_pages_migrated[tenantOf(pages.front())] +=
            pages.size();
        res.pages_prefetched += pages.size() - (faulty ? 1 : 0);
        for (PageNum p : pages) {
            if (ever_evicted.count(p))
                ++res.pages_thrashed;
            in_flight.insert(p);
        }

        if (pages.size() > total_frames)
            panic("oracle: migration of %zu pages exceeds device",
                  pages.size());
        std::uint32_t requester = tenantOf(pages.front());
        last_tenant = requester;
        if (free_frames < pages.size()) {
            latch(requester);
            if (!evictUntil(pages.size(), requester))
                panic("oracle: device exhausted and nothing evictable");
        }
        free_frames -= pages.size();
        maintainFreeBuffer();

        if (faulty) {
            lruFor(*faulty).insert(*faulty);
            if (fault_is_write)
                dirty.insert(*faulty);
            lruFor(*faulty).touch(*faulty);
        }
        for (PageNum p : pages) {
            if (faulty && p == *faulty)
                continue;
            lruFor(p).insert(p);
        }
        in_flight.clear();
    }

    void
    fault(PageNum page, bool is_write)
    {
        // The paper's trigger: the latch flips *before* the migration
        // decision once free frames dip to the buffer threshold.  The
        // latch (and the service that set it) is per tenant.
        std::uint32_t tenant = tenantOf(page);
        last_tenant = tenant;
        if (free_frames <= buffer_pages)
            latch(tenant);

        OracleTree *tree = treeFor(page);
        if (!tree)
            panic("oracle: fault on unmanaged page %llu",
                  static_cast<unsigned long long>(page));
        if (tree->marked(page)) {
            // Marked but not resident: the real GMMU skips the service
            // (a migration is presumed in flight).  Serialized
            // workloads make this unreachable for a correct model, so
            // with no mutation it is a harness bug; under a seeded
            // mutation (e.g. evictKeepsTreeMark) it is the very
            // divergence the differential run must surface, so mirror
            // the real accounting and carry on.
            if (mutation == OracleMutation::none)
                panic("oracle: fault on in-flight page %llu -- the "
                      "workload is not serialized",
                      static_cast<unsigned long long>(page));
            ++res.skipped_services;
            return;
        }

        ++res.far_faults;
        ++res.fault_services;
        ++res.tenant_far_faults[tenant];

        PrefetcherKind active = tenant_oversub[tenant]
                                    ? spec.prefetcher_after
                                    : spec.prefetcher_before;
        std::vector<PageNum> pages = selectPrefetch(active, page, *tree);

        const std::uint64_t limit =
            std::max<std::uint64_t>(1, total_frames / 2);
        if (pages.size() > limit) {
            std::stable_sort(pages.begin(), pages.end(),
                             [page](PageNum a, PageNum b) {
                                 auto da = a > page ? a - page : page - a;
                                 auto db = b > page ? b - page : page - b;
                                 return da < db;
                             });
            for (std::size_t i = limit; i < pages.size(); ++i)
                tree->unmark(pages[i]);
            pages.resize(limit);
            std::sort(pages.begin(), pages.end());
            ++res.prefetches_trimmed;
        }

        migrate(pages, page, is_write);
    }

    std::vector<PageNum>
    selectPrefetch(PrefetcherKind kind, PageNum fault, OracleTree &tree)
    {
        switch (kind) {
          case PrefetcherKind::none: {
            tree.mark(fault);
            return {fault};
          }
          case PrefetcherKind::random: {
            tree.mark(fault);
            std::uint64_t total = tree.capacityBytes() / pageSize;
            std::uint64_t invalid = total - tree.markedPagesTotal();
            if (invalid == 0)
                return {fault};
            std::uint64_t k = rng.below(invalid);
            PageNum first = pageOf(tree.base());
            for (PageNum p = first; p < first + total; ++p) {
                if (tree.marked(p))
                    continue;
                if (k == 0) {
                    tree.mark(p);
                    std::vector<PageNum> out{fault, p};
                    std::sort(out.begin(), out.end());
                    return out;
                }
                --k;
            }
            panic("oracle: Rp candidate scan fell through");
          }
          case PrefetcherKind::sequentialLocal: {
            std::uint32_t leaf = tree.leafOf(fault);
            PageNum first = tree.leafFirstPage(leaf);
            std::vector<PageNum> out;
            for (std::uint64_t p = 0; p < pagesPerBasicBlock; ++p) {
                if (!tree.marked(first + p)) {
                    tree.mark(first + p);
                    out.push_back(first + p);
                }
            }
            return out;
          }
          case PrefetcherKind::treeBasedNeighborhood:
            return tree.faultFill(fault);
          case PrefetcherKind::sequentialGlobal: {
            tree.mark(fault);
            std::vector<PageNum> out{fault};
            PageNum first = pageOf(tree.base());
            PageNum end = pageOf(tree.end() - 1) + 1;
            std::uint64_t taken = 0;
            for (PageNum p = first;
                 p < end && taken < pagesPerBasicBlock; ++p) {
                if (tree.marked(p))
                    continue;
                tree.mark(p);
                out.push_back(p);
                ++taken;
            }
            std::sort(out.begin(), out.end());
            return out;
          }
          case PrefetcherKind::zhengLocality: {
            std::vector<PageNum> out;
            PageNum end = pageOf(tree.end() - 1) + 1;
            for (PageNum p = fault; p < end && p < fault + 128; ++p) {
                if (tree.marked(p))
                    continue;
                tree.mark(p);
                out.push_back(p);
            }
            return out;
          }
        }
        panic("unknown PrefetcherKind");
    }

    void
    userPrefetch()
    {
        const std::uint64_t max_batch = std::max<std::uint64_t>(
            pagesPerBasicBlock,
            std::min<std::uint64_t>(pagesPerLargePage,
                                    total_frames / 4));
        // Tenant-major, allocation-minor: the driver's order.
        for (std::uint32_t tn = 0; tn < spec.tenants; ++tn) {
            const Addr off = static_cast<Addr>(tn) * tenantVaStride;
            for (const AllocLayout &alloc : layoutAllocations(spec)) {
                PageNum first = pageOf(off + alloc.base);
                PageNum last =
                    pageOf(off + alloc.base + alloc.padded_bytes - 1);
                std::vector<PageNum> batch;
                auto flush = [&]() {
                    if (batch.empty())
                        return;
                    res.user_prefetched_pages += batch.size();
                    migrate(batch, std::nullopt, false);
                    batch.clear();
                };
                for (PageNum p = first; p <= last; ++p) {
                    OracleTree *tree = treeFor(p);
                    if (!tree || tree->marked(p) ||
                        lruFor(p).tracked(p))
                        continue;
                    if (!batch.empty() &&
                        (batch.size() >= max_batch ||
                         largePageOf(pageBase(p)) !=
                             largePageOf(pageBase(batch.back()))))
                        flush();
                    tree->mark(p);
                    batch.push_back(p);
                }
                flush();
            }
        }
    }

    OracleResult
    finish()
    {
        // Trackers concatenate in index order, like the GMMU's
        // snapshot of residency_.
        for (OracleLru &lru : lrus) {
            std::vector<PageNum> cold = lru.coldToHot();
            res.resident_cold_to_hot.insert(
                res.resident_cold_to_hot.end(), cold.begin(),
                cold.end());
        }
        for (std::uint32_t t = 0; t < spec.tenants; ++t)
            res.tenant_oversubscribed.push_back(
                tenant_oversub[t] != 0);
        for (const OracleTree &tree : trees)
            res.trees.push_back(
                TreeValidSize{tree.base(), tree.capacityBytes(),
                              tree.markedPagesTotal() * pageSize});
        res.oversubscribed = oversubscribed;
        res.total_frames = total_frames;
        res.free_frames = free_frames;
        return std::move(res);
    }
};

} // namespace

OracleResult
FunctionalOracle::run(const FuzzSpec &spec)
{
    validateSpec(spec);
    OracleMachine machine(spec, mutation_, observer_);

    if (spec.user_prefetch)
        machine.userPrefetch();

    for (const FuzzAccess &access : accessStream(spec)) {
        PageNum page = pageOf(access.addr);
        if (machine.lruFor(page).tracked(page)) {
            if (access.is_write)
                machine.dirty.insert(page);
            machine.lruFor(page).touch(page);
            continue;
        }
        machine.fault(page, access.is_write);
    }

    return machine.finish();
}

} // namespace fuzzing
} // namespace uvmsim
