/**
 * @file
 * Seeded random workload generation for differential fuzzing.
 *
 * A FuzzSpec is a small, fully serializable description of a synthetic
 * UVM workload: a list of managed allocations (mixed sizes, including
 * non-2MB remainders that exercise the 2^i * 64KB rounding path), a
 * list of kernels each replaying one access pattern over one
 * allocation, the policy pair under test, and the memory-pressure
 * knobs (oversubscription ratio, LRU reservation, free-page buffer,
 * optional user-directed prefetch).  generateSpec() draws a spec
 * deterministically from a seed; toSpecString()/specFromString() give
 * a one-token round-trippable encoding so any failure reproduces with
 * `uvmsim_fuzz --repro=<spec>`.
 *
 * The generated workloads are *serialized*: one thread block, one
 * warp, one coalesced access per warp op, with a long pure-compute
 * drain gap before every access.  The gap (default 10ms, versus a
 * 45us fault service plus sub-millisecond PCI-e transfers at our
 * footprints) guarantees that each access's entire migration pipeline
 * -- fault service, prefetch transfers, write-backs -- has drained
 * before the next access issues.  That makes the end state of the
 * real, event-driven simulator exactly predictable by the timing-free
 * FunctionalOracle (see functional_oracle.hh), page-for-page and
 * LRU-position-for-LRU-position.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/simulator.hh"
#include "core/policies.hh"
#include "core/tenant.hh"
#include "mem/types.hh"
#include "workloads/workload.hh"

namespace uvmsim
{
namespace fuzzing
{

/** One managed allocation of the synthetic workload. */
struct AllocSpec
{
    std::uint64_t bytes = basicBlockSize;
};

/** Per-kernel page visit order. */
enum class AccessPattern
{
    streaming, //!< Consecutive pages from a random start, wrapping.
    strided,   //!< Fixed page stride from a random start, wrapping.
    random,    //!< Uniformly random pages.
    hotspot,   //!< 80% in a small hot region, 20% uniform.
    zipfian,   //!< Zipf-skewed ranks (the database buffer-pool mix).
    kvGrowth,  //!< Monotonically growing prefix: tail appends
               //!< alternating with uniform reads of the grown part
               //!< (the LLM KV-cache shape).
};

/** Short name ("stream", "stride", "rand", "hot", "zipf", "kvgrow"). */
std::string toString(AccessPattern pattern);

/** Parse an access-pattern name; fatal() on unknown names. */
AccessPattern accessPatternFromString(const std::string &name);

/** One kernel: a pattern replayed over one allocation. */
struct KernelSpec
{
    AccessPattern pattern = AccessPattern::streaming;
    std::uint32_t alloc_index = 0;
    std::uint32_t accesses = 64;
    std::uint32_t stride_pages = 1; //!< Used by the strided pattern.
    double write_fraction = 0.0;
};

/** A complete randomized-but-deterministic synthetic workload. */
struct FuzzSpec
{
    /** Seed for both the access-stream draws and the policy RNG. */
    std::uint64_t seed = 1;

    PrefetcherKind prefetcher_before =
        PrefetcherKind::treeBasedNeighborhood;
    PrefetcherKind prefetcher_after =
        PrefetcherKind::treeBasedNeighborhood;
    EvictionKind eviction = EvictionKind::treeBasedNeighborhood;

    /** 0 or <=100 fits; >100 forces eviction (paper setup: 110). */
    double oversubscription_percent = 0.0;

    /** LRU cold-end reservation percentage (Fig. 14). */
    double lru_reserve_percent = 0.0;

    /** Free-page buffer percentage (Figs. 6/7). */
    double free_buffer_percent = 0.0;

    /** cudaMemPrefetchAsync the footprint before the first kernel.
     *  Only legal when the footprint fits (oversubscription <= 100 and
     *  no free buffer) -- see validateSpec(). */
    bool user_prefetch = false;

    /** Pure-compute gap before every access, in microseconds. */
    std::uint32_t drain_gap_us = 10000;

    /**
     * Tenants sharing the device.  Each tenant replays the same alloc
     * and kernel lists in its own VA-partitioned space, with per-tenant
     * seed offsets so the irregular patterns differ; kernel streams are
     * serialized round-robin across tenants (t0.k0, t1.k0, ...,
     * t0.k1, ...) so the oracle stays exact.
     */
    std::uint32_t tenants = 1;

    /** Cross-tenant victim arbitration under memory pressure. */
    TenantEvictionKind tenant_eviction = TenantEvictionKind::globalLru;

    std::vector<AllocSpec> allocs;
    std::vector<KernelSpec> kernels;
};

/**
 * Encode a spec as one shell-safe token, e.g.
 *   "seed=7/pf=TBNp/pfa=TBNp/ev=TBNe/os=110/rsv=0/buf=0/up=0/
 *    gap=10000/a=2293760,65536/k=stream:0:200:1:0.25"
 * ('/' separates fields; a= takes a comma list; each k= adds one
 * kernel as pattern:alloc:accesses:stride:write_fraction).
 */
std::string toSpecString(const FuzzSpec &spec);

/** Parse toSpecString() output; fatal() with a clear message on any
 *  malformed field.  The result is validateSpec()-checked. */
FuzzSpec specFromString(const std::string &text);

/** Range-check a spec; empty when valid, otherwise a description of
 *  the offending field (used by the minimizer to reject candidate
 *  shrinks without dying). */
std::string specProblem(const FuzzSpec &spec);

/** Range-check a spec; fatal() with the offending field on failure. */
void validateSpec(const FuzzSpec &spec);

/** Draw a randomized workload spec deterministically from a seed.
 *  Policies are left at their defaults -- the fuzz harness overlays
 *  the combo under test (see canonicalCombos()). */
FuzzSpec generateSpec(std::uint64_t seed);

/**
 * The virtual-address layout the driver will give the spec's
 * allocations, mirrored independently of ManagedSpace: bases bump from
 * 0x100000000 in 2MB-aligned steps; each allocation splits into whole
 * 2MB trees plus one 2^i * 64KB rounded remainder tree.  The
 * FunctionalOracle builds its own trees from this, so a rounding or
 * placement bug in the production ManagedSpace surfaces as a
 * tree-set mismatch in the differential run.
 */
struct TreeLayout
{
    Addr base = 0;
    std::uint64_t capacity_bytes = 0;
};

struct AllocLayout
{
    Addr base = 0;
    std::uint64_t user_bytes = 0;
    std::uint64_t padded_bytes = 0;
    std::vector<TreeLayout> trees;
};

std::vector<AllocLayout> layoutAllocations(const FuzzSpec &spec);

/** One access of the canonical stream. */
struct FuzzAccess
{
    Addr addr = 0;
    bool is_write = false;
    std::uint32_t kernel = 0;
    std::uint32_t tenant = 0;
};

/**
 * The canonical access stream of a spec: every kernel's accesses in
 * launch order.  Both buildWorkload() (which wraps it in warp traces
 * for the real simulator) and the FunctionalOracle (which consumes it
 * directly) derive from this one function, so the two sides see
 * byte-identical traffic.
 */
std::vector<FuzzAccess> accessStream(const FuzzSpec &spec);

/** Materialize the spec as a Workload for Simulator::run():
 *  one kernel per KernelSpec, single thread block, single warp, one
 *  access per op behind a drain_gap_us compute gap.  Requires
 *  spec.tenants == 1 (use buildTenantWorkloads() otherwise). */
std::unique_ptr<Workload> buildWorkload(const FuzzSpec &spec);

/** One Workload per tenant for Simulator::run(vector): tenant t
 *  replays its slice of the canonical stream in its own space. */
std::vector<std::unique_ptr<Workload>>
buildTenantWorkloads(const FuzzSpec &spec);

/** The SimConfig a differential run uses for this spec: the spec's
 *  policies and pressure knobs, audit on, 1 SM, no latency jitter. */
SimConfig simConfigFor(const FuzzSpec &spec);

/** One prefetcher/eviction pairing of the fuzz matrix. */
struct PolicyCombo
{
    PrefetcherKind prefetcher;
    EvictionKind eviction;
};

/** Display name, e.g. "TBNp:TBNe". */
std::string toString(const PolicyCombo &combo);

/** Parse "TBNp:TBNe"; fatal() on malformed input. */
PolicyCombo comboFromString(const std::string &name);

/**
 * The six canonical prefetcher x eviction pairings the fuzz harness
 * sweeps: together they cover all six prefetchers and all six
 * eviction policies, including the fully stochastic Rp:Re pair.
 */
std::vector<PolicyCombo> canonicalCombos();

/** Copy of `spec` with the combo's policies applied (the after-
 *  capacity prefetcher follows the before-capacity one). */
FuzzSpec withCombo(FuzzSpec spec, const PolicyCombo &combo);

} // namespace fuzzing
} // namespace uvmsim
