/**
 * @file
 * Greedy spec minimizer for differential mismatches.
 *
 * Given a FuzzSpec whose differential run mismatches, minimize() runs
 * a greedy fixed-point shrink: drop whole kernels, drop whole
 * allocations (remapping surviving kernels), halve and decrement
 * access counts, shrink allocation sizes toward one basic block,
 * simplify access patterns toward plain streaming, zero write
 * fractions and strides, and drop pressure knobs.  A candidate is
 * kept only if (a) specProblem() accepts it and (b) the differential
 * run still mismatches.  The result is the smallest spec this
 * procedure can reach that still reproduces the disagreement --
 * typically a couple of allocations and a few dozen accesses, small
 * enough to step through by hand.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "testing/differential.hh"

namespace uvmsim
{
namespace fuzzing
{

/** Outcome of a minimization. */
struct MinimizeResult
{
    FuzzSpec spec;            //!< The smallest still-failing spec.
    DiffResult diff;          //!< Its differential result (mismatch).
    std::uint64_t probes = 0; //!< Candidate specs evaluated.
    std::uint64_t accepted = 0; //!< Shrink steps that kept the failure.
};

/** Optional progress callback: called after every accepted shrink
 *  with the new champion spec. */
using MinimizeProgress = std::function<void(const FuzzSpec &)>;

/**
 * Greedily shrink `spec` while runDifferential(spec, mutation) keeps
 * mismatching.  `spec` itself must mismatch (fatal() otherwise --
 * minimizing a passing spec is a caller bug).
 */
MinimizeResult minimize(const FuzzSpec &spec,
                        OracleMutation mutation = OracleMutation::none,
                        const MinimizeProgress &progress = {});

} // namespace fuzzing
} // namespace uvmsim
