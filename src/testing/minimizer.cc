#include "minimizer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace uvmsim
{
namespace fuzzing
{

namespace
{

struct Shrinker
{
    OracleMutation mutation;
    const MinimizeProgress &progress;
    FuzzSpec champion;
    DiffResult champion_diff;
    std::uint64_t probes = 0;
    std::uint64_t accepted = 0;

    /** Evaluate a candidate; adopt it as champion if it is valid and
     *  still mismatches. */
    bool
    tryCandidate(const FuzzSpec &candidate)
    {
        if (!specProblem(candidate).empty())
            return false;
        ++probes;
        DiffResult diff = runDifferential(candidate, mutation);
        if (!diff.mismatch)
            return false;
        champion = candidate;
        champion_diff = std::move(diff);
        ++accepted;
        if (progress)
            progress(champion);
        return true;
    }

    /** Drop one kernel at a time (coarsest cut first). */
    bool
    dropKernels()
    {
        bool any = false;
        for (std::size_t i = 0; i < champion.kernels.size() &&
                                champion.kernels.size() > 1;) {
            FuzzSpec candidate = champion;
            candidate.kernels.erase(candidate.kernels.begin() +
                                    static_cast<long>(i));
            if (tryCandidate(candidate))
                any = true; // champion shrank; retry same index
            else
                ++i;
        }
        return any;
    }

    /** Drop one allocation, discarding its kernels and remapping the
     *  survivors' indices. */
    bool
    dropAllocs()
    {
        bool any = false;
        for (std::size_t i = 0; i < champion.allocs.size() &&
                                champion.allocs.size() > 1;) {
            FuzzSpec candidate = champion;
            candidate.allocs.erase(candidate.allocs.begin() +
                                   static_cast<long>(i));
            std::vector<KernelSpec> kept;
            for (KernelSpec k : candidate.kernels) {
                if (k.alloc_index == i)
                    continue;
                if (k.alloc_index > i)
                    --k.alloc_index;
                kept.push_back(k);
            }
            if (kept.empty()) {
                ++i; // a spec needs at least one kernel
                continue;
            }
            candidate.kernels = std::move(kept);
            if (tryCandidate(candidate))
                any = true;
            else
                ++i;
        }
        return any;
    }

    bool
    shrinkAccesses()
    {
        bool any = false;
        for (std::size_t i = 0; i < champion.kernels.size(); ++i) {
            // Halve to fixed point, then single-step.
            while (champion.kernels[i].accesses > 1) {
                FuzzSpec candidate = champion;
                candidate.kernels[i].accesses =
                    std::max(1u, candidate.kernels[i].accesses / 2);
                if (!tryCandidate(candidate))
                    break;
                any = true;
            }
            while (champion.kernels[i].accesses > 1) {
                FuzzSpec candidate = champion;
                --candidate.kernels[i].accesses;
                if (!tryCandidate(candidate))
                    break;
                any = true;
            }
        }
        return any;
    }

    bool
    shrinkAllocs()
    {
        bool any = false;
        for (std::size_t i = 0; i < champion.allocs.size(); ++i) {
            // Jump straight to one basic block, then binary-search up
            // via halving from the original size.
            if (champion.allocs[i].bytes > basicBlockSize) {
                FuzzSpec candidate = champion;
                candidate.allocs[i].bytes = basicBlockSize;
                if (tryCandidate(candidate)) {
                    any = true;
                    continue;
                }
            }
            while (champion.allocs[i].bytes > basicBlockSize) {
                FuzzSpec candidate = champion;
                std::uint64_t halved = candidate.allocs[i].bytes / 2;
                candidate.allocs[i].bytes =
                    std::max<std::uint64_t>(basicBlockSize,
                                            roundUpToPages(halved));
                if (candidate.allocs[i].bytes == champion.allocs[i].bytes)
                    break;
                if (!tryCandidate(candidate))
                    break;
                any = true;
            }
        }
        return any;
    }

    bool
    simplifyKernels()
    {
        bool any = false;
        for (std::size_t i = 0; i < champion.kernels.size(); ++i) {
            KernelSpec &k = champion.kernels[i];
            if (k.pattern != AccessPattern::streaming) {
                FuzzSpec candidate = champion;
                candidate.kernels[i].pattern = AccessPattern::streaming;
                candidate.kernels[i].stride_pages = 1;
                any |= tryCandidate(candidate);
            }
            if (k.stride_pages != 1) {
                FuzzSpec candidate = champion;
                candidate.kernels[i].stride_pages = 1;
                any |= tryCandidate(candidate);
            }
            if (k.write_fraction != 0.0) {
                FuzzSpec candidate = champion;
                candidate.kernels[i].write_fraction = 0.0;
                any |= tryCandidate(candidate);
            }
        }
        return any;
    }

    bool
    simplifyKnobs()
    {
        bool any = false;
        if (champion.user_prefetch) {
            FuzzSpec candidate = champion;
            candidate.user_prefetch = false;
            any |= tryCandidate(candidate);
        }
        if (champion.lru_reserve_percent != 0.0) {
            FuzzSpec candidate = champion;
            candidate.lru_reserve_percent = 0.0;
            any |= tryCandidate(candidate);
        }
        if (champion.free_buffer_percent != 0.0) {
            FuzzSpec candidate = champion;
            candidate.free_buffer_percent = 0.0;
            any |= tryCandidate(candidate);
        }
        if (champion.oversubscription_percent != 0.0) {
            FuzzSpec candidate = champion;
            candidate.oversubscription_percent = 0.0;
            any |= tryCandidate(candidate);
        }
        // Fewer tenants first, then the trivial arbitration policy.
        while (champion.tenants > 1) {
            FuzzSpec candidate = champion;
            candidate.tenants -= 1;
            if (!tryCandidate(candidate))
                break;
            any = true;
        }
        if (champion.tenant_eviction != TenantEvictionKind::globalLru) {
            FuzzSpec candidate = champion;
            candidate.tenant_eviction = TenantEvictionKind::globalLru;
            any |= tryCandidate(candidate);
        }
        return any;
    }
};

} // namespace

MinimizeResult
minimize(const FuzzSpec &spec, OracleMutation mutation,
         const MinimizeProgress &progress)
{
    validateSpec(spec);
    DiffResult base = runDifferential(spec, mutation);
    if (!base.mismatch)
        fatal("minimize: spec '%s' does not mismatch -- nothing to "
              "minimize", toSpecString(spec).c_str());

    Shrinker shrinker{mutation, progress, spec, std::move(base)};
    // Greedy fixed point: repeat full passes until nothing shrinks.
    bool changed = true;
    while (changed) {
        changed = false;
        changed |= shrinker.dropKernels();
        changed |= shrinker.dropAllocs();
        changed |= shrinker.shrinkAccesses();
        changed |= shrinker.shrinkAllocs();
        changed |= shrinker.simplifyKernels();
        changed |= shrinker.simplifyKnobs();
    }

    MinimizeResult result;
    result.spec = shrinker.champion;
    result.diff = std::move(shrinker.champion_diff);
    result.probes = shrinker.probes;
    result.accepted = shrinker.accepted;
    return result;
}

} // namespace fuzzing
} // namespace uvmsim
