#include "workload_gen.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/zipf.hh"

namespace uvmsim
{
namespace fuzzing
{

namespace
{

/** Mirror of ManagedSpace's base placement (kept independent on
 *  purpose; see the header). */
constexpr Addr specVaBase = 0x100000000ull;

/** Mirror of the driver's remainder rounding: next 2^i * 64KB. */
std::uint64_t
roundedRemainder(std::uint64_t remainder_bytes)
{
    if (remainder_bytes == 0)
        return 0;
    std::uint64_t blocks =
        (remainder_bytes + basicBlockSize - 1) / basicBlockSize;
    return std::bit_ceil(blocks) * basicBlockSize;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::uint64_t
parseUintField(const std::string &spec, const std::string &field,
               const std::string &value)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || value[0] == '-' || !end || *end != '\0')
        fatal("fuzz spec '%s': field %s expects an unsigned integer, "
              "got '%s'", spec.c_str(), field.c_str(), value.c_str());
    return v;
}

double
parseDoubleField(const std::string &spec, const std::string &field,
                 const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || !end || *end != '\0')
        fatal("fuzz spec '%s': field %s expects a number, got '%s'",
              spec.c_str(), field.c_str(), value.c_str());
    return v;
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos)
            pos = text.size();
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

} // namespace

std::string
toString(AccessPattern pattern)
{
    switch (pattern) {
      case AccessPattern::streaming:
        return "stream";
      case AccessPattern::strided:
        return "stride";
      case AccessPattern::random:
        return "rand";
      case AccessPattern::hotspot:
        return "hot";
      case AccessPattern::zipfian:
        return "zipf";
      case AccessPattern::kvGrowth:
        return "kvgrow";
    }
    panic("unknown AccessPattern");
}

AccessPattern
accessPatternFromString(const std::string &name)
{
    if (name == "stream")
        return AccessPattern::streaming;
    if (name == "stride")
        return AccessPattern::strided;
    if (name == "rand")
        return AccessPattern::random;
    if (name == "hot")
        return AccessPattern::hotspot;
    if (name == "zipf")
        return AccessPattern::zipfian;
    if (name == "kvgrow")
        return AccessPattern::kvGrowth;
    fatal("unknown access pattern '%s' "
          "(want stream|stride|rand|hot|zipf|kvgrow)",
          name.c_str());
}

std::string
toSpecString(const FuzzSpec &spec)
{
    std::string out;
    out += "seed=" + std::to_string(spec.seed);
    out += "/pf=" + toString(spec.prefetcher_before);
    out += "/pfa=" + toString(spec.prefetcher_after);
    out += "/ev=" + toString(spec.eviction);
    out += "/os=" + formatDouble(spec.oversubscription_percent);
    out += "/rsv=" + formatDouble(spec.lru_reserve_percent);
    out += "/buf=" + formatDouble(spec.free_buffer_percent);
    out += std::string("/up=") + (spec.user_prefetch ? "1" : "0");
    out += "/gap=" + std::to_string(spec.drain_gap_us);
    // Tenant fields only appear for multi-tenant specs, so every
    // pre-existing single-tenant spec string round-trips unchanged.
    if (spec.tenants != 1 ||
        spec.tenant_eviction != TenantEvictionKind::globalLru) {
        out += "/tn=" + std::to_string(spec.tenants);
        out += "/tev=" + toString(spec.tenant_eviction);
    }
    out += "/a=";
    for (std::size_t i = 0; i < spec.allocs.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(spec.allocs[i].bytes);
    }
    for (const KernelSpec &k : spec.kernels) {
        out += "/k=" + toString(k.pattern) + ":" +
               std::to_string(k.alloc_index) + ":" +
               std::to_string(k.accesses) + ":" +
               std::to_string(k.stride_pages) + ":" +
               formatDouble(k.write_fraction);
    }
    return out;
}

FuzzSpec
specFromString(const std::string &text)
{
    FuzzSpec spec;
    spec.allocs.clear();
    spec.kernels.clear();
    if (text.empty())
        fatal("empty fuzz spec");

    for (const std::string &field : splitOn(text, '/')) {
        std::size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("fuzz spec '%s': field '%s' is not key=value",
                  text.c_str(), field.c_str());
        std::string key = field.substr(0, eq);
        std::string value = field.substr(eq + 1);

        if (key == "seed") {
            spec.seed = parseUintField(text, key, value);
        } else if (key == "pf") {
            spec.prefetcher_before = prefetcherFromString(value);
        } else if (key == "pfa") {
            spec.prefetcher_after = prefetcherFromString(value);
        } else if (key == "ev") {
            spec.eviction = evictionFromString(value);
        } else if (key == "os") {
            spec.oversubscription_percent =
                parseDoubleField(text, key, value);
        } else if (key == "rsv") {
            spec.lru_reserve_percent = parseDoubleField(text, key, value);
        } else if (key == "buf") {
            spec.free_buffer_percent = parseDoubleField(text, key, value);
        } else if (key == "up") {
            spec.user_prefetch = parseUintField(text, key, value) != 0;
        } else if (key == "gap") {
            spec.drain_gap_us = static_cast<std::uint32_t>(
                parseUintField(text, key, value));
        } else if (key == "tn") {
            spec.tenants = static_cast<std::uint32_t>(
                parseUintField(text, key, value));
        } else if (key == "tev") {
            spec.tenant_eviction = tenantEvictionFromString(value);
        } else if (key == "a") {
            for (const std::string &item : splitOn(value, ','))
                spec.allocs.push_back(
                    AllocSpec{parseUintField(text, key, item)});
        } else if (key == "k") {
            std::vector<std::string> parts = splitOn(value, ':');
            if (parts.size() != 5)
                fatal("fuzz spec '%s': kernel '%s' wants "
                      "pattern:alloc:accesses:stride:write_fraction",
                      text.c_str(), value.c_str());
            KernelSpec k;
            k.pattern = accessPatternFromString(parts[0]);
            k.alloc_index = static_cast<std::uint32_t>(
                parseUintField(text, "k.alloc", parts[1]));
            k.accesses = static_cast<std::uint32_t>(
                parseUintField(text, "k.accesses", parts[2]));
            k.stride_pages = static_cast<std::uint32_t>(
                parseUintField(text, "k.stride", parts[3]));
            k.write_fraction =
                parseDoubleField(text, "k.write_fraction", parts[4]);
            spec.kernels.push_back(k);
        } else {
            fatal("fuzz spec '%s': unknown field '%s'", text.c_str(),
                  key.c_str());
        }
    }

    validateSpec(spec);
    return spec;
}

std::string
specProblem(const FuzzSpec &spec)
{
    auto format = [](const char *fmt, auto... args) {
        char buf[256];
        std::snprintf(buf, sizeof(buf), fmt, args...);
        return std::string(buf);
    };

    if (spec.tenants == 0 || spec.tenants > 4)
        return format("needs 1..4 tenants, got %u", spec.tenants);
    if (spec.allocs.empty() || spec.allocs.size() > 8)
        return format("needs 1..8 allocations, got %zu",
                      spec.allocs.size());
    std::uint64_t total_padded = 0;
    for (const AllocSpec &a : spec.allocs) {
        if (a.bytes == 0)
            return "allocation of zero bytes";
        if (a.bytes > 32 * sizeMiB)
            return format("allocation of %llu bytes exceeds the 32MB "
                          "fuzzing cap",
                          static_cast<unsigned long long>(a.bytes));
        std::uint64_t whole = (a.bytes / largePageSize) * largePageSize;
        total_padded += whole + roundedRemainder(a.bytes - whole);
    }
    // Every tenant replays the alloc list, so the device is sized
    // from the replicated footprint.
    total_padded *= spec.tenants;
    if (total_padded > 64 * sizeMiB)
        return format("footprint of %llu bytes exceeds the 64MB "
                      "fuzzing cap",
                      static_cast<unsigned long long>(total_padded));

    double os = spec.oversubscription_percent;
    if (os != 0.0 && (os < 50.0 || os > 400.0))
        return format("oversubscription %.3f%% outside 0 or [50, 400]",
                      os);
    if (os > 100.0) {
        // The simulator refuses device memories under 16 basic blocks.
        std::uint64_t device = static_cast<std::uint64_t>(
            static_cast<double>(total_padded) * 100.0 / os);
        if (roundUpToPages(device) < 16 * basicBlockSize)
            return format("device memory %llu bytes under the 1MB floor "
                          "(footprint too small for %.0f%% "
                          "oversubscription)",
                          static_cast<unsigned long long>(device), os);
    }
    if (spec.lru_reserve_percent < 0.0 || spec.lru_reserve_percent > 90.0)
        return format("LRU reserve %.3f%% outside [0, 90]",
                      spec.lru_reserve_percent);
    if (spec.free_buffer_percent < 0.0 || spec.free_buffer_percent > 50.0)
        return format("free buffer %.3f%% outside [0, 50]",
                      spec.free_buffer_percent);
    if (spec.user_prefetch && (os > 100.0 ||
                               spec.free_buffer_percent > 0.0)) {
        // A user prefetch under memory pressure evicts pages out of
        // its own forming batches; end state then depends on transfer
        // timing, which the timing-free oracle deliberately excludes.
        return "user_prefetch requires a fitting footprint "
               "(oversubscription <= 100, no free buffer)";
    }
    if (spec.drain_gap_us < 1000)
        return format("drain gap %u us under the 1ms serialization "
                      "floor", spec.drain_gap_us);
    if (spec.kernels.empty() || spec.kernels.size() > 16)
        return format("needs 1..16 kernels, got %zu",
                      spec.kernels.size());
    for (const KernelSpec &k : spec.kernels) {
        if (k.alloc_index >= spec.allocs.size())
            return format("kernel targets allocation %u of %zu",
                          k.alloc_index, spec.allocs.size());
        if (k.accesses == 0 || k.accesses > 100000)
            return format("kernel accesses %u outside [1, 100000]",
                          k.accesses);
        if (k.stride_pages == 0)
            return "kernel stride of zero pages";
        if (k.write_fraction < 0.0 || k.write_fraction > 1.0)
            return format("write fraction %.3f outside [0, 1]",
                          k.write_fraction);
    }
    return "";
}

void
validateSpec(const FuzzSpec &spec)
{
    std::string problem = specProblem(spec);
    if (!problem.empty())
        fatal("fuzz spec: %s", problem.c_str());
}

FuzzSpec
generateSpec(std::uint64_t seed)
{
    Rng rng(seed ^ 0xf1e2d3c4b5a69788ull);
    FuzzSpec spec;
    spec.seed = seed;
    spec.allocs.clear();
    spec.kernels.clear();

    // Allocation mix: single-leaf and 16-leaf tree extremes, exact
    // large pages, and non-power-of-two tails that exercise the
    // 2^i * 64KB rounding (all sizes capped so a whole fuzz batch
    // stays fast).
    std::size_t num_allocs = 1 + rng.below(4);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < num_allocs; ++i) {
        std::uint64_t bytes = 0;
        switch (rng.below(6)) {
          case 0:
            bytes = basicBlockSize; // 64KB: single-leaf tree
            break;
          case 1:
            bytes = kib(64 + 64 * rng.below(16)); // 64KB..1MB tails
            break;
          case 2:
            bytes = mib(1); // 1MB: 16-leaf tree
            break;
          case 3:
            bytes = mib(2); // exactly one large page
            break;
          case 4:
            bytes = mib(2) + kib(64 + 64 * rng.below(15));
            break;
          default:
            // Sizes that are not even 64KB multiples (192KB+8KB..).
            bytes = kib(192) + kib(8) * rng.below(16);
            break;
        }
        if (total + bytes > 16 * sizeMiB)
            break;
        total += bytes;
        spec.allocs.push_back(AllocSpec{bytes});
    }
    if (spec.allocs.empty())
        spec.allocs.push_back(AllocSpec{mib(1)});

    static constexpr double oversub_menu[] = {0.0,   75.0,  90.0, 100.0,
                                              110.0, 125.0, 150.0};
    spec.oversubscription_percent = oversub_menu[rng.below(7)];
    std::uint64_t padded = 0;
    for (const AllocSpec &a : spec.allocs) {
        std::uint64_t whole = (a.bytes / largePageSize) * largePageSize;
        padded += whole + roundedRemainder(a.bytes - whole);
    }
    if (spec.oversubscription_percent > 100.0 &&
        static_cast<double>(padded) * 100.0 /
                spec.oversubscription_percent <
            static_cast<double>(16 * basicBlockSize)) {
        // Footprint too small to model the shrunken device; fall back
        // to a fitting run rather than rejecting the seed.
        spec.oversubscription_percent = 0.0;
    }
    if (spec.oversubscription_percent > 100.0) {
        static constexpr double reserve_menu[] = {0.0, 0.0, 10.0, 25.0};
        static constexpr double buffer_menu[] = {0.0, 0.0, 5.0, 12.5};
        spec.lru_reserve_percent = reserve_menu[rng.below(4)];
        spec.free_buffer_percent = buffer_menu[rng.below(4)];
    } else if (rng.chance(0.3)) {
        spec.user_prefetch = true;
    }

    std::size_t num_kernels = 1 + rng.below(4);
    for (std::size_t i = 0; i < num_kernels; ++i) {
        KernelSpec k;
        k.pattern = static_cast<AccessPattern>(rng.below(6));
        k.alloc_index =
            static_cast<std::uint32_t>(rng.below(spec.allocs.size()));
        k.accesses = static_cast<std::uint32_t>(40 + rng.below(260));
        k.stride_pages = static_cast<std::uint32_t>(1 + rng.below(37));
        static constexpr double write_menu[] = {0.0, 0.2, 0.5, 1.0};
        k.write_fraction = write_menu[rng.below(4)];
        spec.kernels.push_back(k);
    }

    // Multi-tenant cells: about a third of the corpus replays the
    // workload from 2..4 tenants under a drawn arbitration policy.
    // Seeds whose replicated footprint would bust the spec limits
    // stay single-tenant (the draw order keeps all earlier fields of
    // existing seeds unchanged).
    if (rng.chance(0.35)) {
        static constexpr TenantEvictionKind tev_menu[] = {
            TenantEvictionKind::globalLru,
            TenantEvictionKind::staticQuota,
            TenantEvictionKind::proportionalShare};
        spec.tenants = static_cast<std::uint32_t>(2 + rng.below(3));
        spec.tenant_eviction = tev_menu[rng.below(3)];
        if (!specProblem(spec).empty()) {
            spec.tenants = 1;
            spec.tenant_eviction = TenantEvictionKind::globalLru;
        }
    }

    validateSpec(spec);
    return spec;
}

std::vector<AllocLayout>
layoutAllocations(const FuzzSpec &spec)
{
    std::vector<AllocLayout> out;
    Addr next_base = specVaBase;
    for (const AllocSpec &a : spec.allocs) {
        AllocLayout layout;
        layout.base = next_base;
        layout.user_bytes = a.bytes;

        Addr cursor = next_base;
        std::uint64_t full = a.bytes / largePageSize;
        for (std::uint64_t i = 0; i < full; ++i) {
            layout.trees.push_back(TreeLayout{cursor, largePageSize});
            cursor += largePageSize;
        }
        std::uint64_t tail = roundedRemainder(a.bytes % largePageSize);
        if (tail > 0) {
            layout.trees.push_back(TreeLayout{cursor, tail});
            cursor += tail;
        }
        layout.padded_bytes = cursor - next_base;

        next_base = (cursor + largePageSize - 1) & ~(largePageSize - 1);
        out.push_back(std::move(layout));
    }
    return out;
}

std::vector<FuzzAccess>
accessStream(const FuzzSpec &spec)
{
    std::vector<AllocLayout> layout = layoutAllocations(spec);
    std::vector<FuzzAccess> out;

    // Kernel-major, tenant-minor: exactly the round-robin order the
    // serialized multi-tenant driver launches (t0.k0, t1.k0, ...,
    // t0.k1, ...).  With one tenant this is the plain kernel order.
    for (std::size_t ki = 0; ki < spec.kernels.size(); ++ki) {
        const KernelSpec &k = spec.kernels[ki];
        const AllocLayout &alloc = layout[k.alloc_index];
        std::uint64_t pages = alloc.padded_bytes / pageSize;

        for (std::uint32_t t = 0; t < spec.tenants; ++t) {
            const Addr tenant_off =
                static_cast<Addr>(t) * tenantVaStride;

            // Per-(tenant, kernel) derivation keeps every kernel's
            // draws independent of the other kernels' access counts
            // and gives each tenant a distinct stream.
            Rng rng((spec.seed + t) * 1000003ull + ki * 7919ull +
                    0x5bd1e995ull);

            std::uint64_t start = rng.below(pages);
            std::uint64_t hot_len =
                std::max<std::uint64_t>(1, pages / 8);
            std::uint64_t hot_start = rng.below(pages);
            // TPC-C-like skew for the zipfian pattern, rotated by
            // hot_start so tenants hammer different hot pages.
            const Zipfian zipf(pages, 0.86);

            for (std::uint32_t i = 0; i < k.accesses; ++i) {
                std::uint64_t page_index = 0;
                switch (k.pattern) {
                  case AccessPattern::streaming:
                    page_index = (start + i) % pages;
                    break;
                  case AccessPattern::strided:
                    page_index = (start +
                                  static_cast<std::uint64_t>(i) *
                                      k.stride_pages) % pages;
                    break;
                  case AccessPattern::random:
                    page_index = rng.below(pages);
                    break;
                  case AccessPattern::hotspot:
                    if (rng.chance(0.8))
                        page_index =
                            (hot_start + rng.below(hot_len)) % pages;
                    else
                        page_index = rng.below(pages);
                    break;
                  case AccessPattern::zipfian:
                    page_index =
                        (hot_start + zipf.draw(rng)) % pages;
                    break;
                  case AccessPattern::kvGrowth: {
                    // A prefix that grows from 1 to `pages` across
                    // the kernel: tail appends alternate with uniform
                    // reads inside the grown region.
                    const std::uint64_t grown =
                        1 + static_cast<std::uint64_t>(i) *
                                (pages - 1) /
                                std::max<std::uint32_t>(k.accesses, 1);
                    page_index = (i % 2) ? rng.below(grown)
                                         : grown - 1;
                    break;
                  }
                }
                FuzzAccess access;
                access.addr = tenant_off + alloc.base +
                              page_index * pageSize +
                              rng.below(pageSize / 128) * 128;
                access.is_write = rng.chance(k.write_fraction);
                access.kernel = static_cast<std::uint32_t>(ki);
                access.tenant = t;
                out.push_back(access);
            }
        }
    }
    return out;
}

namespace
{

/** The Workload wrapper of one tenant's slice of a FuzzSpec. */
class FuzzWorkload : public Workload
{
  public:
    FuzzWorkload(FuzzSpec spec, std::uint32_t tenant)
        : spec_(std::move(spec)),
          tenant_(tenant),
          stream_(accessStream(spec_))
    {}

    std::string name() const override
    {
        std::string n = "fuzz-s" + std::to_string(spec_.seed);
        if (spec_.tenants > 1)
            n += "-t" + std::to_string(tenant_);
        return n;
    }

    void
    setup(ManagedSpace &space) override
    {
        for (std::size_t i = 0; i < spec_.allocs.size(); ++i)
            space.allocate(spec_.allocs[i].bytes,
                           "fuzz" + std::to_string(i));
    }

    Kernel *
    nextKernel() override
    {
        if (next_kernel_ >= spec_.kernels.size())
            return nullptr;
        std::size_t ki = next_kernel_++;

        // A generous cycle count per microsecond (the core runs at
        // 1481 MHz) keeps the drain guarantee even if the clock is
        // nudged upward.
        Cycles gap = static_cast<Cycles>(spec_.drain_gap_us) * 1600;

        std::vector<WarpOp> ops;
        for (const FuzzAccess &access : stream_) {
            if (access.kernel != ki || access.tenant != tenant_)
                continue;
            WarpOp op;
            op.compute_cycles = gap;
            op.accesses.push_back(
                TraceAccess{access.addr, 128, access.is_write});
            ops.push_back(std::move(op));
        }

        current_ = std::make_unique<GridKernel>(
            "fuzz_k" + std::to_string(ki), 1,
            [ops = std::move(ops)](std::uint64_t) {
                std::vector<std::unique_ptr<WarpTrace>> warps;
                warps.push_back(std::make_unique<VectorTrace>(ops));
                return warps;
            });
        return current_.get();
    }

    std::uint64_t totalKernels() const override
    {
        return spec_.kernels.size();
    }

  private:
    FuzzSpec spec_;
    std::uint32_t tenant_;
    std::vector<FuzzAccess> stream_;
    std::size_t next_kernel_ = 0;
    std::unique_ptr<GridKernel> current_;
};

} // namespace

std::unique_ptr<Workload>
buildWorkload(const FuzzSpec &spec)
{
    validateSpec(spec);
    if (spec.tenants != 1)
        fatal("buildWorkload: spec has %u tenants; use "
              "buildTenantWorkloads", spec.tenants);
    return std::make_unique<FuzzWorkload>(spec, 0);
}

std::vector<std::unique_ptr<Workload>>
buildTenantWorkloads(const FuzzSpec &spec)
{
    validateSpec(spec);
    std::vector<std::unique_ptr<Workload>> out;
    out.reserve(spec.tenants);
    for (std::uint32_t t = 0; t < spec.tenants; ++t)
        out.push_back(std::make_unique<FuzzWorkload>(spec, t));
    return out;
}

SimConfig
simConfigFor(const FuzzSpec &spec)
{
    SimConfig cfg;
    cfg.gpu.num_sms = 1;
    cfg.prefetcher_before = spec.prefetcher_before;
    cfg.prefetcher_after = spec.prefetcher_after;
    cfg.eviction = spec.eviction;
    cfg.oversubscription_percent = spec.oversubscription_percent;
    cfg.lru_reserve_percent = spec.lru_reserve_percent;
    cfg.free_buffer_percent = spec.free_buffer_percent;
    cfg.user_prefetch_footprint = spec.user_prefetch;
    cfg.tenants = spec.tenants;
    cfg.tenant_eviction = spec.tenant_eviction;
    // Serialized streams are what makes the timing-free oracle exact;
    // with one tenant the flag is a no-op.
    cfg.serialize_kernel_streams = true;
    cfg.seed = spec.seed;
    cfg.fault_latency_jitter = 0.0;
    cfg.audit = true;
    return cfg;
}

std::string
toString(const PolicyCombo &combo)
{
    return toString(combo.prefetcher) + ":" + toString(combo.eviction);
}

PolicyCombo
comboFromString(const std::string &name)
{
    std::size_t colon = name.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= name.size())
        fatal("policy combo '%s' wants <prefetcher>:<eviction>",
              name.c_str());
    PolicyCombo combo;
    combo.prefetcher = prefetcherFromString(name.substr(0, colon));
    combo.eviction = evictionFromString(name.substr(colon + 1));
    return combo;
}

std::vector<PolicyCombo>
canonicalCombos()
{
    return {
        {PrefetcherKind::none, EvictionKind::lru4k},
        {PrefetcherKind::random, EvictionKind::random4k},
        {PrefetcherKind::sequentialLocal, EvictionKind::sequentialLocal},
        {PrefetcherKind::treeBasedNeighborhood,
         EvictionKind::treeBasedNeighborhood},
        {PrefetcherKind::sequentialGlobal, EvictionKind::lru2mb},
        {PrefetcherKind::zhengLocality, EvictionKind::mru4k},
    };
}

FuzzSpec
withCombo(FuzzSpec spec, const PolicyCombo &combo)
{
    spec.prefetcher_before = combo.prefetcher;
    spec.prefetcher_after = combo.prefetcher;
    spec.eviction = combo.eviction;
    return spec;
}

} // namespace fuzzing
} // namespace uvmsim
