#include "pcie_link.hh"

#include <algorithm>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace uvmsim
{

PcieLink::PcieLink(EventQueue &eq, PcieBandwidthModel model)
    : eq_(eq),
      model_(std::move(model)),
      h2d_transfers_("pcie.h2d.transfers",
                     "host-to-device transfers scheduled"),
      h2d_bytes_("pcie.h2d.bytes", "bytes migrated host-to-device"),
      d2h_transfers_("pcie.d2h.transfers",
                     "device-to-host write-back transfers scheduled"),
      d2h_bytes_("pcie.d2h.bytes", "bytes written back device-to-host"),
      // Buckets of 64KB from 0..2MB cover every legal transfer size
      // (the 2MB top edge inclusively, see Histogram::sample).
      h2d_size_hist_("pcie.h2d.transfer_size", "h2d transfer sizes (bytes)",
                     0.0, static_cast<double>(basicBlockSize), 32),
      d2h_size_hist_("pcie.d2h.transfer_size",
                     "d2h write-back transfer sizes (bytes)", 0.0,
                     static_cast<double>(basicBlockSize), 32),
      h2d_avg_bw_("pcie.h2d.avg_bandwidth_gbps",
                  "average achieved read bandwidth while busy (GB/s)",
                  [this] { return averageBandwidthGBps(PcieDir::hostToDevice); }),
      d2h_avg_bw_("pcie.d2h.avg_bandwidth_gbps",
                  "average achieved write bandwidth while busy (GB/s)",
                  [this] { return averageBandwidthGBps(PcieDir::deviceToHost); })
{
}

PcieLink::Channel &
PcieLink::channel(PcieDir dir)
{
    return dir == PcieDir::hostToDevice ? h2d_ : d2h_;
}

const PcieLink::Channel &
PcieLink::channel(PcieDir dir) const
{
    return dir == PcieDir::hostToDevice ? h2d_ : d2h_;
}

Tick
PcieLink::transfer(PcieDir dir, std::uint64_t bytes, Callback cb)
{
    if (bytes == 0)
        panic("zero-byte PCI-e transfer requested");

    Channel &ch = channel(dir);
    const Tick now = eq_.curTick();
    const Tick start = std::max(now, ch.free_at);
    const Tick latency = model_.transferLatency(bytes);
    const Tick done = start + latency;

    if (tracer_) {
        // The full occupancy is known up front; one complete event
        // carries it, with the queue depth this transfer found.
        const bool h2d = dir == PcieDir::hostToDevice;
        tracer_->record(trace::Event{
            trace::Kind::pcieTransfer, trace::Category::pcie,
            h2d ? "pcie.h2d" : "pcie.d2h", start, latency,
            bytes / pageSize, bytes, ch.outstanding, h2d ? 0u : 1u});
    }

    ch.free_at = done;
    ch.bytes += bytes;
    ch.transfers += 1;
    ch.busy += latency;
    ch.outstanding += 1;

    if (dir == PcieDir::hostToDevice) {
        ++h2d_transfers_;
        h2d_bytes_ += bytes;
        h2d_size_hist_.sample(static_cast<double>(bytes));
    } else {
        ++d2h_transfers_;
        d2h_bytes_ += bytes;
        d2h_size_hist_.sample(static_cast<double>(bytes));
    }

    eq_.schedule(done, [this, dir, cb = std::move(cb)]() {
        channel(dir).outstanding -= 1;
        if (cb)
            cb();
    });
    return done;
}

Tick
PcieLink::channelFreeAt(PcieDir dir) const
{
    return channel(dir).free_at;
}

std::uint64_t
PcieLink::bytesTransferred(PcieDir dir) const
{
    return channel(dir).bytes;
}

std::uint64_t
PcieLink::transferCount(PcieDir dir) const
{
    return channel(dir).transfers;
}

std::uint64_t
PcieLink::outstandingTransfers(PcieDir dir) const
{
    return channel(dir).outstanding;
}

Tick
PcieLink::busyTicks(PcieDir dir) const
{
    return channel(dir).busy;
}

double
PcieLink::averageBandwidthGBps(PcieDir dir) const
{
    const Channel &ch = channel(dir);
    if (ch.busy == 0)
        return 0.0;
    double seconds = ticksToSeconds(ch.busy);
    return static_cast<double>(ch.bytes) / seconds / 1e9;
}

void
PcieLink::registerStats(stats::StatRegistry &registry)
{
    registry.add(&h2d_transfers_);
    registry.add(&h2d_bytes_);
    registry.add(&d2h_transfers_);
    registry.add(&d2h_bytes_);
    registry.add(&h2d_size_hist_);
    registry.add(&d2h_size_hist_);
    registry.add(&h2d_avg_bw_);
    registry.add(&d2h_avg_bw_);
}

} // namespace uvmsim
