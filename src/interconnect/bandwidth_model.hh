/**
 * @file
 * PCI-e bandwidth as a function of transfer size.
 *
 * The paper measures read bandwidth on a GTX 1080ti / PCI-e 3.0 16x
 * system for five transfer sizes (Table 1) and "deduces a function to
 * express PCI-e bandwidth as a function of transfer size" for its
 * simulator.  We provide two models:
 *
 *  - Interpolated (default): piecewise-linear in log2(size) through the
 *    exact Table 1 points, clamped outside [4KB, 1MB].  This reproduces
 *    Table 1 to the digit.
 *  - Affine latency: T(s) = alpha + s / B_peak, least-squares fitted to
 *    the same points; the classic first-order interconnect model, kept
 *    as an ablation of the fitting choice.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"

namespace uvmsim
{

/** Which bandwidth-vs-size fit the link uses. */
enum class PcieModelKind
{
    interpolated, //!< Log-linear interpolation of Table 1 (default).
    affine,       //!< T(s) = alpha + s / B_peak fit.
};

/** Size-dependent PCI-e transfer timing. */
class PcieBandwidthModel
{
  public:
    /** One measured calibration point. */
    struct CalibrationPoint
    {
        std::uint64_t bytes;   //!< Transfer size.
        double gb_per_sec;     //!< Measured bandwidth (GB/s, 1e9 B/s).
    };

    /** Construct with the paper's Table 1 calibration. */
    explicit PcieBandwidthModel(PcieModelKind kind =
                                    PcieModelKind::interpolated);

    /** Construct from custom calibration points (sorted by size). */
    PcieBandwidthModel(PcieModelKind kind,
                       std::vector<CalibrationPoint> points);

    /** Effective bandwidth for a transfer of the given size, in B/s. */
    double bandwidthBytesPerSec(std::uint64_t bytes) const;

    /** Same, in the GB/s (1e9) units Table 1 uses. */
    double
    bandwidthGBps(std::uint64_t bytes) const
    {
        return bandwidthBytesPerSec(bytes) / 1e9;
    }

    /** Wire latency of one transfer of the given size, in ticks. */
    Tick transferLatency(std::uint64_t bytes) const;

    /** The calibration used (for reporting/tests). */
    const std::vector<CalibrationPoint> &calibration() const
    {
        return points_;
    }

    /** The model kind in use. */
    PcieModelKind kind() const { return kind_; }

    /** The paper's Table 1 measurements. */
    static std::vector<CalibrationPoint> table1Calibration();

  private:
    void fitAffine();

    PcieModelKind kind_;
    std::vector<CalibrationPoint> points_;

    // Affine fit parameters: T(s) = alpha_seconds_ + s / peak_bps_.
    double alpha_seconds_ = 0.0;
    double peak_bps_ = 1.0;
};

} // namespace uvmsim
