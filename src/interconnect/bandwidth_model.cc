#include "bandwidth_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace uvmsim
{

std::vector<PcieBandwidthModel::CalibrationPoint>
PcieBandwidthModel::table1Calibration()
{
    // ISCA'19 Table 1: PCI-e read bandwidth measured for different
    // transfer sizes on GTX 1080ti with PCI-e 3.0 16x.
    return {
        {4 * sizeKiB, 3.2219},
        {16 * sizeKiB, 6.4437},
        {64 * sizeKiB, 8.4771},
        {256 * sizeKiB, 10.508},
        {1024 * sizeKiB, 11.223},
    };
}

PcieBandwidthModel::PcieBandwidthModel(PcieModelKind kind)
    : PcieBandwidthModel(kind, table1Calibration())
{
}

PcieBandwidthModel::PcieBandwidthModel(PcieModelKind kind,
                                       std::vector<CalibrationPoint> points)
    : kind_(kind), points_(std::move(points))
{
    if (points_.size() < 2)
        fatal("PcieBandwidthModel needs at least two calibration points");
    if (!std::is_sorted(points_.begin(), points_.end(),
                        [](const auto &a, const auto &b) {
                            return a.bytes < b.bytes;
                        })) {
        fatal("PcieBandwidthModel calibration points must be sorted by size");
    }
    for (const auto &p : points_) {
        if (p.bytes == 0 || p.gb_per_sec <= 0.0)
            fatal("PcieBandwidthModel calibration point must be positive");
    }
    fitAffine();
}

void
PcieBandwidthModel::fitAffine()
{
    // Least-squares fit of T(s) = alpha + s / B over the calibration
    // points, treating T = s / bw as the observed latency.  Linear
    // regression of T against s: slope = 1/B, intercept = alpha.
    double n = static_cast<double>(points_.size());
    double sum_s = 0, sum_t = 0, sum_ss = 0, sum_st = 0;
    for (const auto &p : points_) {
        double s = static_cast<double>(p.bytes);
        double t = s / (p.gb_per_sec * 1e9);
        sum_s += s;
        sum_t += t;
        sum_ss += s * s;
        sum_st += s * t;
    }
    double denom = n * sum_ss - sum_s * sum_s;
    double slope = (n * sum_st - sum_s * sum_t) / denom;
    double intercept = (sum_t - slope * sum_s) / n;
    if (slope <= 0.0)
        fatal("PcieBandwidthModel affine fit produced non-positive slope");
    peak_bps_ = 1.0 / slope;
    alpha_seconds_ = std::max(intercept, 0.0);
}

double
PcieBandwidthModel::bandwidthBytesPerSec(std::uint64_t bytes) const
{
    if (bytes == 0)
        panic("bandwidth queried for zero-size transfer");

    if (kind_ == PcieModelKind::affine) {
        double t = alpha_seconds_ + static_cast<double>(bytes) / peak_bps_;
        return static_cast<double>(bytes) / t;
    }

    // Interpolated: clamp outside the calibrated range, piecewise
    // linear in log2(size) between points.
    const double s = std::log2(static_cast<double>(bytes));
    if (bytes <= points_.front().bytes)
        return points_.front().gb_per_sec * 1e9;
    if (bytes >= points_.back().bytes)
        return points_.back().gb_per_sec * 1e9;

    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (bytes <= points_[i].bytes) {
            const auto &lo = points_[i - 1];
            const auto &hi = points_[i];
            double s0 = std::log2(static_cast<double>(lo.bytes));
            double s1 = std::log2(static_cast<double>(hi.bytes));
            double f = (s - s0) / (s1 - s0);
            double bw = lo.gb_per_sec + f * (hi.gb_per_sec - lo.gb_per_sec);
            return bw * 1e9;
        }
    }
    panic("unreachable: calibration scan fell through");
}

Tick
PcieBandwidthModel::transferLatency(std::uint64_t bytes) const
{
    double seconds =
        static_cast<double>(bytes) / bandwidthBytesPerSec(bytes);
    return static_cast<Tick>(seconds * static_cast<double>(oneSecond) + 0.5);
}

} // namespace uvmsim
