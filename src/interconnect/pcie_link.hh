/**
 * @file
 * The CPU-GPU PCI-e interconnect.
 *
 * PCI-e is full duplex: the host-to-device (read/migration) channel and
 * the device-to-host (write-back) channel operate independently, but
 * transfers within one channel serialize.  Transfer timing comes from
 * the size-dependent PcieBandwidthModel, so larger grouped transfers
 * amortize activation overhead exactly as the paper's Table 1 shows.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "interconnect/bandwidth_model.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace uvmsim
{

/** Transfer direction over the link. */
enum class PcieDir
{
    hostToDevice, //!< Page migration into device memory ("read").
    deviceToHost, //!< Eviction write-back to host memory ("write").
};

/** Full-duplex, per-channel-serializing PCI-e link model. */
class PcieLink
{
  public:
    /** Invoked when a transfer's last byte has arrived. */
    using Callback = std::function<void()>;

    /**
     * @param eq    The simulation event queue.
     * @param model Transfer timing model (copied).
     */
    PcieLink(EventQueue &eq, PcieBandwidthModel model);

    /**
     * Enqueue one transfer.
     *
     * The transfer starts when the channel frees up and occupies it for
     * the model latency of its size.  The callback fires at completion.
     *
     * @return The absolute completion tick.
     */
    Tick transfer(PcieDir dir, std::uint64_t bytes, Callback cb);

    /** Tick at which the given channel becomes idle. */
    Tick channelFreeAt(PcieDir dir) const;

    /** Bytes moved so far in a direction. */
    std::uint64_t bytesTransferred(PcieDir dir) const;

    /** Transfers completed-or-scheduled so far in a direction. */
    std::uint64_t transferCount(PcieDir dir) const;

    /** Ticks the channel has been (or is committed to be) busy. */
    Tick busyTicks(PcieDir dir) const;

    /**
     * Average achieved bandwidth while the channel was busy, in GB/s.
     * This is the quantity plotted in the paper's Figure 4.
     */
    double averageBandwidthGBps(PcieDir dir) const;

    /** The timing model in use. */
    const PcieBandwidthModel &model() const { return model_; }

    /** Transfers scheduled on a channel but not yet completed. */
    std::uint64_t outstandingTransfers(PcieDir dir) const;

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

    /** Attach an event tracer (nullptr = tracing off, the default). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

  private:
    struct Channel
    {
        Tick free_at = 0;
        std::uint64_t bytes = 0;
        std::uint64_t transfers = 0;
        Tick busy = 0;
        /** Transfers scheduled but not yet landed (queue depth). */
        std::uint64_t outstanding = 0;
    };

    Channel &channel(PcieDir dir);
    const Channel &channel(PcieDir dir) const;

    EventQueue &eq_;
    PcieBandwidthModel model_;
    Channel h2d_;
    Channel d2h_;

    trace::Tracer *tracer_ = nullptr;

    stats::Counter h2d_transfers_;
    stats::Counter h2d_bytes_;
    stats::Counter d2h_transfers_;
    stats::Counter d2h_bytes_;
    stats::Histogram h2d_size_hist_;
    stats::Histogram d2h_size_hist_;
    stats::Formula h2d_avg_bw_;
    stats::Formula d2h_avg_bw_;
};

} // namespace uvmsim
