#include "workload.hh"

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_file.hh"

namespace uvmsim
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "backprop")
        return makeBackprop(params);
    if (name == "bfs")
        return makeBfs(params);
    if (name == "gemm")
        return makeGemm(params);
    if (name == "hotspot")
        return makeHotspot(params);
    if (name == "nw")
        return makeNw(params);
    if (name == "pathfinder")
        return makePathfinder(params);
    if (name == "srad")
        return makeSrad(params);
    if (name == "atax")
        return makeAtax(params);
    if (name == "kmeans")
        return makeKmeans(params);
    if (name == "dbbuffer")
        return makeDbBuffer(params);
    if (name == "llminfer")
        return makeLlmInfer(params);
    if (name == "trace") {
        if (params.trace_path.empty())
            fatal("the 'trace' workload needs a trace file "
                  "(--replay=PATH)");
        return makeTraceWorkloadFromFile(params.trace_path, params);
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
allWorkloadNames()
{
    return {"backprop", "bfs", "gemm", "hotspot", "nw", "pathfinder",
            "srad"};
}

std::vector<std::string>
extraWorkloadNames()
{
    return {"atax", "dbbuffer", "kmeans", "llminfer"};
}

} // namespace uvmsim
