#include "trace_file.hh"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "workloads/trace_util.hh"
#include "workloads/uvmt.hh"

namespace uvmsim
{

namespace
{

using tracefmt::TraceEvent;
using tracefmt::TraceEventKind;
using tracefmt::TraceSource;

class StreamTraceWorkload;

/**
 * A kernel whose thread blocks are pulled lazily from the workload's
 * trace source -- only one block's ops ever exist at a time.
 */
class StreamKernel : public Kernel
{
  public:
    StreamKernel(StreamTraceWorkload &wl, std::string name)
        : wl_(wl),
          name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    std::unique_ptr<ThreadBlock> nextThreadBlock() override;

  private:
    StreamTraceWorkload &wl_;
    std::string name_;
    std::uint64_t next_block_ = 0;
};

/** Replays a validated trace source as a workload, streaming. */
class StreamTraceWorkload : public Workload
{
  public:
    StreamTraceWorkload(OpenedTrace trace, const WorkloadParams &params,
                        std::string name)
        : trace_(std::move(trace)),
          params_(params),
          name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    void
    setup(ManagedSpace &space) override
    {
        for (const tracefmt::TraceAlloc &a : trace_.source->allocs())
            bases_.push_back(space.allocate(a.bytes, a.name).base());
        ready_ = true;
    }

    std::uint64_t totalKernels() const override
    {
        return trace_.source->kernelCount();
    }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("trace workload: nextKernel before setup");
        if (!primed_) {
            advance();
            primed_ = true;
        }
        // Skip any unconsumed remainder of the previous kernel (the
        // dispatcher normally drains it, but nextKernel invalidates
        // the prior kernel either way).
        while (have_pending_ &&
               pending_.kind != TraceEventKind::kernelBegin)
            advance();
        if (!have_pending_)
            return nullptr;
        current_ = std::make_unique<StreamKernel>(
            *this, pending_.kernel_name);
        advance();
        return current_.get();
    }

    /**
     * Materialize the next thread block of the current kernel, or
     * nullptr at the kernel's end.  Called by StreamKernel.
     */
    std::unique_ptr<ThreadBlock>
    nextBlock(std::uint64_t block_id)
    {
        if (!have_pending_ ||
            pending_.kind == TraceEventKind::kernelBegin)
            return nullptr;
        if (pending_.kind != TraceEventKind::blockBegin)
            panic("trace replay: record outside any thread block");
        advance();

        std::vector<WarpOp> ops;
        std::uint64_t access_count = 0;
        while (have_pending_ &&
               (pending_.kind == TraceEventKind::access ||
                pending_.kind == TraceEventKind::compute)) {
            if (pending_.kind == TraceEventKind::compute) {
                traceutil::beginOp(ops, pending_.compute);
            } else {
                WarpOp &op =
                    pending_.fused
                        ? ops.back()
                        : traceutil::beginOp(ops, pending_.compute);
                traceutil::appendAccess(
                    op, bases_[pending_.alloc_index] + pending_.offset,
                    pending_.size, pending_.is_write);
                ++access_count;
            }
            advance();
        }

        const std::uint64_t block_bytes =
            ops.size() * sizeof(WarpOp) +
            access_count * sizeof(TraceAccess);
        peak_bytes_ = std::max(
            peak_bytes_, trace_.source->bufferedBytes() + block_bytes);

        auto tb = std::make_unique<ThreadBlock>();
        tb->id = block_id;
        tb->warps = traceutil::splitAmongWarps(std::move(ops),
                                               params_.warps_per_tb);
        return tb;
    }

    /** Peak decoder + block bytes seen so far (see trace_file.hh). */
    std::uint64_t peakBytes() const { return peak_bytes_; }

  private:
    void advance() { have_pending_ = trace_.source->next(pending_); }

    OpenedTrace trace_;
    WorkloadParams params_;
    std::string name_;
    std::vector<Addr> bases_;
    bool ready_ = false;
    bool primed_ = false;
    bool have_pending_ = false;
    TraceEvent pending_;
    std::unique_ptr<Kernel> current_;
    std::uint64_t peak_bytes_ = 0;
};

std::unique_ptr<ThreadBlock>
StreamKernel::nextThreadBlock()
{
    return wl_.nextBlock(next_block_++);
}

std::string
basename(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

OpenedTrace
openTraceFile(const std::string &path)
{
    OpenedTrace trace;
    if (tracefmt::isUvmtFile(path)) {
        trace.source = tracefmt::openUvmtTrace(path);
        return trace;
    }
    auto file = std::make_unique<std::ifstream>(path);
    if (!*file)
        fatal("cannot open trace file '%s'", path.c_str());
    trace.source = tracefmt::openTextTrace(*file);
    trace.backing = std::move(file);
    return trace;
}

std::unique_ptr<Workload>
makeTraceWorkload(std::istream &input, const WorkloadParams &params,
                  std::string name)
{
    OpenedTrace trace;
    trace.source = tracefmt::openTextTrace(input);
    return std::make_unique<StreamTraceWorkload>(std::move(trace),
                                                 params,
                                                 std::move(name));
}

std::unique_ptr<Workload>
makeTraceWorkloadFromFile(const std::string &path,
                          const WorkloadParams &params)
{
    return std::make_unique<StreamTraceWorkload>(openTraceFile(path),
                                                 params,
                                                 basename(path));
}

std::uint64_t
traceReplayPeakBytes(const Workload &wl)
{
    const auto *replay = dynamic_cast<const StreamTraceWorkload *>(&wl);
    return replay == nullptr ? 0 : replay->peakBytes();
}

} // namespace uvmsim
