#include "trace_file.hh"

#include <fstream>
#include <sstream>
#include <vector>

#include "sim/logging.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

/** One parsed access record. */
struct TraceRecord
{
    std::size_t alloc_index;
    std::uint64_t offset;
    std::uint32_t size;
    bool is_write;
    Cycles compute;
};

/** One parsed thread block: an ordered access list. */
struct TraceBlock
{
    std::vector<TraceRecord> records;
};

/** One parsed kernel launch. */
struct TraceKernelDesc
{
    std::string name;
    std::vector<TraceBlock> blocks;
};

/** The fully parsed trace. */
struct TraceProgram
{
    std::vector<std::pair<std::string, std::uint64_t>> allocs;
    std::vector<TraceKernelDesc> kernels;
};

TraceProgram
parse(std::istream &input)
{
    TraceProgram prog;
    std::string line;
    std::size_t line_no = 0;
    bool seen_kernel = false;

    while (std::getline(input, line)) {
        ++line_no;
        std::istringstream iss(line);
        std::string word;
        if (!(iss >> word) || word[0] == '#')
            continue;

        if (word == "alloc") {
            if (seen_kernel)
                fatal("trace line %zu: alloc after first kernel",
                      line_no);
            std::string name;
            std::uint64_t bytes = 0;
            if (!(iss >> name >> bytes) || bytes == 0)
                fatal("trace line %zu: expected 'alloc <name> <bytes>'",
                      line_no);
            prog.allocs.emplace_back(name, bytes);
        } else if (word == "kernel") {
            std::string name;
            if (!(iss >> name))
                fatal("trace line %zu: expected 'kernel <name>'",
                      line_no);
            seen_kernel = true;
            prog.kernels.push_back(TraceKernelDesc{name, {}});
        } else if (word == "tb") {
            if (prog.kernels.empty())
                fatal("trace line %zu: 'tb' before any kernel", line_no);
            prog.kernels.back().blocks.emplace_back();
        } else {
            // Access record: <alloc> <offset> <size> <r|w> [cycles]
            if (prog.kernels.empty() ||
                prog.kernels.back().blocks.empty())
                fatal("trace line %zu: access before any 'tb'", line_no);
            TraceRecord rec{};
            std::string rw;
            std::uint64_t cycles = 4;
            std::istringstream rss(line);
            if (!(rss >> rec.alloc_index >> rec.offset >> rec.size >>
                  rw))
                fatal("trace line %zu: expected '<alloc> <offset> "
                      "<size> <r|w> [cycles]'",
                      line_no);
            rss >> cycles;
            if (rec.alloc_index >= prog.allocs.size())
                fatal("trace line %zu: allocation index %zu out of "
                      "range",
                      line_no, rec.alloc_index);
            if (rec.size == 0)
                fatal("trace line %zu: zero-size access", line_no);
            if (rec.offset + rec.size >
                prog.allocs[rec.alloc_index].second)
                fatal("trace line %zu: access past end of allocation",
                      line_no);
            if (rw != "r" && rw != "w")
                fatal("trace line %zu: access kind must be r or w",
                      line_no);
            rec.is_write = rw == "w";
            rec.compute = cycles;
            prog.kernels.back().blocks.back().records.push_back(rec);
        }
    }
    if (prog.allocs.empty())
        fatal("trace declares no allocations");
    return prog;
}

class TraceWorkload : public Workload
{
  public:
    TraceWorkload(TraceProgram prog, const WorkloadParams &params,
                  std::string name)
        : prog_(std::move(prog)),
          params_(params),
          name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    void
    setup(ManagedSpace &space) override
    {
        for (const auto &[alloc_name, bytes] : prog_.allocs)
            bases_.push_back(space.allocate(bytes, alloc_name).base());
        ready_ = true;
    }

    std::uint64_t totalKernels() const override
    {
        return prog_.kernels.size();
    }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("trace workload: nextKernel before setup");
        if (next_ >= prog_.kernels.size())
            return nullptr;

        const TraceKernelDesc &desc = prog_.kernels[next_];
        current_ = std::make_unique<GridKernel>(
            desc.name, desc.blocks.size(),
            [this, &desc](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                for (const TraceRecord &rec :
                     desc.blocks[tb].records) {
                    WarpOp &op = traceutil::beginOp(ops, rec.compute);
                    traceutil::appendAccess(
                        op, bases_[rec.alloc_index] + rec.offset,
                        rec.size, rec.is_write);
                }
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
        ++next_;
        return current_.get();
    }

  private:
    TraceProgram prog_;
    WorkloadParams params_;
    std::string name_;
    std::vector<Addr> bases_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;
};

} // namespace

std::unique_ptr<Workload>
makeTraceWorkload(std::istream &input, const WorkloadParams &params,
                  std::string name)
{
    return std::make_unique<TraceWorkload>(parse(input), params,
                                           std::move(name));
}

std::unique_ptr<Workload>
makeTraceWorkloadFromFile(const std::string &path,
                          const WorkloadParams &params)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    std::string name = path;
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return makeTraceWorkload(file, params, name);
}

} // namespace uvmsim
