/**
 * @file
 * Rodinia kmeans, UVM port (suite extension, not one of the paper's
 * seven benchmarks).
 *
 * Iterative clustering: every iteration streams the full feature
 * matrix (point-major), keeps the small centroid table hot, and
 * writes each point's membership.  The whole footprint is re-touched
 * per iteration in the *same* order -- the textbook repetitive linear
 * scan that makes plain LRU pathological (paper Sec. 5.3's motivating
 * pattern for reservation/MRU).
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class KmeansWorkload : public Workload
{
  public:
    explicit KmeansWorkload(const WorkloadParams &params)
        : params_(params)
    {
        points_ = static_cast<std::uint64_t>(
            524288 * params.size_scale);
        points_ =
            std::max<std::uint64_t>(16384, points_ & ~std::uint64_t{4095});
        dims_ = 4;
        iterations_ = params.iterations ? params.iterations : 5;
    }

    std::string name() const override { return "kmeans"; }

    void
    setup(ManagedSpace &space) override
    {
        features_ =
            space.allocate(points_ * dims_ * 4, "kmeans_features").base();
        clusters_ = space.allocate(kib(8), "kmeans_clusters").base();
        membership_ =
            space.allocate(points_ * 4, "kmeans_membership").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return iterations_; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("kmeans: nextKernel before setup");
        if (next_ >= iterations_)
            return nullptr;

        const std::uint64_t points_per_tb = 16384;
        const std::uint64_t blocks = points_ / points_per_tb;

        current_ = std::make_unique<GridKernel>(
            "kmeans_kernel_" + std::to_string(next_), blocks,
            [this, points_per_tb](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                std::uint64_t p0 = tb * points_per_tb;
                // Stream this block's slice of the feature matrix.
                traceutil::appendStream(
                    ops, features_ + p0 * dims_ * 4,
                    points_per_tb * dims_ * 4, 1024, false, 10);
                // Hot centroid reads interleaved with membership
                // writes, one per 256-point chunk.
                for (std::uint64_t c = 0; c < points_per_tb; c += 256) {
                    WarpOp &op = traceutil::beginOp(ops, 16);
                    traceutil::appendAccess(op, clusters_, 512, false);
                    traceutil::appendAccess(
                        op, membership_ + (p0 + c) * 4, 1024, true);
                }
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t points_;
    std::uint64_t dims_;
    std::uint64_t iterations_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr features_ = 0;
    Addr clusters_ = 0;
    Addr membership_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeKmeans(const WorkloadParams &params)
{
    return std::make_unique<KmeansWorkload>(params);
}

} // namespace uvmsim
