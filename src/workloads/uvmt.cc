#include "uvmt.hh"

#include <cstring>
#include <fstream>
#include <vector>

#include "sim/logging.hh"

namespace uvmsim::tracefmt
{

namespace
{

/** Longest legal varint: 10 bytes covers 64 bits. */
constexpr int maxVarintBytes = 10;

/** Sanity cap on embedded string lengths (names are short labels). */
constexpr std::uint64_t maxNameBytes = 4096;

/** Decoder chunk size: the whole look-ahead the reader ever holds. */
constexpr std::size_t chunkBytes = 64 * 1024;

std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(0x80 | (v & 0x7f)));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putU32le(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64le(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** The .uvmt encoder. */
class UvmtSink : public TraceSink
{
  public:
    explicit UvmtSink(std::ostream &out)
        : out_(out)
    {}

    void
    begin(const std::vector<TraceAlloc> &allocs) override
    {
        std::string buf;
        buf.append(uvmtMagic, sizeof(uvmtMagic));
        putU32le(buf, uvmtVersion);
        putU64le(buf, 0); // kernel count, patched by end()
        putU64le(buf, 0); // record count, patched by end()
        putVarint(buf, allocs.size());
        for (const TraceAlloc &a : allocs) {
            if (a.bytes == 0)
                panic("uvmt: zero-size allocation in trace header");
            putVarint(buf, a.name.size());
            buf.append(a.name);
            putVarint(buf, a.bytes);
        }
        out_.write(buf.data(),
                   static_cast<std::streamsize>(buf.size()));
        alloc_bytes_.clear();
        for (const TraceAlloc &a : allocs)
            alloc_bytes_.push_back(a.bytes);
        next_offset_.assign(alloc_bytes_.size(), 0);
    }

    void
    event(const TraceEvent &ev) override
    {
        std::string buf;
        switch (ev.kind) {
          case TraceEventKind::kernelBegin:
            buf.push_back(static_cast<char>(UvmtOp::kernel));
            putVarint(buf, ev.kernel_name.size());
            buf.append(ev.kernel_name);
            next_offset_.assign(next_offset_.size(), 0);
            ++kernel_count_;
            break;
          case TraceEventKind::blockBegin:
            buf.push_back(static_cast<char>(UvmtOp::tb));
            break;
          case TraceEventKind::compute:
            buf.push_back(static_cast<char>(UvmtOp::compute));
            putVarint(buf, ev.compute);
            ++record_count_;
            break;
          case TraceEventKind::access: {
            if (ev.alloc_index >= alloc_bytes_.size())
                panic("uvmt: access to unknown allocation %u",
                      ev.alloc_index);
            if (ev.size == 0 ||
                ev.offset + ev.size > alloc_bytes_[ev.alloc_index])
                panic("uvmt: access outside allocation %u",
                      ev.alloc_index);
            std::uint8_t flags = 0;
            if (ev.is_write)
                flags |= uvmtFlagWrite;
            if (ev.fused)
                flags |= uvmtFlagFused;
            const bool explicit_cycles =
                !ev.fused && ev.compute != defaultComputeCycles;
            if (explicit_cycles)
                flags |= uvmtFlagCycles;
            buf.push_back(static_cast<char>(UvmtOp::access));
            buf.push_back(static_cast<char>(flags));
            putVarint(buf, ev.alloc_index);
            // Delta against the byte after the previous access to the
            // same allocation: sequential streams encode as zero.
            const std::int64_t delta = static_cast<std::int64_t>(
                ev.offset - next_offset_[ev.alloc_index]);
            putVarint(buf, zigzagEncode(delta));
            putVarint(buf, ev.size);
            if (explicit_cycles)
                putVarint(buf, ev.compute);
            next_offset_[ev.alloc_index] = ev.offset + ev.size;
            ++record_count_;
            break;
          }
        }
        out_.write(buf.data(),
                   static_cast<std::streamsize>(buf.size()));
    }

    void
    end() override
    {
        const char op = static_cast<char>(UvmtOp::end);
        out_.write(&op, 1);
        // Patch the counts the header promised.
        std::string counts;
        putU64le(counts, kernel_count_);
        putU64le(counts, record_count_);
        out_.seekp(8);
        out_.write(counts.data(),
                   static_cast<std::streamsize>(counts.size()));
        out_.seekp(0, std::ios::end);
        out_.flush();
        if (!out_)
            fatal("trace output stream failed while writing");
    }

  private:
    std::ostream &out_;
    std::vector<std::uint64_t> alloc_bytes_;
    /** Per allocation: the byte after the last access (delta base). */
    std::vector<std::uint64_t> next_offset_;
    std::uint64_t kernel_count_ = 0;
    std::uint64_t record_count_ = 0;
};

/**
 * The .uvmt decoder.  Reads through a fixed 64KB chunk buffer and
 * fully validates the file at construction (then rewinds), so every
 * structural error -- truncation, bad varints, count mismatches --
 * dies with a byte-offset diagnostic before simulation starts.
 */
class UvmtReader : public TraceSource
{
  public:
    explicit UvmtReader(std::string path)
        : path_(std::move(path)),
          input_(path_, std::ios::binary)
    {
        if (!input_)
            fatal("cannot open trace file '%s'", path_.c_str());
        buffer_.resize(chunkBytes);
        parseHeader();
        body_start_ = consumed_;
        // Validating pre-pass: decode every record once, then rewind.
        TraceEvent ev;
        while (next(ev)) {
        }
        rewind();
    }

    const std::vector<TraceAlloc> &allocs() const override
    {
        return allocs_;
    }

    std::uint64_t kernelCount() const override { return kernel_count_; }
    std::uint64_t recordCount() const override { return record_count_; }

    bool
    next(TraceEvent &ev) override
    {
        if (finished_)
            return false;
        const std::uint64_t at = consumed_;
        int c = tryByte();
        if (c < 0)
            fatal("uvmt '%s': offset %llu: trace ends without "
                  "end-of-trace marker",
                  path_.c_str(),
                  static_cast<unsigned long long>(at));
        switch (static_cast<UvmtOp>(c)) {
          case UvmtOp::kernel: {
            const std::uint64_t len = varint(at);
            if (len > maxNameBytes)
                fatal("uvmt '%s': offset %llu: kernel name length "
                      "%llu is implausible",
                      path_.c_str(),
                      static_cast<unsigned long long>(at),
                      static_cast<unsigned long long>(len));
            ev = TraceEvent{};
            ev.kind = TraceEventKind::kernelBegin;
            ev.kernel_name = readString(len, at);
            next_offset_.assign(allocs_.size(), 0);
            seen_kernel_ = true;
            in_block_ = false;
            in_op_ = false;
            ++kernels_seen_;
            return true;
          }
          case UvmtOp::tb:
            if (!seen_kernel_)
                fatal("uvmt '%s': offset %llu: 'tb' before any kernel",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            ev = TraceEvent{};
            ev.kind = TraceEventKind::blockBegin;
            in_block_ = true;
            in_op_ = false;
            return true;
          case UvmtOp::compute:
            if (!in_block_)
                fatal("uvmt '%s': offset %llu: record before any "
                      "thread block",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            ev = TraceEvent{};
            ev.kind = TraceEventKind::compute;
            ev.compute = varint(at);
            in_op_ = false;
            ++records_seen_;
            return true;
          case UvmtOp::access: {
            if (!in_block_)
                fatal("uvmt '%s': offset %llu: record before any "
                      "thread block",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            const int flags = tryByte();
            if (flags < 0)
                fatal("uvmt '%s': offset %llu: unexpected end of "
                      "trace",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            const bool fused = flags & uvmtFlagFused;
            if (fused && !in_op_)
                fatal("uvmt '%s': offset %llu: fused access before "
                      "any op",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            const std::uint64_t alloc_index = varint(at);
            if (alloc_index >= allocs_.size())
                fatal("uvmt '%s': offset %llu: allocation index %llu "
                      "out of range",
                      path_.c_str(),
                      static_cast<unsigned long long>(at),
                      static_cast<unsigned long long>(alloc_index));
            const std::int64_t delta = zigzagDecode(varint(at));
            const std::int64_t offset =
                static_cast<std::int64_t>(next_offset_[alloc_index]) +
                delta;
            if (offset < 0)
                fatal("uvmt '%s': offset %llu: access offset "
                      "underflows its allocation",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            const std::uint64_t size = varint(at);
            if (size == 0)
                fatal("uvmt '%s': offset %llu: zero-size access",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            if (static_cast<std::uint64_t>(offset) + size >
                allocs_[alloc_index].bytes)
                fatal("uvmt '%s': offset %llu: access past end of "
                      "allocation",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            ev = TraceEvent{};
            ev.kind = TraceEventKind::access;
            ev.alloc_index = static_cast<std::uint32_t>(alloc_index);
            ev.offset = static_cast<std::uint64_t>(offset);
            ev.size = static_cast<std::uint32_t>(size);
            ev.is_write = flags & uvmtFlagWrite;
            ev.fused = fused;
            ev.compute = fused ? Cycles{0}
                               : (flags & uvmtFlagCycles
                                      ? Cycles{varint(at)}
                                      : defaultComputeCycles);
            next_offset_[alloc_index] = ev.offset + size;
            in_op_ = true;
            ++records_seen_;
            return true;
          }
          case UvmtOp::end: {
            if (kernels_seen_ != kernel_count_)
                fatal("uvmt '%s': header declares %llu kernels but "
                      "the body contains %llu",
                      path_.c_str(),
                      static_cast<unsigned long long>(kernel_count_),
                      static_cast<unsigned long long>(kernels_seen_));
            if (records_seen_ != record_count_)
                fatal("uvmt '%s': header declares %llu records but "
                      "the body contains %llu",
                      path_.c_str(),
                      static_cast<unsigned long long>(record_count_),
                      static_cast<unsigned long long>(records_seen_));
            if (tryByte() >= 0)
                fatal("uvmt '%s': offset %llu: trailing bytes after "
                      "end-of-trace marker",
                      path_.c_str(),
                      static_cast<unsigned long long>(at + 1));
            finished_ = true;
            return false;
          }
        }
        fatal("uvmt '%s': offset %llu: unknown opcode 0x%02x",
              path_.c_str(), static_cast<unsigned long long>(at), c);
    }

    void
    rewind() override
    {
        input_.clear();
        input_.seekg(static_cast<std::streamoff>(body_start_));
        consumed_ = body_start_;
        filled_ = 0;
        pos_ = 0;
        next_offset_.assign(allocs_.size(), 0);
        seen_kernel_ = false;
        in_block_ = false;
        in_op_ = false;
        finished_ = false;
        kernels_seen_ = 0;
        records_seen_ = 0;
    }

    std::uint64_t
    bufferedBytes() const override
    {
        return buffer_.capacity() + sizeof(*this);
    }

  private:
    /** Next byte, or -1 at end of file. */
    int
    tryByte()
    {
        if (pos_ >= filled_) {
            input_.read(buffer_.data(),
                        static_cast<std::streamsize>(buffer_.size()));
            filled_ = static_cast<std::size_t>(input_.gcount());
            pos_ = 0;
            if (filled_ == 0)
                return -1;
        }
        ++consumed_;
        return static_cast<unsigned char>(buffer_[pos_++]);
    }

    /** Next byte; fatal() at end of file. */
    std::uint8_t
    byte(std::uint64_t record_at)
    {
        const int c = tryByte();
        if (c < 0)
            fatal("uvmt '%s': offset %llu: unexpected end of trace",
                  path_.c_str(),
                  static_cast<unsigned long long>(record_at));
        return static_cast<std::uint8_t>(c);
    }

    std::uint64_t
    varint(std::uint64_t record_at)
    {
        std::uint64_t v = 0;
        for (int i = 0; i < maxVarintBytes; ++i) {
            const std::uint8_t b = byte(record_at);
            v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
            if (!(b & 0x80))
                return v;
        }
        fatal("uvmt '%s': offset %llu: varint longer than %d bytes",
              path_.c_str(),
              static_cast<unsigned long long>(record_at),
              maxVarintBytes);
    }

    std::string
    readString(std::uint64_t len, std::uint64_t record_at)
    {
        std::string s;
        s.reserve(len);
        for (std::uint64_t i = 0; i < len; ++i)
            s.push_back(static_cast<char>(byte(record_at)));
        return s;
    }

    void
    parseHeader()
    {
        char magic[4];
        for (char &m : magic)
            m = static_cast<char>(byte(0));
        if (std::memcmp(magic, uvmtMagic, sizeof(uvmtMagic)) != 0)
            fatal("'%s' is not a .uvmt trace (bad magic)",
                  path_.c_str());
        std::uint32_t version = 0;
        for (int i = 0; i < 4; ++i)
            version |= static_cast<std::uint32_t>(byte(4)) << (8 * i);
        if (version != uvmtVersion)
            fatal("uvmt '%s': unsupported version %u (this reader "
                  "implements version %u)",
                  path_.c_str(), version, uvmtVersion);
        kernel_count_ = 0;
        for (int i = 0; i < 8; ++i)
            kernel_count_ |= static_cast<std::uint64_t>(byte(8))
                             << (8 * i);
        record_count_ = 0;
        for (int i = 0; i < 8; ++i)
            record_count_ |= static_cast<std::uint64_t>(byte(16))
                             << (8 * i);
        const std::uint64_t table_at = consumed_;
        const std::uint64_t count = varint(table_at);
        if (count == 0)
            fatal("uvmt '%s': trace declares no allocations",
                  path_.c_str());
        if (count > (1u << 20))
            fatal("uvmt '%s': offset %llu: allocation count %llu is "
                  "implausible",
                  path_.c_str(),
                  static_cast<unsigned long long>(table_at),
                  static_cast<unsigned long long>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t at = consumed_;
            const std::uint64_t len = varint(at);
            if (len > maxNameBytes)
                fatal("uvmt '%s': offset %llu: allocation name "
                      "length %llu is implausible",
                      path_.c_str(),
                      static_cast<unsigned long long>(at),
                      static_cast<unsigned long long>(len));
            TraceAlloc a;
            a.name = readString(len, at);
            a.bytes = varint(at);
            if (a.bytes == 0)
                fatal("uvmt '%s': offset %llu: zero-size allocation",
                      path_.c_str(),
                      static_cast<unsigned long long>(at));
            allocs_.push_back(std::move(a));
        }
        next_offset_.assign(allocs_.size(), 0);
    }

    std::string path_;
    std::ifstream input_;
    std::vector<char> buffer_;
    std::size_t filled_ = 0;
    std::size_t pos_ = 0;
    /** Absolute file offset of the next undecoded byte. */
    std::uint64_t consumed_ = 0;
    std::uint64_t body_start_ = 0;

    std::vector<TraceAlloc> allocs_;
    std::uint64_t kernel_count_ = 0;
    std::uint64_t record_count_ = 0;
    /** Per allocation: the byte after the last access (delta base). */
    std::vector<std::uint64_t> next_offset_;
    bool seen_kernel_ = false;
    bool in_block_ = false;
    bool in_op_ = false;
    bool finished_ = false;
    std::uint64_t kernels_seen_ = 0;
    std::uint64_t records_seen_ = 0;
};

} // namespace

std::unique_ptr<TraceSource>
openUvmtTrace(const std::string &path)
{
    return std::make_unique<UvmtReader>(path);
}

std::unique_ptr<TraceSink>
makeUvmtSink(std::ostream &out)
{
    return std::make_unique<UvmtSink>(out);
}

bool
isUvmtFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    char magic[4] = {};
    file.read(magic, sizeof(magic));
    return file.gcount() == sizeof(magic) &&
           std::memcmp(magic, uvmtMagic, sizeof(uvmtMagic)) == 0;
}

} // namespace uvmsim::tracefmt
