/**
 * @file
 * Shared helpers for building warp traces.
 *
 * All benchmark generators express their access patterns as lists of
 * WarpOps built through these helpers, which take care of page-safe
 * splitting (a coalesced transaction never crosses a 4KB page) and of
 * distributing a thread block's ops across its warps.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/warp_trace.hh"
#include "mem/types.hh"

namespace uvmsim::traceutil
{

/**
 * Append one access to an op, splitting at page boundaries so each
 * TraceAccess stays within a page.
 */
void appendAccess(WarpOp &op, Addr addr, std::uint32_t bytes,
                  bool is_write);

/**
 * Append a run of ops streaming through [base, base + bytes): one op
 * per `granule` bytes, each a single coalesced access.
 *
 * @param compute Cycles of compute preceding each op's access.
 */
void appendStream(std::vector<WarpOp> &ops, Addr base,
                  std::uint64_t bytes, std::uint32_t granule,
                  bool is_write, Cycles compute);

/**
 * Begin a new op with the given compute burst and return it for
 * appendAccess calls.
 */
WarpOp &beginOp(std::vector<WarpOp> &ops, Cycles compute);

/**
 * Deal a thread block's ops round-robin across `warps` warp traces
 * (the usual "consecutive warps take consecutive chunks" layout).
 * Empty warps are dropped; at least one warp is always returned when
 * ops is non-empty.
 */
std::vector<std::unique_ptr<WarpTrace>>
splitAmongWarps(std::vector<WarpOp> ops, std::uint32_t warps);

} // namespace uvmsim::traceutil
