#include "trace_util.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace uvmsim::traceutil
{

void
appendAccess(WarpOp &op, Addr addr, std::uint32_t bytes, bool is_write)
{
    if (bytes == 0)
        panic("zero-byte trace access");
    while (bytes > 0) {
        Addr page_end = alignToPage(addr) + pageSize;
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bytes, page_end - addr));
        op.accesses.push_back(TraceAccess{addr, chunk, is_write});
        addr += chunk;
        bytes -= chunk;
    }
}

void
appendStream(std::vector<WarpOp> &ops, Addr base, std::uint64_t bytes,
             std::uint32_t granule, bool is_write, Cycles compute)
{
    if (granule == 0)
        panic("zero granule");
    Addr addr = base;
    std::uint64_t remaining = bytes;
    while (remaining > 0) {
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(granule, remaining));
        WarpOp op;
        op.compute_cycles = compute;
        appendAccess(op, addr, chunk, is_write);
        ops.push_back(std::move(op));
        addr += chunk;
        remaining -= chunk;
    }
}

WarpOp &
beginOp(std::vector<WarpOp> &ops, Cycles compute)
{
    ops.emplace_back();
    ops.back().compute_cycles = compute;
    return ops.back();
}

std::vector<std::unique_ptr<WarpTrace>>
splitAmongWarps(std::vector<WarpOp> ops, std::uint32_t warps)
{
    if (warps == 0)
        panic("splitAmongWarps with zero warps");

    std::vector<std::vector<WarpOp>> lanes(warps);
    for (std::size_t i = 0; i < ops.size(); ++i)
        lanes[i % warps].push_back(std::move(ops[i]));

    std::vector<std::unique_ptr<WarpTrace>> out;
    for (auto &lane : lanes) {
        if (!lane.empty())
            out.push_back(std::make_unique<VectorTrace>(std::move(lane)));
    }
    if (out.empty())
        out.push_back(std::make_unique<VectorTrace>(std::vector<WarpOp>{}));
    return out;
}

} // namespace uvmsim::traceutil
