/**
 * @file
 * Rodinia backprop, UVM port.
 *
 * A two-layer neural network training step.  The footprint is
 * dominated by the input-to-hidden weight matrix and its momentum
 * twin; both are streamed once per kernel.  Two kernel launches:
 *
 *   bpnn_layerforward : reads input_units and input_weights,
 *                       accumulates hidden sums (streaming read).
 *   bpnn_adjust_weights: reads deltas, reads+writes input_weights and
 *                        input_prev_weights (streaming read-write).
 *
 * Access-pattern class (paper Sec. 7.1): pure streaming, no data reuse
 * across kernels beyond the tiny vectors -- the benchmark shows no
 * sensitivity to eviction policy and no thrashing.
 */

#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class BackpropWorkload : public Workload
{
  public:
    explicit BackpropWorkload(const WorkloadParams &params)
        : params_(params)
    {
        // Default: 98304 input units, 16 hidden units -- a ~13MB
        // footprint at scale 1.0.
        double scale = std::sqrt(params.size_scale);
        in_ = static_cast<std::uint64_t>(98304 * params.size_scale);
        in_ = std::max<std::uint64_t>(4096, in_ & ~std::uint64_t{31});
        (void)scale;
        hid_ = 16;
    }

    std::string name() const override { return "backprop"; }

    void
    setup(ManagedSpace &space) override
    {
        input_units_ = space.allocate(in_ * 4, "input_units").base();
        input_weights_ =
            space.allocate(in_ * (hid_ + 1) * 4, "input_weights").base();
        prev_weights_ =
            space.allocate(in_ * (hid_ + 1) * 4, "input_prev_weights")
                .base();
        hidden_units_ = space.allocate(kib(4), "hidden_units").base();
        hidden_delta_ = space.allocate(kib(4), "hidden_delta").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return 2; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("backprop: nextKernel before setup");
        if (next_ >= totalKernels())
            return nullptr;

        // Thread blocks partition the input dimension.
        const std::uint64_t chunk = 2048; // input units per block
        const std::uint64_t blocks = in_ / chunk;
        const std::uint64_t row_bytes = (hid_ + 1) * 4;

        if (next_ == 0) {
            current_ = std::make_unique<GridKernel>(
                "bpnn_layerforward", blocks,
                [this, chunk, row_bytes](std::uint64_t tb) {
                    std::vector<WarpOp> ops;
                    Addr units = input_units_ + tb * chunk * 4;
                    Addr weights =
                        input_weights_ + tb * chunk * row_bytes;
                    // Stream this block's input slice and weight rows.
                    traceutil::appendStream(ops, units, chunk * 4, 512,
                                            false, 8);
                    traceutil::appendStream(ops, weights,
                                            chunk * row_bytes, 512,
                                            false, 4);
                    // Partial-sum write to the tiny hidden arrays.
                    WarpOp &sum = traceutil::beginOp(ops, 16);
                    traceutil::appendAccess(sum, hidden_units_, 64, true);
                    return traceutil::splitAmongWarps(
                        std::move(ops), params_.warps_per_tb);
                });
        } else {
            current_ = std::make_unique<GridKernel>(
                "bpnn_adjust_weights", blocks,
                [this, chunk, row_bytes](std::uint64_t tb) {
                    std::vector<WarpOp> ops;
                    Addr weights =
                        input_weights_ + tb * chunk * row_bytes;
                    Addr prev = prev_weights_ + tb * chunk * row_bytes;
                    WarpOp &delta = traceutil::beginOp(ops, 8);
                    traceutil::appendAccess(delta, hidden_delta_, 64,
                                            false);
                    // Read-modify-write both weight matrices.
                    traceutil::appendStream(ops, weights,
                                            chunk * row_bytes, 512,
                                            true, 6);
                    traceutil::appendStream(ops, prev,
                                            chunk * row_bytes, 512,
                                            true, 6);
                    return traceutil::splitAmongWarps(
                        std::move(ops), params_.warps_per_tb);
                });
        }
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t in_;
    std::uint64_t hid_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr input_units_ = 0;
    Addr input_weights_ = 0;
    Addr prev_weights_ = 0;
    Addr hidden_units_ = 0;
    Addr hidden_delta_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBackprop(const WorkloadParams &params)
{
    return std::make_unique<BackpropWorkload>(params);
}

} // namespace uvmsim
