#include "trace_record.hh"

#include <vector>

#include "core/managed_space.hh"
#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

using tracefmt::TraceEvent;
using tracefmt::TraceEventKind;
using tracefmt::TraceSink;

/** Map an address into (allocation index, offset) for the record. */
struct AllocMapper
{
    explicit AllocMapper(const ManagedSpace &space)
    {
        for (const auto &alloc : space.allocations()) {
            Range r;
            r.base = alloc->base();
            r.end = alloc->base() + alloc->paddedBytes();
            ranges.push_back(r);
        }
    }

    void
    map(Addr addr, std::uint32_t size, std::uint32_t &alloc_index,
        std::uint64_t &offset) const
    {
        for (std::size_t i = 0; i < ranges.size(); ++i) {
            if (addr >= ranges[i].base && addr + size <= ranges[i].end) {
                alloc_index = static_cast<std::uint32_t>(i);
                offset = addr - ranges[i].base;
                return;
            }
        }
        fatal("trace record: access at 0x%llx (%u bytes) lies outside "
              "every managed allocation",
              static_cast<unsigned long long>(addr), size);
    }

    struct Range
    {
        Addr base = 0;
        Addr end = 0;
    };
    std::vector<Range> ranges;
};

void
emitOp(const WarpOp &op, const AllocMapper &mapper, TraceSink &sink)
{
    if (op.accesses.empty()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::compute;
        ev.compute = op.compute_cycles;
        sink.event(ev);
        return;
    }
    bool first = true;
    for (const TraceAccess &a : op.accesses) {
        TraceEvent ev;
        ev.kind = TraceEventKind::access;
        mapper.map(a.addr, a.size, ev.alloc_index, ev.offset);
        ev.size = a.size;
        ev.is_write = a.is_write;
        ev.fused = !first;
        ev.compute = first ? op.compute_cycles : Cycles{0};
        sink.event(ev);
        first = false;
    }
}

} // namespace

void
recordWorkload(Workload &wl, std::uint32_t warps_per_tb,
               tracefmt::TraceSink &sink)
{
    ManagedSpace space;
    wl.setup(space);

    // Declare the padded sizes: workloads may legally touch padding
    // pages (they are managed and faultable), and padding is a fixed
    // point of the allocator's rounding, so replaying the recorded
    // sizes rebuilds the exact same trees and footprint.
    std::vector<tracefmt::TraceAlloc> allocs;
    for (const auto &alloc : space.allocations())
        allocs.push_back(
            tracefmt::TraceAlloc{alloc->name(), alloc->paddedBytes()});
    sink.begin(allocs);
    const AllocMapper mapper(space);

    while (Kernel *kernel = wl.nextKernel()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kernelBegin;
        ev.kernel_name = kernel->name();
        sink.event(ev);

        while (auto tb = kernel->nextThreadBlock()) {
            TraceEvent begin;
            begin.kind = TraceEventKind::blockBegin;
            sink.event(begin);

            // Drain every warp, then interleave the lanes back into
            // the block's original op order -- the exact inverse of
            // traceutil::splitAmongWarps, so replaying with the same
            // warps_per_tb rebuilds identical warp streams.
            std::vector<std::vector<WarpOp>> lanes;
            lanes.reserve(tb->warps.size());
            for (const auto &warp : tb->warps) {
                lanes.emplace_back();
                WarpOp op;
                while (warp->next(op))
                    lanes.back().push_back(op);
            }
            if (lanes.size() > warps_per_tb)
                fatal("trace record: thread block has %zu warps but "
                      "the recording assumes at most %u",
                      lanes.size(), warps_per_tb);
            for (std::size_t round = 0;; ++round) {
                bool any = false;
                for (const auto &lane : lanes) {
                    if (round < lane.size()) {
                        emitOp(lane[round], mapper, sink);
                        any = true;
                    }
                }
                if (!any)
                    break;
            }
        }
    }
    sink.end();
}

} // namespace uvmsim
