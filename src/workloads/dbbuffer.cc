/**
 * @file
 * Database buffer-pool workload (server-class suite extension).
 *
 * Models a vmcache/LeanStore-style buffer manager running a TPC-C-like
 * mix on a managed heap 10-50x the paper's footprints: skewed Zipfian
 * point lookups (hot B-tree inner nodes, TPC-C customer skew on the
 * heap) with write-backs and a sequential WAL append, punctuated by
 * periodic full-table scan phases.  The phase changes between a tiny
 * skewed working set and a footprint-sized scan are exactly the regime
 * where prefetcher/eviction rankings flip under heavy oversubscription
 * (see PAPERS.md on oversubscription management).
 */

#include <algorithm>
#include <optional>
#include <string>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/zipf.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class DbBufferWorkload : public Workload
{
  public:
    explicit DbBufferWorkload(const WorkloadParams &params)
        : params_(params)
    {
        heap_bytes_ = scaled(mib(192), mib(4));
        index_bytes_ = scaled(mib(12), mib(1));
        log_bytes_ = scaled(mib(16), mib(1));
        rounds_ = params.iterations ? params.iterations : 6;
        heap_zipf_.emplace(heap_bytes_ / pageSize, 0.86);
        index_zipf_.emplace(index_bytes_ / pageSize, 0.99);
    }

    std::string name() const override { return "dbbuffer"; }

    void
    setup(ManagedSpace &space) override
    {
        heap_ = space.allocate(heap_bytes_, "db_heap").base();
        index_ = space.allocate(index_bytes_, "db_index").base();
        log_ = space.allocate(log_bytes_, "db_log").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return rounds_; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("dbbuffer: nextKernel before setup");
        if (next_ >= rounds_)
            return nullptr;
        // Every third round the query mix shifts to an analytic scan
        // phase; the rest are transaction (point-lookup) phases.
        if (next_ % 3 == 2)
            current_ = makeScanKernel(next_);
        else
            current_ = makeLookupKernel(next_);
        ++next_;
        return current_.get();
    }

  private:
    std::uint64_t
    scaled(std::uint64_t bytes, std::uint64_t floor) const
    {
        const auto scaled_bytes = static_cast<std::uint64_t>(
            static_cast<double>(bytes) * params_.size_scale);
        return std::max(floor, roundUpToPages(scaled_bytes));
    }

    std::unique_ptr<Kernel>
    makeLookupKernel(std::uint64_t round)
    {
        const std::uint64_t blocks = 32;
        const std::uint64_t lookups_per_block =
            std::max<std::uint64_t>(64, heap_bytes_ / pageSize / 64);
        return std::make_unique<GridKernel>(
            "db_lookup_" + std::to_string(round), blocks,
            [this, round, blocks,
             lookups_per_block](std::uint64_t tb) {
                Rng rng(params_.seed * 0x9e3779b9ull +
                        round * 8191 + tb * 131 + 1);
                std::vector<WarpOp> ops;
                // Each worker appends to its own WAL slice, wrapping
                // around the log ring.
                std::uint64_t log_pos =
                    ((round * blocks + tb) * lookups_per_block * 128) %
                    log_bytes_;
                for (std::uint64_t i = 0; i < lookups_per_block; ++i) {
                    // B-tree descent: one hot inner-node probe.
                    WarpOp &probe = traceutil::beginOp(ops, 12);
                    traceutil::appendAccess(
                        probe,
                        index_ + index_zipf_->draw(rng) * pageSize,
                        256, false);
                    // Tuple fetch on the skewed heap; an update
                    // dirties the same page in the same op.
                    const Addr tuple =
                        heap_ + heap_zipf_->draw(rng) * pageSize +
                        rng.below(pageSize - 1024);
                    WarpOp &fetch = traceutil::beginOp(ops, 20);
                    traceutil::appendAccess(fetch, tuple, 1024, false);
                    if (rng.chance(0.3)) {
                        traceutil::appendAccess(fetch, tuple, 256,
                                                true);
                        // The update also appends a WAL record.
                        WarpOp &wal = traceutil::beginOp(ops, 4);
                        if (log_pos + 128 > log_bytes_)
                            log_pos = 0;
                        traceutil::appendAccess(wal, log_ + log_pos,
                                                128, true);
                        log_pos += 128;
                    }
                }
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
    }

    std::unique_ptr<Kernel>
    makeScanKernel(std::uint64_t round)
    {
        const std::uint64_t slice = largePageSize;
        const std::uint64_t blocks =
            (heap_bytes_ + slice - 1) / slice;
        return std::make_unique<GridKernel>(
            "db_scan_" + std::to_string(round), blocks,
            [this, slice](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                const std::uint64_t base = tb * slice;
                const std::uint64_t bytes =
                    std::min(slice, heap_bytes_ - base);
                traceutil::appendStream(ops, heap_ + base, bytes,
                                        4096, false, 6);
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
    }

    WorkloadParams params_;
    std::uint64_t heap_bytes_;
    std::uint64_t index_bytes_;
    std::uint64_t log_bytes_;
    std::uint64_t rounds_;
    std::optional<Zipfian> heap_zipf_;
    std::optional<Zipfian> index_zipf_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr heap_ = 0;
    Addr index_ = 0;
    Addr log_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeDbBuffer(const WorkloadParams &params)
{
    return std::make_unique<DbBufferWorkload>(params);
}

} // namespace uvmsim
