/**
 * @file
 * Rodinia pathfinder, UVM port.
 *
 * Dynamic programming over a rows x cols grid: each step consumes a
 * band of `pyramid_height` wall rows and the previous result row and
 * produces the next result row.  The wall data is touched exactly
 * once, front to back -- the paper's canonical streaming benchmark
 * (insensitive to eviction policy, no thrashing, flat
 * over-subscription curves).
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class PathfinderWorkload : public Workload
{
  public:
    explicit PathfinderWorkload(const WorkloadParams &params)
        : params_(params)
    {
        cols_ = static_cast<std::uint64_t>(32768 * params.size_scale);
        cols_ = std::max<std::uint64_t>(4096, cols_ & ~std::uint64_t{1023});
        rows_ = 96;
        pyramid_ = 4;
        steps_ = params.iterations
                     ? params.iterations
                     : rows_ / pyramid_;
    }

    std::string name() const override { return "pathfinder"; }

    void
    setup(ManagedSpace &space) override
    {
        wall_ = space.allocate(rows_ * cols_ * 4, "wall").base();
        result_[0] = space.allocate(cols_ * 4, "result_src").base();
        result_[1] = space.allocate(cols_ * 4, "result_dst").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return steps_; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("pathfinder: nextKernel before setup");
        if (next_ >= steps_)
            return nullptr;

        const std::uint64_t step = next_;
        const std::uint64_t tb_cols = 1024; // columns per thread block
        const std::uint64_t blocks = cols_ / tb_cols;
        Addr src = result_[step % 2];
        Addr dst = result_[(step + 1) % 2];

        current_ = std::make_unique<GridKernel>(
            "dynproc_kernel_" + std::to_string(step), blocks,
            [this, step, tb_cols, src, dst](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                std::uint64_t col0 = tb * tb_cols;
                // Previous result row segment (reused buffer).
                traceutil::appendStream(ops, src + col0 * 4,
                                        tb_cols * 4, 512, false, 6);
                // The band of wall rows consumed by this step --
                // streamed once and never touched again.
                for (std::uint64_t r = 0; r < pyramid_; ++r) {
                    std::uint64_t row = step * pyramid_ + r;
                    if (row >= rows_)
                        break;
                    Addr row_base = wall_ + (row * cols_ + col0) * 4;
                    traceutil::appendStream(ops, row_base, tb_cols * 4,
                                            512, false, 8);
                }
                // New result row segment.
                traceutil::appendStream(ops, dst + col0 * 4,
                                        tb_cols * 4, 512, true, 4);
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t cols_;
    std::uint64_t rows_;
    std::uint64_t pyramid_;
    std::uint64_t steps_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr wall_ = 0;
    Addr result_[2] = {0, 0};
};

} // namespace

std::unique_ptr<Workload>
makePathfinder(const WorkloadParams &params)
{
    return std::make_unique<PathfinderWorkload>(params);
}

} // namespace uvmsim
