#include "trace_stream.hh"

#include <sstream>

#include "sim/logging.hh"

namespace uvmsim::tracefmt
{

namespace
{

/**
 * The text decoder.  One validating pass runs at construction (so
 * malformed traces die with a line diagnostic before any simulation
 * starts), then the stream rewinds and replays lazily, one line of
 * look-ahead at a time.
 */
class TextTraceSource : public TraceSource
{
  public:
    explicit TextTraceSource(std::istream &input)
        : input_(input)
    {
        TraceEvent ev;
        while (next(ev)) {
            if (ev.kind == TraceEventKind::kernelBegin)
                ++kernel_count_;
            else if (ev.kind != TraceEventKind::blockBegin)
                ++record_count_;
        }
        if (allocs_.empty())
            fatal("trace declares no allocations");
        rewind();
    }

    const std::vector<TraceAlloc> &allocs() const override
    {
        return allocs_;
    }

    std::uint64_t kernelCount() const override { return kernel_count_; }
    std::uint64_t recordCount() const override { return record_count_; }

    bool
    next(TraceEvent &ev) override
    {
        while (std::getline(input_, line_)) {
            ++line_no_;
            std::istringstream iss(line_);
            std::string word;
            if (!(iss >> word) || word[0] == '#')
                continue;

            if (word == "alloc") {
                parseAlloc(iss);
                continue;
            }
            if (word == "kernel") {
                std::string name;
                if (!(iss >> name))
                    fatal("trace line %zu: expected 'kernel <name>'",
                          line_no_);
                seen_kernel_ = true;
                in_block_ = false;
                in_op_ = false;
                ev = TraceEvent{};
                ev.kind = TraceEventKind::kernelBegin;
                ev.kernel_name = name;
                return true;
            }
            if (word == "tb") {
                if (!seen_kernel_)
                    fatal("trace line %zu: 'tb' before any kernel",
                          line_no_);
                in_block_ = true;
                in_op_ = false;
                ev = TraceEvent{};
                ev.kind = TraceEventKind::blockBegin;
                return true;
            }
            if (word == "c") {
                if (!in_block_)
                    fatal("trace line %zu: access before any 'tb'",
                          line_no_);
                std::uint64_t cycles = 0;
                if (!(iss >> cycles))
                    fatal("trace line %zu: expected 'c <cycles>'",
                          line_no_);
                in_op_ = false;
                ev = TraceEvent{};
                ev.kind = TraceEventKind::compute;
                ev.compute = cycles;
                return true;
            }
            if (word == "+") {
                if (!in_op_)
                    fatal("trace line %zu: '+' continuation must "
                          "follow an access record",
                          line_no_);
                parseAccess(iss, ev, /*fused=*/true);
                return true;
            }

            // Access record: <alloc> <offset> <size> <r|w> [cycles]
            if (!in_block_)
                fatal("trace line %zu: access before any 'tb'",
                      line_no_);
            std::istringstream rss(line_);
            parseAccess(rss, ev, /*fused=*/false);
            in_op_ = true;
            return true;
        }
        return false;
    }

    void
    rewind() override
    {
        input_.clear();
        input_.seekg(0);
        line_no_ = 0;
        allocs_replayed_ = 0;
        seen_kernel_ = false;
        in_block_ = false;
        in_op_ = false;
    }

    std::uint64_t
    bufferedBytes() const override
    {
        return line_.capacity() + sizeof(*this);
    }

  private:
    void
    parseAlloc(std::istream &iss)
    {
        if (seen_kernel_)
            fatal("trace line %zu: alloc after first kernel", line_no_);
        std::string name;
        std::uint64_t bytes = 0;
        if (!(iss >> name >> bytes) || bytes == 0)
            fatal("trace line %zu: expected 'alloc <name> <bytes>'",
                  line_no_);
        // On the post-validation replay the table is already built;
        // just step past the declaration.
        if (allocs_replayed_ == allocs_.size())
            allocs_.push_back(TraceAlloc{name, bytes});
        ++allocs_replayed_;
    }

    void
    parseAccess(std::istream &iss, TraceEvent &ev, bool fused)
    {
        std::size_t alloc_index = 0;
        std::uint64_t offset = 0;
        std::uint32_t size = 0;
        std::string rw;
        std::uint64_t cycles = defaultComputeCycles;
        if (!(iss >> alloc_index >> offset >> size >> rw)) {
            if (fused)
                fatal("trace line %zu: expected '+ <alloc> <offset> "
                      "<size> <r|w>'",
                      line_no_);
            fatal("trace line %zu: expected '<alloc> <offset> "
                  "<size> <r|w> [cycles]'",
                  line_no_);
        }
        if (!fused)
            iss >> cycles;
        if (alloc_index >= allocs_.size())
            fatal("trace line %zu: allocation index %zu out of range",
                  line_no_, alloc_index);
        if (size == 0)
            fatal("trace line %zu: zero-size access", line_no_);
        if (offset + size > allocs_[alloc_index].bytes)
            fatal("trace line %zu: access past end of allocation",
                  line_no_);
        if (rw != "r" && rw != "w")
            fatal("trace line %zu: access kind must be r or w",
                  line_no_);
        ev = TraceEvent{};
        ev.kind = TraceEventKind::access;
        ev.alloc_index = static_cast<std::uint32_t>(alloc_index);
        ev.offset = offset;
        ev.size = size;
        ev.is_write = rw == "w";
        ev.fused = fused;
        ev.compute = fused ? 0 : cycles;
    }

    std::istream &input_;
    std::string line_;
    std::size_t line_no_ = 0;
    std::vector<TraceAlloc> allocs_;
    std::size_t allocs_replayed_ = 0;
    std::uint64_t kernel_count_ = 0;
    std::uint64_t record_count_ = 0;
    bool seen_kernel_ = false;
    bool in_block_ = false;
    bool in_op_ = false;
};

/** Replace whitespace so names stay single text tokens. */
std::string
tokenize(const std::string &name)
{
    std::string out = name.empty() ? std::string("unnamed") : name;
    for (char &c : out)
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            c = '_';
    return out;
}

/** The text encoder: emits the canonical one-record-per-line form. */
class TextTraceSink : public TraceSink
{
  public:
    explicit TextTraceSink(std::ostream &out)
        : out_(out)
    {}

    void
    begin(const std::vector<TraceAlloc> &allocs) override
    {
        out_ << "# uvmsim trace\n";
        for (const TraceAlloc &a : allocs)
            out_ << "alloc " << tokenize(a.name) << ' ' << a.bytes
                 << '\n';
    }

    void
    event(const TraceEvent &ev) override
    {
        switch (ev.kind) {
          case TraceEventKind::kernelBegin:
            out_ << "kernel " << tokenize(ev.kernel_name) << '\n';
            break;
          case TraceEventKind::blockBegin:
            out_ << "tb\n";
            break;
          case TraceEventKind::compute:
            out_ << "c " << ev.compute << '\n';
            break;
          case TraceEventKind::access:
            if (ev.fused)
                out_ << "+ ";
            out_ << ev.alloc_index << ' ' << ev.offset << ' '
                 << ev.size << ' ' << (ev.is_write ? 'w' : 'r');
            if (!ev.fused && ev.compute != defaultComputeCycles)
                out_ << ' ' << ev.compute;
            out_ << '\n';
            break;
        }
    }

    void
    end() override
    {
        out_.flush();
        if (!out_)
            fatal("trace output stream failed while writing");
    }

  private:
    std::ostream &out_;
};

} // namespace

std::unique_ptr<TraceSource>
openTextTrace(std::istream &input)
{
    return std::make_unique<TextTraceSource>(input);
}

std::unique_ptr<TraceSink>
makeTextTraceSink(std::ostream &out)
{
    return std::make_unique<TextTraceSink>(out);
}

void
pumpTrace(TraceSource &src, TraceSink &sink)
{
    sink.begin(src.allocs());
    TraceEvent ev;
    while (src.next(ev))
        sink.event(ev);
    sink.end();
}

} // namespace uvmsim::tracefmt
