/**
 * @file
 * Record any workload generator as a trace.
 *
 * Drains a Workload -- setup, every kernel, every thread block --
 * outside the simulator and writes the resulting event stream to a
 * TraceSink, producing a trace whose replay is op-for-op identical to
 * running the generator directly (given the same warps-per-TB).  This
 * is how the `uvmsim_trace record` subcommand turns the synthetic
 * workload classes into portable .uvmt fixtures, and how the
 * round-trip property tests cross-check the two paths.
 */

#pragma once

#include "workloads/trace_stream.hh"
#include "workloads/workload.hh"

namespace uvmsim
{

/**
 * Drain `wl` (which must not have been set up yet) into `sink`.
 *
 * The workload's warps are interleaved back into each thread block's
 * original op order (the inverse of traceutil::splitAmongWarps), so a
 * replay that re-splits with the same warps_per_tb reproduces the
 * exact warp streams.
 *
 * @param wl           The workload to record; consumed by the drain.
 * @param warps_per_tb The warp split the workload was built with.
 * @param sink         Receives the trace.
 */
void recordWorkload(Workload &wl, std::uint32_t warps_per_tb,
                    tracefmt::TraceSink &sink);

} // namespace uvmsim
