/**
 * @file
 * Rodinia nw (Needleman-Wunsch), UVM port.
 *
 * Sequence alignment over an (n+1) x (n+1) score matrix plus a
 * same-sized reference matrix, processed as 16x16 tiles along
 * anti-diagonals: kernel launch d computes every tile (bi, bj) with
 * bi + bj == d.  Because the matrices are row-major and a row is just
 * over one 4KB page, a tile's 16 rows land on 16 widely spaced pages:
 * the paper's Figure 12 "sparse yet localized, repeated over time"
 * pattern.  Adjacent diagonals re-read tile boundary rows, so there is
 * reuse, but it is scattered -- which is why nw prefers SLe's 64KB
 * granularity over TBNe's larger drains (paper Sec. 7.2) and degrades
 * sharply with over-subscription (Sec. 7.3).
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class NwWorkload : public Workload
{
  public:
    explicit NwWorkload(const WorkloadParams &params)
        : params_(params)
    {
        n_ = static_cast<std::uint64_t>(
            1024.0 * std::sqrt(params.size_scale));
        n_ = std::max<std::uint64_t>(256, n_ & ~std::uint64_t{255});
        tile_ = 16;
        nb_ = n_ / tile_;
        // Rodinia nw: forward sweep over 2*nb - 1 anti-diagonals.
        steps_ = params.iterations ? params.iterations : 2 * nb_ - 1;
    }

    std::string name() const override { return "nw"; }

    void
    setup(ManagedSpace &space) override
    {
        std::uint64_t dim = n_ + 1;
        matrix_ = space.allocate(dim * dim * 4, "nw_matrix").base();
        reference_ = space.allocate(dim * dim * 4, "nw_reference").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return steps_; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("nw: nextKernel before setup");
        if (next_ >= steps_)
            return nullptr;

        const std::uint64_t d = next_;
        // Tiles on anti-diagonal d: bi in [lo, hi].
        const std::uint64_t lo = d < nb_ ? 0 : d - (nb_ - 1);
        const std::uint64_t hi = std::min(d, nb_ - 1);
        const std::uint64_t tiles = hi - lo + 1;
        const std::uint64_t row_ints = n_ + 1;

        current_ = std::make_unique<GridKernel>(
            "needle_kernel_" + std::to_string(d), tiles,
            [this, d, lo, row_ints](std::uint64_t t) {
                std::uint64_t bi = lo + t;
                std::uint64_t bj = d - bi;
                std::vector<WarpOp> ops;

                std::uint64_t r0 = bi * tile_ + 1;
                std::uint64_t c0 = bj * tile_ + 1;

                // Boundary row from the tile above (written by the
                // previous diagonal) and boundary column cells from
                // the tile to the left.
                WarpOp &boundary = traceutil::beginOp(ops, 10);
                traceutil::appendAccess(
                    boundary,
                    matrix_ + ((r0 - 1) * row_ints + c0 - 1) * 4,
                    (tile_ + 1) * 4, false);

                for (std::uint64_t r = r0; r < r0 + tile_; ++r) {
                    WarpOp &op = traceutil::beginOp(ops, 20);
                    // Left boundary cell of this row.
                    traceutil::appendAccess(
                        op, matrix_ + (r * row_ints + c0 - 1) * 4, 4,
                        false);
                    // Reference tile row (read).
                    traceutil::appendAccess(
                        op, reference_ + (r * row_ints + c0) * 4,
                        tile_ * 4, false);
                    // Score tile row (read-modify-write).
                    traceutil::appendAccess(
                        op, matrix_ + (r * row_ints + c0) * 4,
                        tile_ * 4, true);
                }
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t n_;
    std::uint64_t tile_;
    std::uint64_t nb_;
    std::uint64_t steps_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr matrix_ = 0;
    Addr reference_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeNw(const WorkloadParams &params)
{
    return std::make_unique<NwWorkload>(params);
}

} // namespace uvmsim
