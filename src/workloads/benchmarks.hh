/**
 * @file
 * Factories for the seven benchmark workloads (paper Sec. 6.2).
 *
 * Each factory returns an unconfigured workload; call setup() with the
 * simulation's ManagedSpace before pulling kernels.
 */

#pragma once

#include <memory>

#include "workloads/workload.hh"

namespace uvmsim
{

/** Rodinia backprop: two streaming kernels over the weight matrices. */
std::unique_ptr<Workload> makeBackprop(const WorkloadParams &params);

/** Rodinia bfs: level-synchronous traversal of a random graph. */
std::unique_ptr<Workload> makeBfs(const WorkloadParams &params);

/** PolyBench gemm: tiled dense matrix multiply with B reuse. */
std::unique_ptr<Workload> makeGemm(const WorkloadParams &params);

/** Rodinia hotspot: iterative 5-point stencil with full reuse. */
std::unique_ptr<Workload> makeHotspot(const WorkloadParams &params);

/** Rodinia nw: wavefront over diagonal tile bands (sparse reuse). */
std::unique_ptr<Workload> makeNw(const WorkloadParams &params);

/** Rodinia pathfinder: row-streaming dynamic programming. */
std::unique_ptr<Workload> makePathfinder(const WorkloadParams &params);

/** Rodinia srad: two-kernel iterative diffusion stencil. */
std::unique_ptr<Workload> makeSrad(const WorkloadParams &params);

/** PolyBench atax (extension): row-stream then column re-walk. */
std::unique_ptr<Workload> makeAtax(const WorkloadParams &params);

/** Rodinia kmeans (extension): repetitive linear full-footprint scan. */
std::unique_ptr<Workload> makeKmeans(const WorkloadParams &params);

/** Database buffer pool (server-class extension): Zipfian point
 *  lookups with WAL appends, punctuated by full-table scan phases. */
std::unique_ptr<Workload> makeDbBuffer(const WorkloadParams &params);

/** LLM inference (server-class extension): full weight stream per
 *  decode step plus a monotonically growing KV-cache prefix. */
std::unique_ptr<Workload> makeLlmInfer(const WorkloadParams &params);

} // namespace uvmsim
