/**
 * @file
 * Trace-file workload: replay a recorded page-access trace.
 *
 * Lets downstream users evaluate the paper's policies on traces from
 * *real* applications (e.g. captured with nvbit / nvprof and converted
 * to this format) instead of the synthetic generators.
 *
 * File format -- plain text, one record per line:
 *
 *   # comment
 *   alloc <name> <bytes>
 *   kernel <name>
 *   tb
 *   <alloc_index> <offset> <size> <r|w> [compute_cycles]
 *
 * `alloc` lines (before the first kernel) declare managed allocations
 * in index order.  Each `kernel` starts a new launch; each `tb`
 * starts a new thread block inside it; access lines belong to the
 * current thread block and execute in order, split round-robin across
 * the configured warps per block.
 */

#pragma once

#include <istream>
#include <memory>
#include <string>

#include "workloads/workload.hh"

namespace uvmsim
{

/**
 * Parse a trace from a stream.  fatal()s with a line number on
 * malformed input.
 *
 * @param input Trace text.
 * @param params Warps-per-TB and other common knobs.
 * @param name   Workload display name.
 */
std::unique_ptr<Workload> makeTraceWorkload(std::istream &input,
                                            const WorkloadParams &params,
                                            std::string name = "trace");

/** Parse a trace from a file path. */
std::unique_ptr<Workload>
makeTraceWorkloadFromFile(const std::string &path,
                          const WorkloadParams &params);

} // namespace uvmsim
