/**
 * @file
 * Trace-file workload: replay a recorded page-access trace.
 *
 * Lets downstream users evaluate the paper's policies on traces from
 * *real* applications (e.g. captured with nvbit / nvprof and converted
 * to this format) instead of the synthetic generators.
 *
 * Two encodings are accepted, distinguished by the file's first four
 * bytes ("UVMT" selects the binary format):
 *
 *  - The text format -- one record per line:
 *
 *      # comment
 *      alloc <name> <bytes>
 *      kernel <name>
 *      tb
 *      <alloc_index> <offset> <size> <r|w> [compute_cycles]
 *      + <alloc_index> <offset> <size> <r|w>
 *      c <compute_cycles>
 *
 *    `alloc` lines (before the first kernel) declare managed
 *    allocations in index order.  Each `kernel` starts a new launch;
 *    each `tb` starts a new thread block inside it; access lines
 *    belong to the current thread block and execute in order, split
 *    round-robin across the configured warps per block.  A `+` line
 *    fuses its access into the preceding op (a multi-access op); a
 *    `c` line is a pure-compute op.
 *
 *  - The .uvmt binary format (see uvmt.hh and DESIGN.md section 11):
 *    the same event stream, varint-delta encoded at a few bytes per
 *    record.  `uvmsim_trace convert` translates between the two.
 *
 * Both encodings replay through a streaming reader: the trace is
 * validated once at open time (malformed input fatal()s with a
 * line/offset diagnostic), then thread blocks are materialized one at
 * a time, so replay memory stays bounded however large the trace is.
 */

#pragma once

#include <istream>
#include <memory>
#include <string>

#include "workloads/trace_stream.hh"
#include "workloads/workload.hh"

namespace uvmsim
{

/**
 * A trace decoder plus the stream backing it (text traces keep their
 * file handle alive here; .uvmt readers own their own).
 */
struct OpenedTrace
{
    std::unique_ptr<std::istream> backing;
    std::unique_ptr<tracefmt::TraceSource> source;
};

/**
 * Open a trace file as an event source, sniffing text vs binary from
 * the magic bytes.  fatal()s if the file cannot be opened or fails
 * validation.
 */
OpenedTrace openTraceFile(const std::string &path);

/**
 * Build the replay workload for a text trace read from a stream.  The
 * stream must be seekable and stay alive for the workload's lifetime
 * (the trace is validated up front, then replayed lazily).  fatal()s
 * with a line number on malformed input.
 *
 * @param input Trace text.
 * @param params Warps-per-TB and other common knobs.
 * @param name   Workload display name.
 */
std::unique_ptr<Workload> makeTraceWorkload(std::istream &input,
                                            const WorkloadParams &params,
                                            std::string name = "trace");

/** Build the replay workload for a trace file (text or .uvmt). */
std::unique_ptr<Workload>
makeTraceWorkloadFromFile(const std::string &path,
                          const WorkloadParams &params);

/**
 * Peak bytes of trace state the replay held at once (decoder buffers
 * plus the one thread block being materialized).  Returns 0 for
 * workloads that are not trace replays.  Lets regression tests pin
 * down that replay memory stays flat on huge traces.
 */
std::uint64_t traceReplayPeakBytes(const Workload &wl);

} // namespace uvmsim
