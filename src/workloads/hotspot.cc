/**
 * @file
 * Rodinia hotspot, UVM port.
 *
 * Thermal simulation: an iterative 5-point stencil over a dim x dim
 * temperature grid with a power grid input, ping-ponging between two
 * temperature buffers.  Every page of all three arrays is touched
 * every iteration -- the paper's canonical iterative-reuse benchmark
 * (LRU thrashes badly under over-subscription; reservation of the LRU
 * head helps).
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class HotspotWorkload : public Workload
{
  public:
    explicit HotspotWorkload(const WorkloadParams &params)
        : params_(params)
    {
        dim_ = static_cast<std::uint64_t>(
            1024.0 * std::sqrt(params.size_scale));
        dim_ = std::max<std::uint64_t>(256, dim_ & ~std::uint64_t{255});
        iterations_ = params.iterations ? params.iterations : 8;
    }

    std::string name() const override { return "hotspot"; }

    void
    setup(ManagedSpace &space) override
    {
        temp_[0] = space.allocate(dim_ * dim_ * 4, "temp_src").base();
        temp_[1] = space.allocate(dim_ * dim_ * 4, "temp_dst").base();
        power_ = space.allocate(dim_ * dim_ * 4, "power").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return iterations_; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("hotspot: nextKernel before setup");
        if (next_ >= iterations_)
            return nullptr;

        const std::uint64_t iter = next_;
        const std::uint64_t rows_per_tb = 8;
        const std::uint64_t blocks = dim_ / rows_per_tb;
        const std::uint64_t row_bytes = dim_ * 4;
        const std::uint32_t granule = 1024;
        Addr src = temp_[iter % 2];
        Addr dst = temp_[(iter + 1) % 2];

        current_ = std::make_unique<GridKernel>(
            "calculate_temp_" + std::to_string(iter), blocks,
            [this, rows_per_tb, row_bytes, granule, src,
             dst](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                std::uint64_t row0 = tb * rows_per_tb;
                for (std::uint64_t r = row0; r < row0 + rows_per_tb;
                     ++r) {
                    std::uint64_t up = r == 0 ? r : r - 1;
                    std::uint64_t down = r + 1 == dim_ ? r : r + 1;
                    for (std::uint64_t c = 0; c < row_bytes;
                         c += granule) {
                        // One op per output chunk: the three stencil
                        // rows, the power input, and the output write.
                        WarpOp &op = traceutil::beginOp(ops, 12);
                        traceutil::appendAccess(
                            op, src + up * row_bytes + c, granule,
                            false);
                        traceutil::appendAccess(
                            op, src + r * row_bytes + c, granule,
                            false);
                        traceutil::appendAccess(
                            op, src + down * row_bytes + c, granule,
                            false);
                        traceutil::appendAccess(
                            op, power_ + r * row_bytes + c, granule,
                            false);
                        traceutil::appendAccess(
                            op, dst + r * row_bytes + c, granule, true);
                    }
                }
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t dim_;
    std::uint64_t iterations_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr temp_[2] = {0, 0};
    Addr power_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeHotspot(const WorkloadParams &params)
{
    return std::make_unique<HotspotWorkload>(params);
}

} // namespace uvmsim
