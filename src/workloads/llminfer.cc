/**
 * @file
 * LLM inference workload (server-class suite extension).
 *
 * Models autoregressive decoding on managed memory at 10-50x the
 * paper's footprints: a large read-only weight allocation streamed in
 * full on every decode step (a cyclic scan that defeats plain LRU the
 * moment weights exceed device memory), plus a KV cache that is
 * allocated at its maximum size but touched as a monotonically
 * growing prefix -- each step reads attention history across the
 * prefix and appends the new token's pages at the tail.  The phase
 * structure (prefill burst, then steady growth) exercises eviction
 * policies against a working set that never shrinks.
 */

#include <algorithm>
#include <string>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class LlmInferWorkload : public Workload
{
  public:
    explicit LlmInferWorkload(const WorkloadParams &params)
        : params_(params)
    {
        weight_bytes_ = scaled(mib(160), mib(8));
        kv_bytes_ = scaled(mib(64), mib(4));
        act_bytes_ = scaled(mib(8), mib(1));
        steps_ = params.iterations ? params.iterations : 10;
        kv_pages_ = kv_bytes_ / pageSize;
        // The prompt fills an eighth of the cache; decode steps grow
        // the prefix from there to the full allocation.
        prompt_pages_ = std::max<std::uint64_t>(1, kv_pages_ / 8);
    }

    std::string name() const override { return "llminfer"; }

    void
    setup(ManagedSpace &space) override
    {
        weights_ = space.allocate(weight_bytes_, "llm_weights").base();
        kv_ = space.allocate(kv_bytes_, "llm_kv_cache").base();
        act_ = space.allocate(act_bytes_, "llm_activations").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return steps_ + 1; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("llminfer: nextKernel before setup");
        if (next_ > steps_)
            return nullptr;
        current_ = next_ == 0 ? makePrefill() : makeDecode(next_);
        ++next_;
        return current_.get();
    }

  private:
    std::uint64_t
    scaled(std::uint64_t bytes, std::uint64_t floor) const
    {
        const auto scaled_bytes = static_cast<std::uint64_t>(
            static_cast<double>(bytes) * params_.size_scale);
        return std::max(floor, roundUpToPages(scaled_bytes));
    }

    /** KV prefix size (pages) after `step` decode steps. */
    std::uint64_t
    prefixPages(std::uint64_t step) const
    {
        return prompt_pages_ +
               (kv_pages_ - prompt_pages_) * step / steps_;
    }

    std::uint64_t weightBlocks() const
    {
        return (weight_bytes_ + largePageSize - 1) / largePageSize;
    }

    /** Stream this block's 2MB weight slice (read-only). */
    void
    streamWeights(std::vector<WarpOp> &ops, std::uint64_t tb) const
    {
        const std::uint64_t base = tb * largePageSize;
        const std::uint64_t bytes =
            std::min(largePageSize, weight_bytes_ - base);
        traceutil::appendStream(ops, weights_ + base, bytes, 8192,
                                false, 8);
    }

    std::unique_ptr<Kernel>
    makePrefill()
    {
        return std::make_unique<GridKernel>(
            "llm_prefill", weightBlocks(), [this](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                streamWeights(ops, tb);
                // Each block writes its share of the prompt's KV
                // prefix and scratches in the activation buffer.
                const std::uint64_t blocks = weightBlocks();
                const std::uint64_t lo =
                    prompt_pages_ * tb / blocks;
                const std::uint64_t hi =
                    prompt_pages_ * (tb + 1) / blocks;
                if (hi > lo)
                    traceutil::appendStream(
                        ops, kv_ + lo * pageSize,
                        (hi - lo) * pageSize, 4096, true, 4);
                scratch(ops, tb);
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
    }

    std::unique_ptr<Kernel>
    makeDecode(std::uint64_t step)
    {
        return std::make_unique<GridKernel>(
            "llm_decode_" + std::to_string(step), weightBlocks(),
            [this, step](std::uint64_t tb) {
                std::vector<WarpOp> ops;
                streamWeights(ops, tb);

                // Attention: sample the grown prefix evenly, with a
                // deterministic per-(step, block) jitter.
                Rng rng(params_.seed * 0x2545f491ull + step * 4099 +
                        tb * 193 + 1);
                const std::uint64_t prefix = prefixPages(step - 1);
                const std::uint64_t blocks = weightBlocks();
                const std::uint64_t reads =
                    std::max<std::uint64_t>(
                        4, prefix / std::max<std::uint64_t>(blocks, 1) /
                               4);
                for (std::uint64_t i = 0; i < reads; ++i) {
                    const std::uint64_t slot =
                        (tb * reads + i) * prefix / (blocks * reads);
                    const std::uint64_t jitter =
                        rng.below(std::max<std::uint64_t>(
                            1, prefix / (blocks * reads) + 1));
                    const std::uint64_t page =
                        std::min(prefix - 1, slot + jitter);
                    WarpOp &op = traceutil::beginOp(ops, 10);
                    traceutil::appendAccess(
                        op, kv_ + page * pageSize, 512, false);
                }

                // The last block appends this step's new KV pages.
                if (tb + 1 == blocks) {
                    const std::uint64_t lo = prefix;
                    const std::uint64_t hi = prefixPages(step);
                    if (hi > lo)
                        traceutil::appendStream(
                            ops, kv_ + lo * pageSize,
                            (hi - lo) * pageSize, 4096, true, 4);
                }
                scratch(ops, tb);
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
    }

    /** A small activation-buffer write per block (scratch reuse). */
    void
    scratch(std::vector<WarpOp> &ops, std::uint64_t tb) const
    {
        const std::uint64_t slice = act_bytes_ / weightBlocks();
        if (slice < 256)
            return;
        const std::uint64_t base = tb * slice;
        WarpOp &op = traceutil::beginOp(ops, 6);
        traceutil::appendAccess(op, act_ + base,
                                static_cast<std::uint32_t>(
                                    std::min<std::uint64_t>(slice, 512)),
                                true);
    }

    WorkloadParams params_;
    std::uint64_t weight_bytes_;
    std::uint64_t kv_bytes_;
    std::uint64_t act_bytes_;
    std::uint64_t steps_;
    std::uint64_t kv_pages_;
    std::uint64_t prompt_pages_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr weights_ = 0;
    Addr kv_ = 0;
    Addr act_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeLlmInfer(const WorkloadParams &params)
{
    return std::make_unique<LlmInferWorkload>(params);
}

} // namespace uvmsim
