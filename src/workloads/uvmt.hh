/**
 * @file
 * The .uvmt compact binary trace format.
 *
 * Multi-gigabyte-footprint traces are impractical as text (tens of
 * bytes per record, full-file parses).  .uvmt encodes the same event
 * stream (see trace_stream.hh) at a few bytes per record and decodes
 * it through a fixed-size chunk buffer, so replay memory stays flat
 * no matter how large the trace is.
 *
 * Layout (all integers little-endian; full details in DESIGN.md
 * section 11):
 *
 *   header   "UVMT" magic, u32 version, u64 kernel_count,
 *            u64 record_count (both patched by the writer at end())
 *   allocs   varint count, then per alloc: varint name length, name
 *            bytes, varint byte size
 *   body     opcode bytes: KERNEL, TB, ACCESS, COMPUTE, END
 *
 * ACCESS encodes the offset as a zigzag varint delta against the
 * previous access to the same allocation (reset at each kernel), so
 * streaming and strided patterns cost one or two bytes per record.
 * The END opcode is mandatory and is followed by nothing: truncation
 * anywhere is detected, and the header counts are cross-checked
 * against the body.  All decode errors fatal() with a byte offset.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/trace_stream.hh"

namespace uvmsim::tracefmt
{

/** The four magic bytes opening every .uvmt file. */
inline constexpr char uvmtMagic[4] = {'U', 'V', 'M', 'T'};

/** The format version this reader/writer implements. */
inline constexpr std::uint32_t uvmtVersion = 1;

/** Fixed header size: magic + version + kernel/record counts. */
inline constexpr std::uint64_t uvmtHeaderBytes = 4 + 4 + 8 + 8;

/** Body opcodes. */
enum class UvmtOp : std::uint8_t
{
    kernel = 0x01,  //!< varint name length, name bytes
    tb = 0x02,      //!< no payload
    access = 0x03,  //!< flags, varint alloc, zigzag delta, varint size
    compute = 0x04, //!< varint cycles
    end = 0xfe,     //!< no payload; must be the final byte
};

/** ACCESS flag bits. */
enum UvmtAccessFlags : std::uint8_t
{
    uvmtFlagWrite = 1 << 0,
    uvmtFlagFused = 1 << 1,
    uvmtFlagCycles = 1 << 2, //!< explicit cycles varint follows
};

/**
 * Open a .uvmt trace.  The constructor validates the entire file
 * (streaming, bounded memory) and rewinds; any structural problem
 * fatal()s with a byte-offset diagnostic.
 */
std::unique_ptr<TraceSource> openUvmtTrace(const std::string &path);

/**
 * A sink writing the .uvmt encoding.  The stream must be seekable
 * (end() patches the header counts in place) and outlive the sink.
 */
std::unique_ptr<TraceSink> makeUvmtSink(std::ostream &out);

/** Whether the file at `path` starts with the .uvmt magic. */
bool isUvmtFile(const std::string &path);

} // namespace uvmsim::tracefmt
