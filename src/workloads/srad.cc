/**
 * @file
 * Rodinia srad (speckle-reducing anisotropic diffusion), UVM port.
 *
 * Two kernels per iteration over a dim x dim image:
 *
 *   srad_kernel1: reads the image J with a 4-neighbour stencil and
 *                 writes the diffusion coefficient c plus the N/S
 *                 directional derivatives.
 *   srad_kernel2: reads c and the derivatives with a stencil and
 *                 updates J in place.
 *
 * Like hotspot this re-touches the full footprint every iteration,
 * but with four large arrays and two kernels per step -- heavier reuse
 * pressure per unit of compute.
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class SradWorkload : public Workload
{
  public:
    explicit SradWorkload(const WorkloadParams &params)
        : params_(params)
    {
        dim_ = static_cast<std::uint64_t>(
            1024.0 * std::sqrt(params.size_scale));
        dim_ = std::max<std::uint64_t>(256, dim_ & ~std::uint64_t{255});
        iterations_ = params.iterations ? params.iterations : 4;
    }

    std::string name() const override { return "srad"; }

    void
    setup(ManagedSpace &space) override
    {
        j_ = space.allocate(dim_ * dim_ * 4, "srad_J").base();
        c_ = space.allocate(dim_ * dim_ * 4, "srad_c").base();
        dn_ = space.allocate(dim_ * dim_ * 4, "srad_dN").base();
        ds_ = space.allocate(dim_ * dim_ * 4, "srad_dS").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return 2 * iterations_; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("srad: nextKernel before setup");
        if (next_ >= totalKernels())
            return nullptr;

        const bool first_phase = (next_ % 2) == 0;
        const std::uint64_t rows_per_tb = 8;
        const std::uint64_t blocks = dim_ / rows_per_tb;
        const std::uint64_t row_bytes = dim_ * 4;
        const std::uint32_t granule = 1024;

        auto factory = [this, first_phase, rows_per_tb, row_bytes,
                        granule](std::uint64_t tb) {
            std::vector<WarpOp> ops;
            std::uint64_t row0 = tb * rows_per_tb;
            for (std::uint64_t r = row0; r < row0 + rows_per_tb; ++r) {
                std::uint64_t up = r == 0 ? r : r - 1;
                std::uint64_t down = r + 1 == dim_ ? r : r + 1;
                for (std::uint64_t col = 0; col < row_bytes;
                     col += granule) {
                    WarpOp &op = traceutil::beginOp(ops, 14);
                    if (first_phase) {
                        // J stencil in, c/dN/dS out.
                        traceutil::appendAccess(
                            op, j_ + up * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, j_ + r * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, j_ + down * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, c_ + r * row_bytes + col, granule,
                            true);
                        traceutil::appendAccess(
                            op, dn_ + r * row_bytes + col, granule,
                            true);
                        traceutil::appendAccess(
                            op, ds_ + r * row_bytes + col, granule,
                            true);
                    } else {
                        // c stencil + derivatives in, J updated.
                        traceutil::appendAccess(
                            op, c_ + r * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, c_ + down * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, dn_ + r * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, ds_ + r * row_bytes + col, granule,
                            false);
                        traceutil::appendAccess(
                            op, j_ + r * row_bytes + col, granule,
                            true);
                    }
                }
            }
            return traceutil::splitAmongWarps(std::move(ops),
                                              params_.warps_per_tb);
        };

        std::string kname = first_phase ? "srad_kernel1_" : "srad_kernel2_";
        current_ = std::make_unique<GridKernel>(
            kname + std::to_string(next_ / 2), blocks, factory);
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t dim_;
    std::uint64_t iterations_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr j_ = 0;
    Addr c_ = 0;
    Addr dn_ = 0;
    Addr ds_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeSrad(const WorkloadParams &params)
{
    return std::make_unique<SradWorkload>(params);
}

} // namespace uvmsim
