/**
 * @file
 * PolyBench atax, UVM port (suite extension, not one of the paper's
 * seven benchmarks).
 *
 * y = A^T (A x): kernel 1 streams A row-major computing tmp = A x
 * (with the x vector hot); kernel 2 re-walks A column-wise to
 * accumulate y = A^T tmp.  The second kernel's column walk turns each
 * A column into a page-strided scan -- a full re-touch of the big
 * array with a completely different order, which stresses eviction
 * policies differently from hotspot's in-place stencils.
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class AtaxWorkload : public Workload
{
  public:
    explicit AtaxWorkload(const WorkloadParams &params)
        : params_(params)
    {
        n_ = static_cast<std::uint64_t>(
            1536.0 * std::sqrt(params.size_scale));
        n_ = std::max<std::uint64_t>(256, n_ & ~std::uint64_t{255});
    }

    std::string name() const override { return "atax"; }

    void
    setup(ManagedSpace &space) override
    {
        a_ = space.allocate(n_ * n_ * 4, "atax_A").base();
        x_ = space.allocate(n_ * 4, "atax_x").base();
        y_ = space.allocate(n_ * 4, "atax_y").base();
        tmp_ = space.allocate(n_ * 4, "atax_tmp").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return 2; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("atax: nextKernel before setup");
        if (next_ >= 2)
            return nullptr;

        const std::uint64_t rows_per_tb = 32;
        const std::uint64_t blocks = n_ / rows_per_tb;
        const std::uint64_t row_bytes = n_ * 4;

        if (next_ == 0) {
            // tmp = A x: row-major streaming of A; x is read hot.
            current_ = std::make_unique<GridKernel>(
                "atax_kernel1", blocks,
                [this, rows_per_tb, row_bytes](std::uint64_t tb) {
                    std::vector<WarpOp> ops;
                    for (std::uint64_t r = tb * rows_per_tb;
                         r < (tb + 1) * rows_per_tb; ++r) {
                        traceutil::appendStream(ops,
                                                a_ + r * row_bytes,
                                                row_bytes, 1024, false,
                                                8);
                        WarpOp &op = traceutil::beginOp(ops, 6);
                        traceutil::appendAccess(op, x_ + (r % n_) * 4,
                                                128, false);
                        traceutil::appendAccess(op, tmp_ + r * 4, 4,
                                                true);
                    }
                    return traceutil::splitAmongWarps(
                        std::move(ops), params_.warps_per_tb);
                });
        } else {
            // y = A^T tmp: each block owns a band of columns and
            // walks them down the rows -- page-strided accesses.
            const std::uint64_t cols_per_tb = 32;
            const std::uint64_t col_blocks = n_ / cols_per_tb;
            current_ = std::make_unique<GridKernel>(
                "atax_kernel2", col_blocks,
                [this, cols_per_tb, row_bytes](std::uint64_t tb) {
                    std::vector<WarpOp> ops;
                    std::uint64_t c0 = tb * cols_per_tb;
                    // Sample every 4th row: each access strides a full
                    // row (usually a page) through A.
                    for (std::uint64_t r = 0; r < n_; r += 4) {
                        WarpOp &op = traceutil::beginOp(ops, 10);
                        traceutil::appendAccess(
                            op, a_ + r * row_bytes + c0 * 4,
                            static_cast<std::uint32_t>(cols_per_tb * 4),
                            false);
                        traceutil::appendAccess(op, tmp_ + r * 4, 4,
                                                false);
                    }
                    WarpOp &out = traceutil::beginOp(ops, 4);
                    traceutil::appendAccess(
                        out, y_ + c0 * 4,
                        static_cast<std::uint32_t>(cols_per_tb * 4),
                        true);
                    return traceutil::splitAmongWarps(
                        std::move(ops), params_.warps_per_tb);
                });
        }
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t n_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr a_ = 0;
    Addr x_ = 0;
    Addr y_ = 0;
    Addr tmp_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeAtax(const WorkloadParams &params)
{
    return std::make_unique<AtaxWorkload>(params);
}

} // namespace uvmsim
