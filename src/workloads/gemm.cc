/**
 * @file
 * PolyBench gemm, UVM port.
 *
 * C = alpha * A x B + beta * C, computed tile by tile: each thread
 * block owns a 64x64 tile of C, streams its row panel of A, and walks
 * the matching column panel of row-major B -- a strided pattern that
 * re-reads B's pages across many thread blocks.  Dense, heavily
 * reused, single kernel launch.
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class GemmWorkload : public Workload
{
  public:
    explicit GemmWorkload(const WorkloadParams &params)
        : params_(params)
    {
        n_ = static_cast<std::uint64_t>(
            1024.0 * std::sqrt(params.size_scale));
        n_ = std::max<std::uint64_t>(256, n_ & ~std::uint64_t{255});
        tile_ = 64;
    }

    std::string name() const override { return "gemm"; }

    void
    setup(ManagedSpace &space) override
    {
        a_ = space.allocate(n_ * n_ * 4, "gemm_A").base();
        b_ = space.allocate(n_ * n_ * 4, "gemm_B").base();
        c_ = space.allocate(n_ * n_ * 4, "gemm_C").base();
        ready_ = true;
    }

    std::uint64_t totalKernels() const override { return 1; }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("gemm: nextKernel before setup");
        if (next_ >= 1)
            return nullptr;

        const std::uint64_t tiles_per_dim = n_ / tile_;
        const std::uint64_t blocks = tiles_per_dim * tiles_per_dim;
        const std::uint64_t row_bytes = n_ * 4;

        current_ = std::make_unique<GridKernel>(
            "gemm_kernel", blocks,
            [this, tiles_per_dim, row_bytes](std::uint64_t tb) {
                std::uint64_t ti = tb / tiles_per_dim;
                std::uint64_t tj = tb % tiles_per_dim;
                std::vector<WarpOp> ops;

                // A row panel: tile_ rows streamed contiguously.
                for (std::uint64_t r = ti * tile_;
                     r < (ti + 1) * tile_; ++r) {
                    traceutil::appendStream(ops, a_ + r * row_bytes,
                                            row_bytes, 1024, false, 10);
                }

                // B column panel: one 256B strip of each 4th row of B
                // at column offset tj*tile_ -- a page-strided walk
                // every block with the same tj repeats.
                for (std::uint64_t k = 0; k < n_; k += 4) {
                    WarpOp &op = traceutil::beginOp(ops, 12);
                    traceutil::appendAccess(
                        op, b_ + k * row_bytes + tj * tile_ * 4,
                        tile_ * 4, false);
                }

                // C tile: read-modify-write.
                for (std::uint64_t r = ti * tile_;
                     r < (ti + 1) * tile_; ++r) {
                    WarpOp &op = traceutil::beginOp(ops, 6);
                    traceutil::appendAccess(
                        op, c_ + r * row_bytes + tj * tile_ * 4,
                        tile_ * 4, true);
                }
                return traceutil::splitAmongWarps(std::move(ops),
                                                  params_.warps_per_tb);
            });
        ++next_;
        return current_.get();
    }

  private:
    WorkloadParams params_;
    std::uint64_t n_;
    std::uint64_t tile_;
    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr a_ = 0;
    Addr b_ = 0;
    Addr c_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeGemm(const WorkloadParams &params)
{
    return std::make_unique<GemmWorkload>(params);
}

} // namespace uvmsim
