/**
 * @file
 * Benchmark workload interface.
 *
 * The paper evaluates seven Rodinia/PolyBench benchmarks ported to UVM
 * (cudaMalloc -> cudaMallocManaged, cudaMemcpy removed).  We reproduce
 * each as a generator that (a) performs the same managed allocations
 * and (b) emits, kernel launch by kernel launch, warp traces with the
 * benchmark's documented page-access pattern: streaming (backprop,
 * pathfinder), iterative stencils with full reuse (hotspot, srad),
 * irregular graph traversal (bfs), wavefront sparse-localized reuse
 * (nw), and dense tiled reuse (gemm).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/managed_space.hh"
#include "gpu/kernel.hh"

namespace uvmsim
{

/** Knobs common to every workload generator. */
struct WorkloadParams
{
    /** Multiplies the benchmark's default problem size (1.0 = paper
     *  scale, a 4-16MB footprint). */
    double size_scale = 1.0;

    /** Override the benchmark's default iteration count (0 = default). */
    std::uint64_t iterations = 0;

    /** Seed for any generator randomness (graphs, irregularity). */
    std::uint64_t seed = 42;

    /** Warps per thread block. */
    std::uint32_t warps_per_tb = 4;

    /** Trace file (text or .uvmt) backing the "trace" workload. */
    std::string trace_path;
};

/** A benchmark: managed allocations plus a stream of kernels. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name ("hotspot", "nw", ...). */
    virtual std::string name() const = 0;

    /** Perform the managed allocations.  Called exactly once. */
    virtual void setup(ManagedSpace &space) = 0;

    /**
     * The next kernel to launch, or nullptr when the benchmark is
     * finished.  The returned kernel stays valid until the next call.
     */
    virtual Kernel *nextKernel() = 0;

    /** Total number of kernel launches this workload will perform. */
    virtual std::uint64_t totalKernels() const = 0;
};

/** Construct a workload by name; fatal() on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** The paper's seven benchmarks, in alphabetical order. */
std::vector<std::string> allWorkloadNames();

/** Additional workloads this repo ships beyond the paper's suite. */
std::vector<std::string> extraWorkloadNames();

} // namespace uvmsim
