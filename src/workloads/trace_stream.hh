/**
 * @file
 * Streaming trace event model.
 *
 * A recorded trace -- whatever its on-disk encoding -- is a header
 * (the managed allocations) followed by a flat event stream:
 *
 *   kernelBegin name            start the next kernel launch
 *   blockBegin                  start the next thread block
 *   access a off size w cyc     begin a warp op with one access
 *   access (fused)              append an access to the current op
 *   compute cyc                 a pure-compute warp op (no accesses)
 *
 * TraceSource pulls events one at a time so multi-gigabyte traces
 * never materialize; TraceSink receives them one at a time so
 * conversion and recording stream symmetrically.  The text format and
 * the binary .uvmt format (both in DESIGN.md section 11) are just two
 * encodings of this stream.
 */

#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace uvmsim::tracefmt
{

/** One managed allocation declared by a trace. */
struct TraceAlloc
{
    std::string name;
    std::uint64_t bytes = 0;
};

/** What a trace event is. */
enum class TraceEventKind
{
    kernelBegin,
    blockBegin,
    access,
    compute,
};

/** One event of the flat trace stream. */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::access;

    /** kernelBegin: the kernel's display name. */
    std::string kernel_name;

    /** access: target allocation (index into the alloc table). */
    std::uint32_t alloc_index = 0;
    /** access: byte offset inside the allocation. */
    std::uint64_t offset = 0;
    /** access: byte size (never crosses a 4KB page). */
    std::uint32_t size = 0;
    /** access: load or store. */
    bool is_write = false;
    /**
     * access: when true the access joins the current warp op instead
     * of beginning a new one (a multi-access op, e.g. a fused
     * read-modify-write).
     */
    bool fused = false;

    /** access (op-leading) / compute: compute cycles for the op. */
    Cycles compute = 0;
};

/** The default compute burst when a text record omits cycles. */
inline constexpr Cycles defaultComputeCycles = 4;

/**
 * A pull-based trace decoder.
 *
 * Constructors fully validate the trace (a streaming pre-pass that
 * fatal()s with a line/offset diagnostic on malformed input) and then
 * rewind, so errors surface at open time, never mid-simulation.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** The declared allocations, in index order. */
    virtual const std::vector<TraceAlloc> &allocs() const = 0;

    /** Total kernelBegin events (known up front; validated). */
    virtual std::uint64_t kernelCount() const = 0;

    /** Total access + compute records (validated). */
    virtual std::uint64_t recordCount() const = 0;

    /**
     * Decode the next event.
     * @return false at end of trace (ev is unchanged).
     */
    virtual bool next(TraceEvent &ev) = 0;

    /** Restart the stream from the first event. */
    virtual void rewind() = 0;

    /**
     * Bytes of look-ahead state the decoder currently holds (line or
     * chunk buffers; excludes the alloc table).  Bounded-memory tests
     * assert this stays flat however large the trace file is.
     */
    virtual std::uint64_t bufferedBytes() const = 0;
};

/** A push-based trace encoder. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Write the header.  Called exactly once, before any event. */
    virtual void begin(const std::vector<TraceAlloc> &allocs) = 0;

    /** Append one event. */
    virtual void event(const TraceEvent &ev) = 0;

    /** Finish the trace (trailer, patched counts).  Called once. */
    virtual void end() = 0;
};

/**
 * Open a text-format trace.  The stream must stay alive for the
 * source's lifetime and be seekable (the constructor validates the
 * whole trace, then rewinds).  fatal()s with a line number on
 * malformed input.
 */
std::unique_ptr<TraceSource> openTextTrace(std::istream &input);

/** A sink that emits the text format. */
std::unique_ptr<TraceSink> makeTextTraceSink(std::ostream &out);

/** Pump every event of `src` (from its current position) into `sink`. */
void pumpTrace(TraceSource &src, TraceSink &sink);

} // namespace uvmsim::tracefmt
