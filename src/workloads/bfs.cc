/**
 * @file
 * Rodinia bfs, UVM port.
 *
 * Level-synchronous breadth-first search over a random graph in CSR
 * form.  The workload generator builds the graph and runs the BFS on
 * the host so each level's kernel traces the *actual* frontier: a
 * sequential scan of the mask array plus, for every active node, a
 * contiguous gather from its edge list and scattered touches of the
 * visited/cost arrays at random neighbours.  Irregular but repeatedly
 * re-touching the graph structure -- the paper's "sparse memory
 * accesses over a large set of pages" class.
 */

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/benchmarks.hh"
#include "workloads/trace_util.hh"

namespace uvmsim
{

namespace
{

class BfsWorkload : public Workload
{
  public:
    explicit BfsWorkload(const WorkloadParams &params)
        : params_(params)
    {
        vertices_ = static_cast<std::uint64_t>(98304 * params.size_scale);
        vertices_ =
            std::max<std::uint64_t>(8192, vertices_ & ~std::uint64_t{1023});
        buildGraphAndLevels();
    }

    std::string name() const override { return "bfs"; }

    void
    setup(ManagedSpace &space) override
    {
        nodes_ = space.allocate(vertices_ * 8, "graph_nodes").base();
        edges_ = space.allocate(
            std::max<std::uint64_t>(edge_list_.size() * 4, pageSize),
            "graph_edges").base();
        mask_ = space.allocate(vertices_ * 4, "graph_mask").base();
        updating_ = space.allocate(vertices_ * 4, "updating_mask").base();
        visited_ = space.allocate(vertices_ * 4, "visited").base();
        cost_ = space.allocate(vertices_ * 4, "cost").base();
        ready_ = true;
    }

    std::uint64_t
    totalKernels() const override
    {
        // One traversal kernel and one mask-update kernel per level.
        return 2 * levels_.size();
    }

    Kernel *
    nextKernel() override
    {
        if (!ready_)
            panic("bfs: nextKernel before setup");
        if (next_ >= totalKernels())
            return nullptr;

        std::uint64_t level = next_ / 2;
        bool traversal = (next_ % 2) == 0;
        const std::uint64_t nodes_per_tb = 8192;
        const std::uint64_t blocks =
            (vertices_ + nodes_per_tb - 1) / nodes_per_tb;

        if (traversal) {
            current_ = std::make_unique<GridKernel>(
                "bfs_kernel1_l" + std::to_string(level), blocks,
                [this, level, nodes_per_tb](std::uint64_t tb) {
                    return makeTraversalWarps(level, tb, nodes_per_tb);
                });
        } else {
            current_ = std::make_unique<GridKernel>(
                "bfs_kernel2_l" + std::to_string(level), blocks,
                [this, nodes_per_tb](std::uint64_t tb) {
                    // Stream updating_mask; refresh mask/visited.
                    std::vector<WarpOp> ops;
                    Addr lo = updating_ + tb * nodes_per_tb * 4;
                    traceutil::appendStream(ops, lo, nodes_per_tb * 4,
                                            512, false, 6);
                    Addr mlo = mask_ + tb * nodes_per_tb * 4;
                    traceutil::appendStream(ops, mlo, nodes_per_tb * 4,
                                            512, true, 4);
                    return traceutil::splitAmongWarps(
                        std::move(ops), params_.warps_per_tb);
                });
        }
        ++next_;
        return current_.get();
    }

  private:
    void
    buildGraphAndLevels()
    {
        Rng rng(params_.seed);
        offsets_.assign(vertices_ + 1, 0);
        std::vector<std::uint32_t> degree(vertices_);
        for (std::uint64_t v = 0; v < vertices_; ++v)
            degree[v] = 4 + static_cast<std::uint32_t>(rng.below(8));
        for (std::uint64_t v = 0; v < vertices_; ++v)
            offsets_[v + 1] = offsets_[v] + degree[v];
        edge_list_.resize(offsets_[vertices_]);
        for (std::uint64_t v = 0; v < vertices_; ++v) {
            for (std::uint64_t e = offsets_[v]; e < offsets_[v + 1]; ++e)
                edge_list_[e] =
                    static_cast<std::uint32_t>(rng.below(vertices_));
        }

        // Host-side BFS to get the real per-level frontiers.
        std::vector<bool> seen(vertices_, false);
        std::vector<std::uint32_t> frontier{0};
        seen[0] = true;
        std::uint64_t max_levels =
            params_.iterations ? params_.iterations : 64;
        while (!frontier.empty() && levels_.size() < max_levels) {
            levels_.push_back(frontier);
            std::vector<std::uint32_t> nxt;
            for (std::uint32_t v : frontier) {
                for (std::uint64_t e = offsets_[v]; e < offsets_[v + 1];
                     ++e) {
                    std::uint32_t n = edge_list_[e];
                    if (!seen[n]) {
                        seen[n] = true;
                        nxt.push_back(n);
                    }
                }
            }
            frontier = std::move(nxt);
        }
    }

    std::vector<std::unique_ptr<WarpTrace>>
    makeTraversalWarps(std::uint64_t level, std::uint64_t tb,
                       std::uint64_t nodes_per_tb)
    {
        std::vector<WarpOp> ops;
        std::uint64_t v_lo = tb * nodes_per_tb;
        std::uint64_t v_hi = std::min(vertices_, v_lo + nodes_per_tb);

        // Every thread scans its node's mask word: a sequential
        // stream over this block's slice.
        traceutil::appendStream(ops, mask_ + v_lo * 4,
                                (v_hi - v_lo) * 4, 512, false, 6);

        // Expand the frontier members that fall in this slice.  Model
        // every other member to account for intra-warp coalescing of
        // neighbour probes (documented sampling; preserves page
        // coverage and randomness).
        const std::vector<std::uint32_t> &frontier = levels_[level];
        auto lo_it = std::lower_bound(frontier.begin(), frontier.end(),
                                      static_cast<std::uint32_t>(v_lo));
        std::uint64_t count = 0;
        for (auto it = lo_it; it != frontier.end() && *it < v_hi; ++it) {
            if ((count++ % 2) != 0)
                continue;
            std::uint32_t v = *it;
            std::uint64_t deg = offsets_[v + 1] - offsets_[v];

            WarpOp &gather = traceutil::beginOp(ops, 10);
            // The CSR node record, then the contiguous edge list.
            traceutil::appendAccess(gather, nodes_ + v * 8, 8, false);
            traceutil::appendAccess(
                gather, edges_ + offsets_[v] * 4,
                static_cast<std::uint32_t>(deg * 4), false);

            // Scattered neighbour probes: visited read, cost write.
            WarpOp &probe = traceutil::beginOp(ops, 8);
            for (std::uint64_t s = 0; s < std::min<std::uint64_t>(deg, 2);
                 ++s) {
                std::uint32_t n = edge_list_[offsets_[v] + s];
                traceutil::appendAccess(probe, visited_ + n * 4, 4,
                                        false);
                traceutil::appendAccess(probe, cost_ + n * 4, 4, true);
            }
        }
        return traceutil::splitAmongWarps(std::move(ops),
                                          params_.warps_per_tb);
    }

    WorkloadParams params_;
    std::uint64_t vertices_;
    std::vector<std::uint64_t> offsets_;
    std::vector<std::uint32_t> edge_list_;
    std::vector<std::vector<std::uint32_t>> levels_;

    bool ready_ = false;
    std::uint64_t next_ = 0;
    std::unique_ptr<Kernel> current_;

    Addr nodes_ = 0;
    Addr edges_ = 0;
    Addr mask_ = 0;
    Addr updating_ = 0;
    Addr visited_ = 0;
    Addr cost_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBfs(const WorkloadParams &params)
{
    return std::make_unique<BfsWorkload>(params);
}

} // namespace uvmsim
