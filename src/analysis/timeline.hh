/**
 * @file
 * Epoch time-series aggregation of trace events.
 *
 * The EpochTimeline is a TraceSink that folds the raw event stream
 * into fixed-interval epochs -- the per-interval fault counts,
 * migrated bytes, achieved PCI-e bandwidth, eviction activity and
 * resident footprint that the paper's temporal figures (fault batches,
 * read-bandwidth collapse, eviction thrashing) are built from.  The
 * result dumps as a CSV with one row per epoch, ready for plotting.
 *
 * Accounting rules:
 *  - Instant events (fault raise, migration arrival, eviction drain)
 *    are credited to the epoch containing their timestamp.
 *  - Transfer bytes are credited to the epoch in which the transfer
 *    *completes*, so the per-epoch migrated-byte column sums exactly
 *    to the run's final pcie.h2d.bytes counter.
 *  - Durations (PCI-e channel busy time) are split proportionally
 *    across every epoch the event overlaps, so an epoch's busy
 *    fraction never exceeds 1 per channel.
 *  - The resident footprint is the last value observed in an epoch;
 *    epochs without residency changes inherit the previous value at
 *    dump time.
 *
 * The aggregator can run ring-buffered: with a finite capacity it
 * keeps only the most recent N epochs (early epochs are dropped as
 * time advances), bounding memory on very long runs.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace uvmsim::analysis
{

/** Aggregated activity of one fixed-length time interval. */
struct Epoch
{
    /** Primary far-faults raised this epoch. */
    std::uint64_t faults = 0;
    /** Faults merged onto in-flight MSHR entries. */
    std::uint64_t merged_faults = 0;
    /** Fault-engine service windows that began this epoch. */
    std::uint64_t fault_services = 0;
    /** 4KB pages whose migration landed this epoch. */
    std::uint64_t migrated_pages = 0;
    /** Host-to-device bytes whose transfer completed this epoch. */
    std::uint64_t migrated_bytes = 0;
    /** 4KB pages evicted this epoch. */
    std::uint64_t evicted_pages = 0;
    /** Device-to-host bytes whose write-back completed this epoch. */
    std::uint64_t writeback_bytes = 0;
    /** Ticks the h2d channel was busy within this epoch. */
    Tick h2d_busy = 0;
    /** Ticks the d2h channel was busy within this epoch. */
    Tick d2h_busy = 0;
    /** Resident 4KB pages at the last change inside this epoch. */
    std::uint64_t resident_pages = 0;
    /** Whether resident_pages was observed (vs. needs carrying). */
    bool resident_seen = false;
};

/** Fixed-interval time-series built from the trace event stream. */
class EpochTimeline : public trace::TraceSink
{
  public:
    /**
     * @param epoch_ticks Epoch length in ticks (> 0).
     * @param capacity    Maximum epochs retained; 0 = unbounded.
     *                    With a finite capacity the timeline is a ring:
     *                    epochs older than (newest - capacity + 1) are
     *                    dropped and droppedEpochs() counts them.
     */
    explicit EpochTimeline(Tick epoch_ticks, std::size_t capacity = 0);

    void record(const trace::Event &event) override;
    void finish(Tick end) override;

    /** Epoch length in ticks. */
    Tick epochTicks() const { return epoch_ticks_; }

    /** Index of the first retained epoch (0 unless the ring wrapped). */
    std::uint64_t firstEpoch() const { return first_epoch_; }

    /** Number of retained epochs (includes interior empty epochs). */
    std::size_t size() const { return epochs_.size(); }

    /** Epochs dropped by the ring bound. */
    std::uint64_t droppedEpochs() const { return dropped_epochs_; }

    /** Retained epoch by absolute index; panics when out of range. */
    const Epoch &epoch(std::uint64_t index) const;

    /**
     * Dump one CSV row per retained epoch.  Columns:
     * epoch,start_us,faults,merged_faults,fault_services,
     * migrated_pages,migrated_bytes,h2d_gbps,h2d_busy_frac,
     * evicted_pages,writeback_bytes,d2h_gbps,resident_pages
     */
    void dumpCsv(std::ostream &os) const;

  private:
    /** The epoch containing tick `t`. */
    std::uint64_t epochOf(Tick t) const { return t / epoch_ticks_; }

    /** Grow (and ring-trim) so `index` is addressable; returns it, or
     *  nullptr when the ring already advanced past it. */
    Epoch *at(std::uint64_t index);

    /** Split `duration` starting at `start` across epoch busy sums. */
    void addBusy(Tick start, Tick duration, bool h2d);

    Tick epoch_ticks_;
    std::size_t capacity_;
    std::deque<Epoch> epochs_;
    std::uint64_t first_epoch_ = 0;
    std::uint64_t dropped_epochs_ = 0;
    std::uint64_t resident_now_ = 0;
    Tick end_tick_ = 0;
};

} // namespace uvmsim::analysis
