#include "timeline.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace uvmsim::analysis
{

EpochTimeline::EpochTimeline(Tick epoch_ticks, std::size_t capacity)
    : epoch_ticks_(epoch_ticks), capacity_(capacity)
{
    if (epoch_ticks_ == 0)
        panic("EpochTimeline: epoch length must be positive");
}

Epoch *
EpochTimeline::at(std::uint64_t index)
{
    if (index < first_epoch_)
        return nullptr; // The ring already advanced past this epoch.
    while (first_epoch_ + epochs_.size() <= index) {
        epochs_.emplace_back();
        if (capacity_ != 0 && epochs_.size() > capacity_) {
            epochs_.pop_front();
            ++first_epoch_;
            ++dropped_epochs_;
        }
    }
    if (index < first_epoch_)
        return nullptr;
    return &epochs_[index - first_epoch_];
}

void
EpochTimeline::addBusy(Tick start, Tick duration, bool h2d)
{
    const Tick end = start + duration;
    for (std::uint64_t e = epochOf(start); e * epoch_ticks_ < end; ++e) {
        const Tick epoch_start = e * epoch_ticks_;
        const Tick epoch_end = epoch_start + epoch_ticks_;
        const Tick overlap =
            std::min(end, epoch_end) - std::max(start, epoch_start);
        if (Epoch *epoch = at(e)) {
            if (h2d)
                epoch->h2d_busy += overlap;
            else
                epoch->d2h_busy += overlap;
        }
    }
}

void
EpochTimeline::record(const trace::Event &event)
{
    using trace::Kind;
    switch (event.kind) {
      case Kind::faultRaised:
        if (Epoch *e = at(epochOf(event.start)))
            ++e->faults;
        break;
      case Kind::faultMerged:
        if (Epoch *e = at(epochOf(event.start)))
            ++e->merged_faults;
        break;
      case Kind::faultService:
        if (Epoch *e = at(epochOf(event.start)))
            ++e->fault_services;
        break;
      case Kind::migrationArrived:
        resident_now_ += event.pages;
        if (Epoch *e = at(epochOf(event.start))) {
            e->migrated_pages += event.pages;
            e->resident_pages = resident_now_;
            e->resident_seen = true;
        }
        break;
      case Kind::evictionDrain:
        resident_now_ -= std::min(resident_now_, event.pages);
        if (Epoch *e = at(epochOf(event.start))) {
            e->evicted_pages += event.pages;
            e->resident_pages = resident_now_;
            e->resident_seen = true;
        }
        break;
      case Kind::pcieTransfer: {
        const bool h2d = event.aux == 0;
        // Bytes land with the transfer's last tick; channel occupancy
        // spreads over every epoch the transfer overlaps.
        if (Epoch *e = at(epochOf(event.start + event.duration))) {
            if (h2d)
                e->migrated_bytes += event.bytes;
            else
                e->writeback_bytes += event.bytes;
        }
        if (event.duration > 0)
            addBusy(event.start, event.duration, h2d);
        break;
      }
      case Kind::prefetchDecision:
      case Kind::migrationStart:
      case Kind::userPrefetch:
      case Kind::evictionSelect:
      case Kind::oversubscribed:
      case Kind::kernelRun:
        // Visible in the Chrome trace; no epoch column (yet).  Still
        // materialize the epoch so empty-but-active intervals show up.
        at(epochOf(event.start));
        break;
    }
    end_tick_ = std::max(end_tick_, event.start + event.duration);
}

void
EpochTimeline::finish(Tick end)
{
    end_tick_ = std::max(end_tick_, end);
    // Materialize trailing empty epochs so the series spans the run.
    if (end_tick_ > 0)
        at(epochOf(end_tick_ - 1));
}

const Epoch &
EpochTimeline::epoch(std::uint64_t index) const
{
    if (index < first_epoch_ || index - first_epoch_ >= epochs_.size()) {
        panic("EpochTimeline: epoch %llu out of range [%llu, %llu)",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(first_epoch_),
              static_cast<unsigned long long>(first_epoch_ +
                                              epochs_.size()));
    }
    return epochs_[index - first_epoch_];
}

void
EpochTimeline::dumpCsv(std::ostream &os) const
{
    os << "epoch,start_us,faults,merged_faults,fault_services,"
          "migrated_pages,migrated_bytes,h2d_gbps,h2d_busy_frac,"
          "evicted_pages,writeback_bytes,d2h_gbps,resident_pages\n";

    const double epoch_seconds = ticksToSeconds(epoch_ticks_);
    std::uint64_t resident = 0;
    char buf[64];
    for (std::size_t i = 0; i < epochs_.size(); ++i) {
        const Epoch &e = epochs_[i];
        if (e.resident_seen)
            resident = e.resident_pages;
        const std::uint64_t index = first_epoch_ + i;
        const Tick start = index * epoch_ticks_;
        const double h2d_gbps = static_cast<double>(e.migrated_bytes) /
                                epoch_seconds / 1e9;
        const double d2h_gbps = static_cast<double>(e.writeback_bytes) /
                                epoch_seconds / 1e9;
        os << index << ',';
        std::snprintf(buf, sizeof(buf), "%.3f",
                      ticksToMicroseconds(start));
        os << buf << ',' << e.faults << ',' << e.merged_faults << ','
           << e.fault_services << ',' << e.migrated_pages << ','
           << e.migrated_bytes << ',';
        std::snprintf(buf, sizeof(buf), "%.6f", h2d_gbps);
        os << buf << ',';
        std::snprintf(buf, sizeof(buf), "%.6f",
                      static_cast<double>(e.h2d_busy) /
                          static_cast<double>(epoch_ticks_));
        os << buf << ',' << e.evicted_pages << ',' << e.writeback_bytes
           << ',';
        std::snprintf(buf, sizeof(buf), "%.6f", d2h_gbps);
        os << buf << ',' << resident << '\n';
    }
}

} // namespace uvmsim::analysis
