/**
 * @file
 * Memory access pattern analysis.
 *
 * The paper's Sec. 7 explains every performance result through the
 * benchmarks' page-access patterns: streaming (backprop, pathfinder),
 * iterative reuse (hotspot, srad), and sparse-but-localized repeated
 * access (nw).  This module computes those signatures from an access
 * stream: per-page statistics, exact page-level LRU reuse distances
 * (via a Fenwick tree, O(log n) per access), inter-kernel page
 * overlap, per-kernel address spread, and a classification heuristic
 * mirroring the paper's categories.
 *
 * Attach an analyzer to a Simulator with attachAnalyzer() (see
 * examples/pattern_analysis.cpp), or feed it events directly.
 */

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/ticks.hh"

namespace uvmsim
{

/** Collects and summarizes a page-access stream. */
class AccessPatternAnalyzer
{
  public:
    AccessPatternAnalyzer() = default;

    /** Feed one completed page access. */
    void recordAccess(Tick when, PageNum page, bool is_write);

    /** Mark the end of a kernel (accesses so far belong to it). */
    void kernelBoundary(std::uint64_t kernel_index);

    // ---- aggregate results ----

    /** Total accesses recorded. */
    std::uint64_t totalAccesses() const { return total_accesses_; }

    /** Distinct pages touched. */
    std::uint64_t uniquePages() const { return last_pos_.size(); }

    /** Fraction of accesses that were writes. */
    double writeFraction() const;

    /** Mean accesses per touched page. */
    double meanAccessesPerPage() const;

    /**
     * Exact LRU stack (reuse) distances at page granularity,
     * in distinct-pages units.  First touches are not counted.
     */
    const std::vector<std::uint64_t> &reuseDistanceCounts() const
    {
        return reuse_hist_;
    }

    /** Number of re-accesses (samples behind the reuse histogram). */
    std::uint64_t reuseSamples() const { return reuse_samples_; }

    /** Median reuse distance (0 when no re-accesses). */
    std::uint64_t medianReuseDistance() const;

    /**
     * Fraction of pages of kernel k that were also touched by kernel
     * k-1 (index 0 of the result corresponds to kernel 1).
     */
    std::vector<double> interKernelOverlap() const;

    /** Mean of interKernelOverlap (0 with fewer than 2 kernels). */
    double meanInterKernelOverlap() const;

    /**
     * Per-kernel address spread: (page span) / (unique pages), >= 1.
     * Near 1 means dense; large means widely spaced bands (Fig. 12).
     */
    std::vector<double> kernelSpreadRatio() const;

    /** Mean of kernelSpreadRatio. */
    double meanSpreadRatio() const;

    /** The paper's qualitative access-pattern classes. */
    enum class PatternClass
    {
        streaming,       //!< Pages touched once, front to back.
        iterativeReuse,  //!< Full footprint re-touched per kernel.
        sparseLocalized, //!< Widely spaced bands, repeated over time.
        mixed,           //!< None of the clean signatures.
    };

    /** Classify the stream (heuristic; see implementation notes). */
    PatternClass classify() const;

    /** Human-readable class name. */
    std::string classString() const;

    /** One-paragraph textual report. */
    std::string report() const;

  private:
    /** Fenwick tree over access positions for exact stack distances. */
    void bitSet(std::size_t pos, int delta);
    std::uint64_t bitSum(std::size_t pos) const;

    std::vector<int> bit_;
    std::map<PageNum, std::size_t> last_pos_; //!< page -> position+1
    std::uint64_t total_accesses_ = 0;
    std::uint64_t writes_ = 0;

    /** Log2-bucketed reuse distance counts: bucket i holds distances
     *  in [2^i, 2^(i+1)). */
    std::vector<std::uint64_t> reuse_hist_ =
        std::vector<std::uint64_t>(40, 0);
    std::uint64_t reuse_samples_ = 0;

    /** Per-kernel page sets (kernel index order). */
    std::vector<std::set<PageNum>> kernel_pages_;
    std::set<PageNum> current_kernel_pages_;
};

} // namespace uvmsim
