#include "access_pattern.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "sim/logging.hh"

namespace uvmsim
{

void
AccessPatternAnalyzer::bitSet(std::size_t pos, int delta)
{
    if (pos >= bit_.size())
        bit_.resize(std::max(pos + 1, bit_.size() * 2 + 64), 0);
    for (std::size_t i = pos + 1; i <= bit_.size();
         i += i & (~i + 1)) {
        bit_[i - 1] += delta;
    }
}

std::uint64_t
AccessPatternAnalyzer::bitSum(std::size_t pos) const
{
    // Sum of marks in positions [0, pos].
    std::uint64_t sum = 0;
    std::size_t limit = std::min(pos + 1, bit_.size());
    for (std::size_t i = limit; i > 0; i -= i & (~i + 1))
        sum += static_cast<std::uint64_t>(bit_[i - 1]);
    return sum;
}

void
AccessPatternAnalyzer::recordAccess(Tick when, PageNum page,
                                    bool is_write)
{
    (void)when;
    std::size_t pos = static_cast<std::size_t>(total_accesses_);
    ++total_accesses_;
    writes_ += is_write;
    current_kernel_pages_.insert(page);

    auto it = last_pos_.find(page);
    if (it != last_pos_.end()) {
        std::size_t last = it->second - 1;
        // Distinct pages touched strictly after `last`: those with
        // marks in (last, pos).
        std::uint64_t distance = bitSum(pos) - bitSum(last);
        std::size_t bucket =
            distance == 0
                ? 0
                : static_cast<std::size_t>(
                      std::bit_width(distance) - 1);
        if (bucket >= reuse_hist_.size())
            bucket = reuse_hist_.size() - 1;
        ++reuse_hist_[bucket];
        ++reuse_samples_;
        bitSet(last, -1);
    }
    bitSet(pos, +1);
    last_pos_[page] = pos + 1;
}

void
AccessPatternAnalyzer::kernelBoundary(std::uint64_t kernel_index)
{
    (void)kernel_index;
    kernel_pages_.push_back(std::move(current_kernel_pages_));
    current_kernel_pages_.clear();
}

double
AccessPatternAnalyzer::writeFraction() const
{
    return total_accesses_
               ? static_cast<double>(writes_) /
                     static_cast<double>(total_accesses_)
               : 0.0;
}

double
AccessPatternAnalyzer::meanAccessesPerPage() const
{
    return uniquePages()
               ? static_cast<double>(total_accesses_) /
                     static_cast<double>(uniquePages())
               : 0.0;
}

std::uint64_t
AccessPatternAnalyzer::medianReuseDistance() const
{
    if (reuse_samples_ == 0)
        return 0;
    std::uint64_t half = reuse_samples_ / 2;
    std::uint64_t running = 0;
    for (std::size_t bucket = 0; bucket < reuse_hist_.size(); ++bucket) {
        running += reuse_hist_[bucket];
        if (running > half)
            return 1ull << bucket; // bucket lower bound
    }
    return 1ull << (reuse_hist_.size() - 1);
}

std::vector<double>
AccessPatternAnalyzer::interKernelOverlap() const
{
    std::vector<double> out;
    for (std::size_t k = 1; k < kernel_pages_.size(); ++k) {
        const auto &prev = kernel_pages_[k - 1];
        const auto &cur = kernel_pages_[k];
        if (cur.empty()) {
            out.push_back(0.0);
            continue;
        }
        std::uint64_t shared = 0;
        for (PageNum p : cur)
            shared += prev.count(p);
        out.push_back(static_cast<double>(shared) /
                      static_cast<double>(cur.size()));
    }
    return out;
}

double
AccessPatternAnalyzer::meanInterKernelOverlap() const
{
    auto overlaps = interKernelOverlap();
    if (overlaps.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : overlaps)
        sum += v;
    return sum / static_cast<double>(overlaps.size());
}

std::vector<double>
AccessPatternAnalyzer::kernelSpreadRatio() const
{
    std::vector<double> out;
    for (const auto &pages : kernel_pages_) {
        if (pages.size() < 2) {
            out.push_back(1.0);
            continue;
        }
        double span = static_cast<double>(*pages.rbegin() -
                                          *pages.begin() + 1);
        out.push_back(span / static_cast<double>(pages.size()));
    }
    return out;
}

double
AccessPatternAnalyzer::meanSpreadRatio() const
{
    auto ratios = kernelSpreadRatio();
    if (ratios.empty())
        return 1.0;
    double sum = 0.0;
    for (double v : ratios)
        sum += v;
    return sum / static_cast<double>(ratios.size());
}

AccessPatternAnalyzer::PatternClass
AccessPatternAnalyzer::classify() const
{
    // Heuristics mirroring the paper's Sec. 7 categories:
    //  - sparse localized (nw, bfs): kernels re-touch prior pages
    //    (overlap) across widely spaced bands (span >> unique);
    //  - iterative reuse (hotspot, srad): successive kernels touch
    //    mostly the same pages, densely;
    //  - streaming (backprop, pathfinder, gemm): later kernels mostly
    //    move on to fresh pages.
    double overlap = meanInterKernelOverlap();
    double spread = meanSpreadRatio();

    if (spread >= 3.0 && overlap >= 0.4)
        return PatternClass::sparseLocalized;
    if (overlap >= 0.6)
        return PatternClass::iterativeReuse;
    if (overlap <= 0.55)
        return PatternClass::streaming;
    return PatternClass::mixed;
}

std::string
AccessPatternAnalyzer::classString() const
{
    switch (classify()) {
      case PatternClass::streaming:
        return "streaming";
      case PatternClass::iterativeReuse:
        return "iterative-reuse";
      case PatternClass::sparseLocalized:
        return "sparse-localized";
      case PatternClass::mixed:
        return "mixed";
    }
    panic("unknown PatternClass");
}

std::string
AccessPatternAnalyzer::report() const
{
    std::ostringstream oss;
    oss << "accesses=" << total_accesses_
        << " unique_pages=" << uniquePages()
        << " touches/page=" << meanAccessesPerPage()
        << " write_frac=" << writeFraction()
        << " median_reuse_dist=" << medianReuseDistance()
        << " inter_kernel_overlap=" << meanInterKernelOverlap()
        << " spread_ratio=" << meanSpreadRatio()
        << " class=" << classString();
    return oss.str();
}

} // namespace uvmsim
