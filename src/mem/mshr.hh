/**
 * @file
 * Far-fault Miss Status Handling Registers.
 *
 * When a warp's access touches an invalid page the fault is registered
 * here (step 3 of the paper's Figure 1 control flow).  Subsequent
 * faults on the same page merge into the existing entry instead of
 * triggering duplicate migrations.  When the migration completes, the
 * MSHR is consulted to replay every waiting access (step 6).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** Merge/replay registers for outstanding far-faults. */
class FarFaultMshr
{
  public:
    /** Callback replayed when the page becomes valid. */
    using Waiter = std::function<void()>;

    FarFaultMshr();

    /**
     * Register a fault against a page.
     *
     * @param page        Faulting virtual page.
     * @param on_resolved Invoked (via complete()) when the page becomes
     *                    valid.
     * @return true if this is the first (primary) fault for the page --
     *         i.e. the caller must initiate a migration; false when it
     *         merged into an existing entry.
     */
    bool registerFault(PageNum page, Waiter on_resolved);

    /**
     * Register an in-flight *prefetch* migration for a page.  Creates
     * an entry with no waiter so later faults merge and eviction
     * logic can see the page is in flight; counted separately from
     * demand faults.
     * @return true if a new entry was created.
     */
    bool registerPrefetch(PageNum page);

    /** Whether a migration for the page is already in flight. */
    bool isPending(PageNum page) const;

    /**
     * Resolve a page: removes its entry and returns the waiters, which
     * the caller invokes (ordering: registration order).
     * Pages with no entry return an empty list -- that is normal for
     * pages that were pure prefetches with no faulting waiter.
     */
    std::vector<Waiter> complete(PageNum page);

    /** Number of distinct pages with in-flight migrations. */
    std::size_t pendingPages() const { return entries_.size(); }

    /** Every page with an in-flight migration, ascending (for the
     *  SimAuditor's sweep). */
    std::vector<PageNum> pendingPageList() const;

    /** Total number of waiters currently parked. */
    std::size_t pendingWaiters() const { return waiter_count_; }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    std::unordered_map<PageNum, std::vector<Waiter>> entries_;
    std::size_t waiter_count_ = 0;

    stats::Counter primary_faults_;
    stats::Counter merged_faults_;
    stats::Counter prefetch_entries_;
    stats::Maximum max_outstanding_;
};

} // namespace uvmsim
