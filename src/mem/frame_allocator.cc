#include "frame_allocator.hh"

#include "sim/logging.hh"

namespace uvmsim
{

FrameAllocator::FrameAllocator(std::uint64_t total_frames)
    : total_(total_frames),
      allocated_(total_frames, false),
      allocations_("frames.allocations", "device frames handed out"),
      frees_("frames.frees", "device frames returned"),
      failures_("frames.failures", "allocation attempts on empty pool")
{
    if (total_ == 0)
        panic("FrameAllocator constructed with zero frames");
    free_list_.reserve(total_);
    // Push in reverse so frame 0 is handed out first (LIFO pop_back).
    for (std::uint64_t f = total_; f-- > 0;)
        free_list_.push_back(f);
}

std::optional<FrameNum>
FrameAllocator::allocate()
{
    if (free_list_.empty()) {
        ++failures_;
        return std::nullopt;
    }
    FrameNum frame = free_list_.back();
    free_list_.pop_back();
    allocated_[frame] = true;
    ++allocations_;
    return frame;
}

bool
FrameAllocator::isAllocated(FrameNum frame) const
{
    if (frame >= total_)
        panic("isAllocated on out-of-range frame %llu",
              static_cast<unsigned long long>(frame));
    return allocated_[frame];
}

void
FrameAllocator::free(FrameNum frame)
{
    if (frame >= total_)
        panic("freeing out-of-range frame %llu",
              static_cast<unsigned long long>(frame));
    if (!allocated_[frame])
        panic("double free of frame %llu",
              static_cast<unsigned long long>(frame));
    allocated_[frame] = false;
    free_list_.push_back(frame);
    ++frees_;
}

void
FrameAllocator::registerStats(stats::StatRegistry &registry)
{
    registry.add(&allocations_);
    registry.add(&frees_);
    registry.add(&failures_);
}

} // namespace uvmsim
