#include "mshr.hh"

#include <algorithm>

namespace uvmsim
{

FarFaultMshr::FarFaultMshr()
    : primary_faults_("mshr.primary_faults",
                      "far-faults that initiated a migration"),
      merged_faults_("mshr.merged_faults",
                     "far-faults merged into an in-flight migration"),
      prefetch_entries_("mshr.prefetch_entries",
                        "in-flight prefetch migrations tracked"),
      max_outstanding_("mshr.max_outstanding",
                       "peak number of distinct pending pages")
{
}

bool
FarFaultMshr::registerFault(PageNum page, Waiter on_resolved)
{
    auto [it, inserted] = entries_.try_emplace(page);
    if (on_resolved) {
        it->second.push_back(std::move(on_resolved));
        ++waiter_count_;
    }
    if (inserted) {
        ++primary_faults_;
        max_outstanding_.sample(static_cast<double>(entries_.size()));
    } else {
        ++merged_faults_;
    }
    return inserted;
}

bool
FarFaultMshr::registerPrefetch(PageNum page)
{
    auto [it, inserted] = entries_.try_emplace(page);
    (void)it;
    if (inserted) {
        ++prefetch_entries_;
        max_outstanding_.sample(static_cast<double>(entries_.size()));
    }
    return inserted;
}

bool
FarFaultMshr::isPending(PageNum page) const
{
    return entries_.count(page) > 0;
}

std::vector<PageNum>
FarFaultMshr::pendingPageList() const
{
    std::vector<PageNum> pages;
    pages.reserve(entries_.size());
    for (const auto &[page, waiters] : entries_)
        pages.push_back(page);
    std::sort(pages.begin(), pages.end());
    return pages;
}

std::vector<FarFaultMshr::Waiter>
FarFaultMshr::complete(PageNum page)
{
    auto it = entries_.find(page);
    if (it == entries_.end())
        return {};
    std::vector<Waiter> waiters = std::move(it->second);
    entries_.erase(it);
    waiter_count_ -= waiters.size();
    return waiters;
}

void
FarFaultMshr::registerStats(stats::StatRegistry &registry)
{
    registry.add(&primary_faults_);
    registry.add(&merged_faults_);
    registry.add(&prefetch_entries_);
    registry.add(&max_outstanding_);
}

} // namespace uvmsim
