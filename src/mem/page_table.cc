#include "page_table.hh"

#include "sim/logging.hh"

namespace uvmsim
{

PageTable::PageTable()
    : mappings_("page_table.mappings", "PTE validations performed"),
      invalidations_("page_table.invalidations", "PTE invalidations performed")
{
}

const Pte *
PageTable::lookup(PageNum page) const
{
    auto it = table_.find(page);
    return it == table_.end() ? nullptr : &it->second;
}

bool
PageTable::isValid(PageNum page) const
{
    const Pte *pte = lookup(page);
    return pte && pte->valid;
}

Pte &
PageTable::entryFor(PageNum page)
{
    return table_[page];
}

void
PageTable::mapPage(PageNum page, FrameNum frame)
{
    if (frame == invalidFrame)
        panic("mapPage with invalid frame (page %llu)",
              static_cast<unsigned long long>(page));

    Pte &pte = entryFor(page);
    if (pte.valid)
        panic("double mapping of page %llu",
              static_cast<unsigned long long>(page));
    pte.frame = frame;
    pte.valid = true;
    pte.dirty = false;
    pte.accessed = false;
    ++valid_pages_;
    ++mappings_;
}

FrameNum
PageTable::invalidatePage(PageNum page)
{
    auto it = table_.find(page);
    if (it == table_.end() || !it->second.valid)
        return invalidFrame;
    FrameNum frame = it->second.frame;
    it->second.valid = false;
    it->second.frame = invalidFrame;
    it->second.dirty = false;
    it->second.accessed = false;
    --valid_pages_;
    ++invalidations_;
    return frame;
}

void
PageTable::markAccessed(PageNum page)
{
    auto it = table_.find(page);
    if (it == table_.end() || !it->second.valid)
        panic("markAccessed on invalid page %llu",
              static_cast<unsigned long long>(page));
    it->second.accessed = true;
}

void
PageTable::markDirty(PageNum page)
{
    auto it = table_.find(page);
    if (it == table_.end() || !it->second.valid)
        panic("markDirty on invalid page %llu",
              static_cast<unsigned long long>(page));
    it->second.accessed = true;
    it->second.dirty = true;
}

bool
PageTable::isDirty(PageNum page) const
{
    const Pte *pte = lookup(page);
    return pte && pte->valid && pte->dirty;
}

bool
PageTable::wasAccessed(PageNum page) const
{
    const Pte *pte = lookup(page);
    return pte && pte->valid && pte->accessed;
}

void
PageTable::clear()
{
    table_.clear();
    valid_pages_ = 0;
}

void
PageTable::registerStats(stats::StatRegistry &registry)
{
    registry.add(&mappings_);
    registry.add(&invalidations_);
}

} // namespace uvmsim
