/**
 * @file
 * Per-SM translation lookaside buffer.
 *
 * Modeled after the fully-associative, single-cycle-lookup TLB the
 * paper assumes (Sec. 6.1, after Pichai et al.): a bounded set of page
 * translations with true-LRU replacement.  Misses are relayed to the
 * GMMU, which walks the page table.
 */

#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** A fully-associative, LRU-replaced TLB over 4KB translations. */
class Tlb
{
  public:
    /**
     * @param name    Stat-name prefix, e.g. "sm3.tlb".
     * @param entries Capacity in translations; must be > 0.
     */
    Tlb(std::string name, std::size_t entries);

    /**
     * Probe for a cached translation and update recency.
     * @return true on hit.
     */
    bool lookup(PageNum page);

    /** Probe without updating recency or stats (for tests/inspection). */
    bool contains(PageNum page) const;

    /** Insert a translation after a fill, evicting LRU if full. */
    void insert(PageNum page);

    /** Remove one translation (page invalidated by eviction). */
    void invalidate(PageNum page);

    /** Remove everything (full shootdown). */
    void flushAll();

    /** Current number of cached translations. */
    std::size_t size() const { return map_.size(); }

    /** Capacity in translations. */
    std::size_t capacity() const { return capacity_; }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    /** Most-recent at front. */
    using LruOrder = std::list<PageNum>;

    std::string name_;
    std::size_t capacity_;
    LruOrder order_;
    std::unordered_map<PageNum, LruOrder::iterator> map_;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter evictions_;
};

} // namespace uvmsim
