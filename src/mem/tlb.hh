/**
 * @file
 * Per-SM translation lookaside buffer.
 *
 * Modeled after the fully-associative, single-cycle-lookup TLB the
 * paper assumes (Sec. 6.1, after Pichai et al.): a bounded set of page
 * translations with true-LRU replacement.  Misses are relayed to the
 * GMMU, which walks the page table.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** A fully-associative, LRU-replaced TLB over 4KB translations. */
class Tlb
{
  public:
    /**
     * @param name    Stat-name prefix, e.g. "sm3.tlb".
     * @param entries Capacity in translations; must be > 0.
     */
    Tlb(std::string name, std::size_t entries);

    /**
     * Probe for a cached translation and update recency.
     * @return true on hit.
     */
    bool lookup(PageNum page);

    /** Probe without updating recency or stats (for tests/inspection). */
    bool contains(PageNum page) const;

    /** Insert a translation after a fill, evicting LRU if full. */
    void insert(PageNum page);

    /** Remove one translation (page invalidated by eviction). */
    void invalidate(PageNum page);

    /** Remove everything (full shootdown). */
    void flushAll();

    /** Current number of cached translations. */
    std::size_t size() const { return count_; }

    /** Capacity in translations. */
    std::size_t capacity() const { return capacity_; }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    /** Sentinel index for "no entry". */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /** One cached translation, threaded on an intrusive LRU list. */
    struct Entry
    {
        PageNum page = 0;
        std::uint32_t prev = npos; //!< Toward MRU.
        std::uint32_t next = npos; //!< Toward LRU / free link.
    };

    /** Unlink a slot from the LRU list (links left dangling). */
    void unlink(std::uint32_t slot);
    /** Link a slot at the MRU (head) end. */
    void linkFront(std::uint32_t slot);

    /** Hash-table position of a page's entry, or npos. */
    std::uint32_t findPos(PageNum page) const;
    /** Insert an arena slot for `page` into the hash table. */
    void tableInsert(PageNum page, std::uint32_t slot);
    /** Remove the entry at hash-table position `pos` (backward-shift
     *  deletion, so lookups never probe over tombstones). */
    void tableErase(std::uint32_t pos);

    std::uint32_t
    hashOf(PageNum page) const
    {
        return static_cast<std::uint32_t>(
                   (page * 0x9e3779b97f4a7c15ull) >> 32) &
               table_mask_;
    }

    std::string name_;
    std::size_t capacity_;

    /** Entry arena, sized to capacity up front; free list through
     *  `next`. */
    std::vector<Entry> entries_;
    std::uint32_t free_ = npos;
    std::uint32_t head_ = npos; //!< MRU end.
    std::uint32_t tail_ = npos; //!< LRU end.

    /**
     * Open-addressing page -> arena-slot index, linear probing at a
     * load factor of at most 1/4 -- small enough to live in a couple
     * of cache lines for typical TLB sizes, with no per-node
     * allocation or pointer chase.
     */
    std::vector<std::uint32_t> table_;
    std::uint32_t table_mask_ = 0;
    std::size_t count_ = 0;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter evictions_;
};

} // namespace uvmsim
