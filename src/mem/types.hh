/**
 * @file
 * Address-space constants and elementary memory types.
 *
 * The paper's geometry (Sec. 2, 3): the OS/driver page is 4KB, the
 * prefetcher/evictor basic block is 64KB (16 pages), and the large page
 * / tree root granule is 2MB (512 pages, 32 basic blocks).
 */

#pragma once

#include <cstdint>

namespace uvmsim
{

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A virtual page number (address >> pageShift). */
using PageNum = std::uint64_t;

/** A device physical frame number. */
using FrameNum = std::uint64_t;

/** Sentinel for "no frame". */
constexpr FrameNum invalidFrame = ~FrameNum{0};

/** log2 of the 4KB page size. */
constexpr unsigned pageShift = 12;
/** The 4KB driver page size in bytes. */
constexpr std::uint64_t pageSize = 1ull << pageShift;

/** log2 of the 64KB basic block size. */
constexpr unsigned basicBlockShift = 16;
/** The 64KB prefetch/evict basic block size in bytes. */
constexpr std::uint64_t basicBlockSize = 1ull << basicBlockShift;
/** Pages per basic block (16). */
constexpr std::uint64_t pagesPerBasicBlock = basicBlockSize / pageSize;

/** log2 of the 2MB large page size. */
constexpr unsigned largePageShift = 21;
/** The 2MB large page size in bytes. */
constexpr std::uint64_t largePageSize = 1ull << largePageShift;
/** Basic blocks per 2MB large page (32). */
constexpr std::uint64_t blocksPerLargePage = largePageSize / basicBlockSize;
/** Pages per 2MB large page (512). */
constexpr std::uint64_t pagesPerLargePage = largePageSize / pageSize;

/** Page number containing a byte address. */
constexpr PageNum
pageOf(Addr a)
{
    return a >> pageShift;
}

/** First byte address of a page. */
constexpr Addr
pageBase(PageNum p)
{
    return p << pageShift;
}

/** Index of the 64KB basic block containing a byte address. */
constexpr std::uint64_t
basicBlockOf(Addr a)
{
    return a >> basicBlockShift;
}

/** First byte address of a basic block index. */
constexpr Addr
basicBlockBase(std::uint64_t b)
{
    return b << basicBlockShift;
}

/** Index of the 2MB large page containing a byte address. */
constexpr std::uint64_t
largePageOf(Addr a)
{
    return a >> largePageShift;
}

/** Align an address down to its page base. */
constexpr Addr
alignToPage(Addr a)
{
    return a & ~(pageSize - 1);
}

/** Align an address down to its basic-block base. */
constexpr Addr
alignToBasicBlock(Addr a)
{
    return a & ~(basicBlockSize - 1);
}

/** Align a size up to a whole number of pages. */
constexpr std::uint64_t
roundUpToPages(std::uint64_t bytes)
{
    return (bytes + pageSize - 1) & ~(pageSize - 1);
}

/** Align a size up to a whole number of basic blocks. */
constexpr std::uint64_t
roundUpToBasicBlocks(std::uint64_t bytes)
{
    return (bytes + basicBlockSize - 1) & ~(basicBlockSize - 1);
}

/**
 * One coalesced global-memory transaction as seen by the memory system:
 * produced by an SM's load/store unit after coalescing the lanes of one
 * warp instruction.
 */
struct MemAccess
{
    Addr addr = 0;          //!< First byte touched.
    std::uint32_t size = 4; //!< Bytes touched (within one page).
    bool is_write = false;  //!< Store vs load.
    std::uint32_t sm_id = 0;   //!< Issuing SM, for TLB selection.
    std::uint64_t warp_id = 0; //!< Globally unique warp identifier.
};

} // namespace uvmsim
