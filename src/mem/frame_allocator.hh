/**
 * @file
 * Device physical frame allocator.
 *
 * The device memory is a fixed pool of 4KB frames.  The GMMU draws
 * frames here on migration and returns them on eviction.  Exhaustion is
 * the over-subscription trigger: when no frame is free the eviction
 * policy must produce victims before a migration can complete.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** LIFO free-list allocator over a fixed pool of device frames. */
class FrameAllocator
{
  public:
    /** @param total_frames Size of the device memory in 4KB frames. */
    explicit FrameAllocator(std::uint64_t total_frames);

    /**
     * Allocate one frame.
     * @return The frame number, or nullopt when the pool is exhausted.
     */
    std::optional<FrameNum> allocate();

    /** Return a frame to the pool. Double-free panics. */
    void free(FrameNum frame);

    /** Whether a frame is currently handed out. @pre frame in range. */
    bool isAllocated(FrameNum frame) const;

    /** Frames currently free. */
    std::uint64_t freeFrames() const { return free_list_.size(); }

    /** Frames currently allocated. */
    std::uint64_t usedFrames() const { return total_ - free_list_.size(); }

    /** Pool capacity in frames. */
    std::uint64_t totalFrames() const { return total_; }

    /** Pool capacity in bytes. */
    std::uint64_t capacityBytes() const { return total_ * pageSize; }

    /** Fraction of the pool in use, in [0, 1]. */
    double
    occupancy() const
    {
        return total_ ? static_cast<double>(usedFrames()) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    std::uint64_t total_;
    std::vector<FrameNum> free_list_;
    std::vector<bool> allocated_;

    stats::Counter allocations_;
    stats::Counter frees_;
    stats::Counter failures_;
};

} // namespace uvmsim
