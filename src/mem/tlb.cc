#include "tlb.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

Tlb::Tlb(std::string name, std::size_t entries)
    : name_(std::move(name)),
      capacity_(entries),
      hits_(name_ + ".hits", "TLB hits"),
      misses_(name_ + ".misses", "TLB misses"),
      evictions_(name_ + ".evictions", "TLB capacity evictions")
{
    if (capacity_ == 0)
        panic("Tlb %s constructed with zero capacity", name_.c_str());
    entries_.resize(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i)
        entries_[i].next =
            i + 1 < capacity_ ? static_cast<std::uint32_t>(i + 1) : npos;
    free_ = 0;
    table_.assign(std::bit_ceil(capacity_ * 4), npos);
    table_mask_ = static_cast<std::uint32_t>(table_.size() - 1);
}

std::uint32_t
Tlb::findPos(PageNum page) const
{
    std::uint32_t pos = hashOf(page);
    while (table_[pos] != npos) {
        if (entries_[table_[pos]].page == page)
            return pos;
        pos = (pos + 1) & table_mask_;
    }
    return npos;
}

void
Tlb::tableInsert(PageNum page, std::uint32_t slot)
{
    std::uint32_t pos = hashOf(page);
    while (table_[pos] != npos)
        pos = (pos + 1) & table_mask_;
    table_[pos] = slot;
    ++count_;
}

void
Tlb::tableErase(std::uint32_t pos)
{
    table_[pos] = npos;
    std::uint32_t hole = pos;
    for (std::uint32_t i = (pos + 1) & table_mask_; table_[i] != npos;
         i = (i + 1) & table_mask_) {
        std::uint32_t home = hashOf(entries_[table_[i]].page);
        // Move the entry back iff its home does not lie cyclically
        // within (hole, i] -- the standard backward-shift rule.
        bool reachable = ((i - home) & table_mask_) <
                         ((i - hole) & table_mask_);
        if (!reachable) {
            table_[hole] = table_[i];
            table_[i] = npos;
            hole = i;
        }
    }
    --count_;
}

void
Tlb::unlink(std::uint32_t slot)
{
    Entry &e = entries_[slot];
    if (e.prev != npos)
        entries_[e.prev].next = e.next;
    else
        head_ = e.next;
    if (e.next != npos)
        entries_[e.next].prev = e.prev;
    else
        tail_ = e.prev;
}

void
Tlb::linkFront(std::uint32_t slot)
{
    Entry &e = entries_[slot];
    e.prev = npos;
    e.next = head_;
    if (head_ != npos)
        entries_[head_].prev = slot;
    head_ = slot;
    if (tail_ == npos)
        tail_ = slot;
}

bool
Tlb::lookup(PageNum page)
{
    std::uint32_t pos = findPos(page);
    if (pos == npos) {
        ++misses_;
        return false;
    }
    // Move to MRU position.
    std::uint32_t slot = table_[pos];
    if (head_ != slot) {
        unlink(slot);
        linkFront(slot);
    }
    ++hits_;
    return true;
}

bool
Tlb::contains(PageNum page) const
{
    return findPos(page) != npos;
}

void
Tlb::insert(PageNum page)
{
    std::uint32_t pos = findPos(page);
    if (pos != npos) {
        std::uint32_t hit = table_[pos];
        if (head_ != hit) {
            unlink(hit);
            linkFront(hit);
        }
        return;
    }
    std::uint32_t slot;
    if (free_ != npos) {
        slot = free_;
        free_ = entries_[slot].next;
    } else {
        slot = tail_;
        tableErase(findPos(entries_[slot].page));
        unlink(slot);
        ++evictions_;
    }
    entries_[slot].page = page;
    linkFront(slot);
    tableInsert(page, slot);
}

void
Tlb::invalidate(PageNum page)
{
    std::uint32_t pos = findPos(page);
    if (pos == npos)
        return;
    std::uint32_t slot = table_[pos];
    unlink(slot);
    entries_[slot].next = free_;
    free_ = slot;
    tableErase(pos);
}

void
Tlb::flushAll()
{
    std::fill(table_.begin(), table_.end(), npos);
    count_ = 0;
    head_ = tail_ = npos;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        entries_[i].next =
            i + 1 < entries_.size() ? static_cast<std::uint32_t>(i + 1)
                                    : npos;
    free_ = entries_.empty() ? npos : 0;
}

void
Tlb::registerStats(stats::StatRegistry &registry)
{
    registry.add(&hits_);
    registry.add(&misses_);
    registry.add(&evictions_);
}

} // namespace uvmsim
