#include "tlb.hh"

#include "sim/logging.hh"

namespace uvmsim
{

Tlb::Tlb(std::string name, std::size_t entries)
    : name_(std::move(name)),
      capacity_(entries),
      hits_(name_ + ".hits", "TLB hits"),
      misses_(name_ + ".misses", "TLB misses"),
      evictions_(name_ + ".evictions", "TLB capacity evictions")
{
    if (capacity_ == 0)
        panic("Tlb %s constructed with zero capacity", name_.c_str());
}

bool
Tlb::lookup(PageNum page)
{
    auto it = map_.find(page);
    if (it == map_.end()) {
        ++misses_;
        return false;
    }
    // Move to MRU position.
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return true;
}

bool
Tlb::contains(PageNum page) const
{
    return map_.count(page) > 0;
}

void
Tlb::insert(PageNum page)
{
    auto it = map_.find(page);
    if (it != map_.end()) {
        order_.splice(order_.begin(), order_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        PageNum victim = order_.back();
        order_.pop_back();
        map_.erase(victim);
        ++evictions_;
    }
    order_.push_front(page);
    map_[page] = order_.begin();
}

void
Tlb::invalidate(PageNum page)
{
    auto it = map_.find(page);
    if (it == map_.end())
        return;
    order_.erase(it->second);
    map_.erase(it);
}

void
Tlb::flushAll()
{
    order_.clear();
    map_.clear();
}

void
Tlb::registerStats(stats::StatRegistry &registry)
{
    registry.add(&hits_);
    registry.add(&misses_);
    registry.add(&evictions_);
}

} // namespace uvmsim
