/**
 * @file
 * The GPU page table.
 *
 * Maps virtual page numbers to device frames with the valid / dirty /
 * accessed flags the paper's policies consult.  Following the paper we
 * model the translation structure functionally (a flat map) and charge
 * walk latency separately (100 core cycles, Table 2) in the GMMU.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace uvmsim
{

/** One page table entry. */
struct Pte
{
    FrameNum frame = invalidFrame; //!< Backing device frame.
    bool valid = false;    //!< Data resident and mapped on the device.
    bool dirty = false;    //!< Written since migration.
    bool accessed = false; //!< Referenced since migration.
};

/** Flat per-device page table. */
class PageTable
{
  public:
    PageTable();

    /**
     * Look up the entry for a page.
     * @return nullptr when no entry exists at all.
     */
    const Pte *lookup(PageNum page) const;

    /** True iff an entry exists and its valid flag is set. */
    bool isValid(PageNum page) const;

    /**
     * Install (or re-validate) a mapping after a completed migration.
     * Sets the valid flag; clears dirty/accessed.
     */
    void mapPage(PageNum page, FrameNum frame);

    /**
     * Invalidate a page on eviction.
     * @return The frame the page occupied, or invalidFrame if the page
     *         was not valid (the entry is kept with valid=false, as new
     *         PTEs are created on first touch and re-validated later).
     */
    FrameNum invalidatePage(PageNum page);

    /** Record a read access: sets the accessed flag. @pre valid. */
    void markAccessed(PageNum page);

    /** Record a write access: sets accessed and dirty. @pre valid. */
    void markDirty(PageNum page);

    /** Whether the page is valid and dirty. */
    bool isDirty(PageNum page) const;

    /** Whether the page is valid and was accessed since migration. */
    bool wasAccessed(PageNum page) const;

    /** Number of currently valid pages. */
    std::uint64_t validPages() const { return valid_pages_; }

    /** Total entries (valid + previously valid). */
    std::size_t entries() const { return table_.size(); }

    /** Drop everything (between kernel benchmarks). */
    void clear();

    /** Register this component's statistics. */
    void registerStats(stats::StatRegistry &registry);

  private:
    Pte &entryFor(PageNum page);

    std::unordered_map<PageNum, Pte> table_;
    std::uint64_t valid_pages_ = 0;

    stats::Counter mappings_;
    stats::Counter invalidations_;
};

} // namespace uvmsim
