/**
 * @file
 * Crash-safe artifact publishing: write-to-temp + fsync + rename.
 *
 * Every file artifact this repo produces -- result-store entries,
 * sweep CSVs, Chrome trace JSON, epoch time-series -- is either fully
 * present or absent.  An interrupted run must never leave a truncated
 * file behind for downstream scripts to parse as valid.  The helpers
 * here are the single publish path enforcing that:
 *
 *   publishFile(path, content)    one-shot: temp, write, fsync, rename
 *   atomicTempPath(path)          a pid/sequence-unique sibling path
 *                                 for incremental writers (open it,
 *                                 stream into it, then...)
 *   publishTempFile(tmp, path)    ...fsync it and rename into place
 *
 * rename(2) within one directory is atomic on POSIX, so a concurrent
 * reader sees either the old file, no file, or the complete new file.
 * The containing directory is fsync'd after the rename so the publish
 * survives a power cut, not just a process kill.
 */

#pragma once

#include <string>

namespace uvmsim
{

/**
 * A temp sibling of `path` ("<path>.tmp.<pid>.<seq>"), unique across
 * processes (pid) and within one (atomic sequence counter), always in
 * the same directory as `path` so the final rename cannot cross
 * filesystems.
 */
std::string atomicTempPath(const std::string &path);

/**
 * fsync `tmp`, atomically rename it onto `path`, then fsync the
 * containing directory.  fatal()s on any error (an artifact the user
 * asked for could not be produced).
 */
void publishTempFile(const std::string &tmp, const std::string &path);

/**
 * Atomically publish `content` as `path`: write it to a temp sibling,
 * fsync, rename.  Readers never observe a partial file.
 */
void publishFile(const std::string &path, const std::string &content);

} // namespace uvmsim
