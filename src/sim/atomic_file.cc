#include "atomic_file.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

/** Per-process publish sequence; makes temp names thread-unique. */
std::atomic<std::uint64_t> temp_sequence{0};

/** The directory part of `path` ("." when it has none). */
std::string
parentDir(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

std::string
atomicTempPath(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(temp_sequence.fetch_add(1));
}

void
publishTempFile(const std::string &tmp, const std::string &path)
{
    // Flush the temp file's data to stable storage before the rename
    // makes it visible; otherwise a power cut could expose an empty
    // published file -- exactly the torn artifact this path exists to
    // prevent.
    int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0)
        fatal("publish: cannot reopen temp file '%s': %s", tmp.c_str(),
              std::strerror(errno));
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        fatal("publish: fsync '%s' failed: %s", tmp.c_str(),
              std::strerror(err));
    }
    ::close(fd);

    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("publish: rename '%s' -> '%s' failed: %s", tmp.c_str(),
              path.c_str(), std::strerror(errno));

    // Persist the directory entry too.  Failure here is not fatal:
    // the file content is already safe and visible; only crash
    // durability of the rename itself would be at risk.
    int dfd = ::open(parentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

void
publishFile(const std::string &path, const std::string &content)
{
    const std::string tmp = atomicTempPath(path);
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("publish: cannot create temp file '%s': %s", tmp.c_str(),
              std::strerror(errno));
    std::size_t written = 0;
    while (written < content.size()) {
        ssize_t n = ::write(fd, content.data() + written,
                            content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            fatal("publish: write to '%s' failed: %s", tmp.c_str(),
                  std::strerror(err));
        }
        written += static_cast<std::size_t>(n);
    }
    ::close(fd);
    publishTempFile(tmp, path);
}

} // namespace uvmsim
