/**
 * @file
 * Statistics framework.
 *
 * Every model component exposes its observable behaviour (fault counts,
 * migrated bytes, transfer histograms, derived bandwidths...) as named
 * statistics registered with the simulation's StatRegistry.  The
 * registry renders the complete set as a human-readable table or as
 * CSV, which is what the bench harnesses consume to regenerate the
 * paper's tables and figures.
 *
 * Components own their stats as plain members; the registry stores
 * non-owning pointers and therefore must not outlive the components.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace uvmsim::stats
{

/**
 * Render a stat value without precision loss: whole values print as
 * integers, fractional ones with max_digits10 significant digits so
 * they round-trip through text exactly.  Used by the text and CSV
 * dumps -- the default ostream precision of 6 significant digits
 * would corrupt large byte/tick counters.
 */
std::string renderValue(double v);

/** Abstract named statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    /** Fully qualified stat name, e.g. "gmmu.far_faults". */
    const std::string &name() const { return name_; }

    /** One-line human description. */
    const std::string &description() const { return desc_; }

    /** The stat's value reduced to a double (histograms report count). */
    virtual double value() const = 0;

    /** Reset to the state of a freshly constructed stat. */
    virtual void reset() = 0;

    /** Render the value for the text dump. */
    virtual std::string render() const;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonically increasing (but resettable) integer counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    /** Raw counter value. */
    std::uint64_t count() const { return value_; }

    double value() const override { return static_cast<double>(value_); }
    void reset() override { value_ = 0; }
    std::string render() const override;

  private:
    std::uint64_t value_ = 0;
};

/**
 * A settable floating-point scalar (e.g. a configured ratio).
 *
 * reset() restores the last set() value rather than zeroing: scalars
 * typically hold configured quantities, and a StatRegistry::resetAll()
 * between kernels or epochs must not silently wipe them.  clear()
 * discards the configured value too.
 */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    void set(double v) { value_ = configured_ = v; }

    /** Forget the configured value entirely (back to 0). */
    void clear() { value_ = configured_ = 0.0; }

    double value() const override { return value_; }
    void reset() override { value_ = configured_; }

  private:
    double value_ = 0.0;
    double configured_ = 0.0;
};

/** Tracks the maximum of all samples offered to it. */
class Maximum : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        if (!seen_ || v > value_) {
            value_ = v;
            seen_ = true;
        }
    }

    double value() const override { return seen_ ? value_ : 0.0; }
    void reset() override { value_ = 0.0; seen_ = false; }

  private:
    double value_ = 0.0;
    bool seen_ = false;
};

/** Running average of samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** Number of samples folded in so far. */
    std::uint64_t samples() const { return count_; }

    double
    value() const override
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-width linear histogram with underflow/overflow buckets. */
class Histogram : public Stat
{
  public:
    /**
     * @param name        Stat name.
     * @param desc        Description.
     * @param bucket_lo   Lower bound of the first in-range bucket.
     * @param bucket_width Width of each bucket (> 0).
     * @param num_buckets Number of in-range buckets (> 0).
     */
    Histogram(std::string name, std::string desc, double bucket_lo,
              double bucket_width, std::size_t num_buckets);

    /** Fold one sample into the histogram. */
    void sample(double v);

    /** Total number of samples. */
    std::uint64_t samples() const { return samples_; }

    /** Mean of all samples. */
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

    /** Smallest sample seen (0 if none). */
    double minSample() const { return samples_ ? min_ : 0.0; }

    /** Largest sample seen (0 if none). */
    double maxSample() const { return samples_ ? max_ : 0.0; }

    /** Count in in-range bucket i. */
    std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }

    /** Count of samples below the first bucket. */
    std::uint64_t underflows() const { return underflow_; }

    /**
     * Count of samples strictly above the end of the last bucket.
     * The range is inclusive at the top: a sample exactly equal to
     * lo + width * num_buckets lands in the last bucket, so e.g. a
     * maximum-size transfer is counted in range, not as overflow.
     */
    std::uint64_t overflows() const { return overflow_; }

    /** Number of in-range buckets. */
    std::size_t numBuckets() const { return buckets_.size(); }

    double value() const override { return static_cast<double>(samples_); }
    void reset() override;
    std::string render() const override;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A derived statistic computed on demand from other state. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc, std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const override { return fn_ ? fn_() : 0.0; }
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * Non-owning registry of all stats in one simulation.
 *
 * Names must be unique; duplicate registration panics since it always
 * indicates a wiring bug.
 */
class StatRegistry
{
  public:
    /** Register a stat; the registry does not take ownership. */
    void add(Stat *stat);

    /** Remove a stat (used by components with shorter lifetimes). */
    void remove(const std::string &name);

    /** Find a stat by name; nullptr if absent. */
    Stat *find(const std::string &name) const;

    /** Find a stat by name; panics if absent (for harness code). */
    Stat &at(const std::string &name) const;

    /** All stats sorted by name. */
    std::vector<Stat *> all() const;

    /** Reset every registered stat. */
    void resetAll();

    /** Human-readable aligned dump, sorted by name. */
    void dump(std::ostream &os) const;

    /** Machine-readable CSV dump: name,value. */
    void dumpCsv(std::ostream &os) const;

    /** Number of registered stats. */
    std::size_t size() const { return stats_.size(); }

  private:
    std::map<std::string, Stat *> stats_;
};

} // namespace uvmsim::stats
