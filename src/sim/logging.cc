#include "logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace uvmsim
{

namespace
{

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

namespace debug
{

namespace
{

struct FlagState
{
    std::set<std::string> enabled;
    bool all = false;

    FlagState()
    {
        // Seed from UVMSIM_DEBUG=Flag1,Flag2 or UVMSIM_DEBUG=All.
        const char *env = std::getenv("UVMSIM_DEBUG");
        if (!env)
            return;
        std::string spec(env);
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            std::string flag = spec.substr(start, comma - start);
            if (flag == "All")
                all = true;
            else if (!flag.empty())
                enabled.insert(flag);
            start = comma + 1;
        }
    }
};

FlagState &
state()
{
    static FlagState the_state;
    return the_state;
}

} // namespace

void
enableFlag(const std::string &flag)
{
    if (flag == "All")
        state().all = true;
    else
        state().enabled.insert(flag);
}

void
disableFlag(const std::string &flag)
{
    if (flag == "All")
        state().all = false;
    else
        state().enabled.erase(flag);
}

bool
flagEnabled(const std::string &flag)
{
    return state().all || state().enabled.count(flag) > 0;
}

void
clearFlags()
{
    state().all = false;
    state().enabled.clear();
}

void
tracePrintf(const std::string &flag, const char *fmt, ...)
{
    std::fprintf(stderr, "%s: ", flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace debug

} // namespace uvmsim
