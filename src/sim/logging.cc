#include "logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include <unistd.h>

namespace uvmsim
{

namespace
{

/**
 * The pid that loaded this library, captured before main() and thus
 * before any fork().  fatal() compares against it so a fork()ed
 * worker (tools/uvmsim_sweep --workers) never dies through
 * std::exit: in a forked child, exit() re-flushes stdio buffers
 * inherited from the parent (duplicating anything the parent had
 * buffered at fork time) and runs atexit handlers and static
 * destructors against state the parent still owns.
 */
const pid_t owning_pid = ::getpid();

} // namespace

bool
inForkedChild()
{
    return ::getpid() != owning_pid;
}

std::mutex &
outputMutex()
{
    static std::mutex the_mutex;
    return the_mutex;
}

namespace
{

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    // A forked worker must not run exit(): _Exit skips the inherited
    // stdio buffers and the parent's atexit/static-destructor state.
    if (inForkedChild())
        std::_Exit(1);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

namespace debug
{

namespace
{

/**
 * Flag state shared by every thread.  Construction is race-free (a
 * C++11 magic static); mutation and lookup synchronize on `mutex`.
 * `maybe_enabled` short-circuits flagEnabled() without taking the lock
 * in the common all-tracing-off case, so parallel simulation runs pay
 * one relaxed atomic load per DTRACE site.
 */
struct FlagState
{
    std::mutex mutex;
    std::set<std::string> enabled;
    bool all = false;
    std::atomic<bool> maybe_enabled{false};

    FlagState()
    {
        // Seed from UVMSIM_DEBUG=Flag1,Flag2 or UVMSIM_DEBUG=All.
        const char *env = std::getenv("UVMSIM_DEBUG");
        if (!env)
            return;
        std::string spec(env);
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            std::string flag = spec.substr(start, comma - start);
            if (flag == "All")
                all = true;
            else if (!flag.empty())
                enabled.insert(flag);
            start = comma + 1;
        }
        maybe_enabled.store(all || !enabled.empty(),
                            std::memory_order_release);
    }

    void
    refreshMaybeEnabled()
    {
        maybe_enabled.store(all || !enabled.empty(),
                            std::memory_order_release);
    }
};

FlagState &
state()
{
    static FlagState the_state;
    return the_state;
}

} // namespace

void
enableFlag(const std::string &flag)
{
    FlagState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (flag == "All")
        s.all = true;
    else
        s.enabled.insert(flag);
    s.refreshMaybeEnabled();
}

void
disableFlag(const std::string &flag)
{
    FlagState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (flag == "All")
        s.all = false;
    else
        s.enabled.erase(flag);
    s.refreshMaybeEnabled();
}

bool
flagEnabled(const std::string &flag)
{
    FlagState &s = state();
    if (!s.maybe_enabled.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.all || s.enabled.count(flag) > 0;
}

void
clearFlags()
{
    FlagState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.all = false;
    s.enabled.clear();
    s.refreshMaybeEnabled();
}

void
tracePrintf(const std::string &flag, const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "%s: ", flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace debug

} // namespace uvmsim
