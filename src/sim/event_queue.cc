#include "event_queue.hh"

#include "sim/logging.hh"

namespace uvmsim
{

EventQueue::EventId
EventQueue::schedule(Tick when, int priority, Callback cb)
{
    if (when < cur_tick_) {
        panic("event scheduled in the past (when=%llu cur=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(cur_tick_));
    }
    if (!cb)
        panic("event scheduled with empty callback");

    EventId id = next_id_++;
    heap_.push(Entry{when, priority, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // Lazy deletion: the heap entry stays behind and is skipped when it
    // reaches the top.
    return callbacks_.erase(id) > 0;
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry top = heap_.top();
        auto it = callbacks_.find(top.id);
        if (it == callbacks_.end()) {
            // Cancelled event; discard the stale heap entry.
            heap_.pop();
            continue;
        }
        Callback cb = std::move(it->second);
        callbacks_.erase(it);
        heap_.pop();
        cur_tick_ = top.when;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (!heap_.empty()) {
        // Skip stale entries without advancing time.
        Entry top = heap_.top();
        if (callbacks_.find(top.id) == callbacks_.end()) {
            heap_.pop();
            continue;
        }
        if (top.when > limit)
            break;
        runOne();
        ++count;
    }
    return count;
}

void
EventQueue::reset()
{
    heap_ = decltype(heap_)();
    callbacks_.clear();
    cur_tick_ = 0;
    next_id_ = 1;
    executed_ = 0;
}

} // namespace uvmsim
