#include "event_queue.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace uvmsim
{

namespace
{

/** Initial calendar geometry: 64 buckets of 1024 ticks (~1ns). */
constexpr std::size_t initialBuckets = 64;
constexpr unsigned initialLog2Width = 10;

/** Widest bucket considered: 2^44 ticks (~17.6 simulated seconds). */
constexpr unsigned maxLog2Width = 44;

} // namespace

EventQueue::EventQueue()
{
    buckets_.assign(initialBuckets, npos);
}

std::uint32_t
EventQueue::allocRec()
{
    if (free_head_ != npos) {
        std::uint32_t slot = free_head_;
        free_head_ = arena_[slot].next;
        return slot;
    }
    arena_.emplace_back();
    return static_cast<std::uint32_t>(arena_.size() - 1);
}

void
EventQueue::freeRec(std::uint32_t slot)
{
    Rec &rec = arena_[slot];
    rec.cb.reset();
    rec.live = false;
    ++rec.gen; // stale EventIds must stop resolving
    rec.next = free_head_;
    free_head_ = slot;
}

void
EventQueue::linkIntoBucket(std::uint32_t slot)
{
    std::uint32_t *link = &buckets_[bucketOf(arena_[slot].when)];
    while (*link != npos && firesBefore(arena_[*link], arena_[slot]))
        link = &arena_[*link].next;
    arena_[slot].next = *link;
    *link = slot;
}

EventQueue::EventId
EventQueue::schedule(Tick when, int priority, Callback cb)
{
    if (when < cur_tick_) {
        panic("event scheduled in the past (when=%llu cur=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(cur_tick_));
    }
    if (!cb)
        panic("event scheduled with empty callback");

    std::uint32_t slot = allocRec();
    Rec &rec = arena_[slot];
    rec.when = when;
    rec.seq = next_seq_++;
    rec.cb = std::move(cb);
    rec.priority = priority;
    rec.live = true;
    linkIntoBucket(slot);
    ++live_;

    EventId id = (static_cast<EventId>(slot) + 1) << 32 | arena_[slot].gen;
    maybeResize();
    return id;
}

EventQueue::EventId
EventQueue::scheduleCall(Tick when, EventCallback::PodFn fn, void *ctx,
                         std::uint64_t arg)
{
    if (when < cur_tick_) {
        panic("event scheduled in the past (when=%llu cur=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(cur_tick_));
    }

    std::uint32_t slot = allocRec();
    Rec &rec = arena_[slot];
    rec.when = when;
    rec.seq = next_seq_++;
    rec.cb.emplacePod(fn, ctx, arg);
    rec.priority = defaultPriority;
    rec.live = true;
    linkIntoBucket(slot);
    ++live_;

    EventId id = (static_cast<EventId>(slot) + 1) << 32 | arena_[slot].gen;
    maybeResize();
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return false;
    std::uint64_t slot64 = (id >> 32) - 1;
    std::uint32_t gen = static_cast<std::uint32_t>(id);
    if (slot64 >= arena_.size())
        return false;
    std::uint32_t slot = static_cast<std::uint32_t>(slot64);
    Rec &rec = arena_[slot];
    if (!rec.live || rec.gen != gen)
        return false;

    // Unlink from the (short) bucket chain.
    std::uint32_t *link = &buckets_[bucketOf(rec.when)];
    while (*link != slot)
        link = &arena_[*link].next;
    *link = rec.next;

    freeRec(slot);
    --live_;
    return true;
}

std::uint32_t
EventQueue::findNext(std::uint32_t *prev_out, std::size_t *bucket_out) const
{
    if (live_ == 0)
        return npos;

    // Lap scan: walk buckets forward from the current epoch; the first
    // bucket whose head falls inside its current-lap window holds the
    // earliest event (heads are bucket minima, one epoch maps to
    // exactly one bucket).
    const std::size_t nbuckets = buckets_.size();
    const std::uint64_t cur_epoch = cur_tick_ >> log2_width_;
    for (std::size_t k = 0; k < nbuckets; ++k) {
        const std::uint64_t epoch = cur_epoch + k;
        const std::size_t b =
            static_cast<std::size_t>(epoch) & (nbuckets - 1);
        const std::uint32_t head = buckets_[b];
        if (head != npos && (arena_[head].when >> log2_width_) == epoch) {
            *prev_out = npos;
            *bucket_out = b;
            return head;
        }
    }

    // Everything lies at least a full lap ahead: take the minimum over
    // all bucket heads directly.
    std::uint32_t best = npos;
    std::size_t best_bucket = 0;
    for (std::size_t b = 0; b < nbuckets; ++b) {
        const std::uint32_t head = buckets_[b];
        if (head == npos)
            continue;
        if (best == npos || firesBefore(arena_[head], arena_[best])) {
            best = head;
            best_bucket = b;
        }
    }
    *prev_out = npos;
    *bucket_out = best_bucket;
    return best;
}

void
EventQueue::fire(std::uint32_t slot, std::uint32_t prev, std::size_t bucket)
{
    // Unlink; located records are always chain heads today, but accept
    // any predecessor so fire() stays correct if that changes.
    if (prev == npos)
        buckets_[bucket] = arena_[slot].next;
    else
        arena_[prev].next = arena_[slot].next;

    const Tick when = arena_[slot].when;
    Callback cb = std::move(arena_[slot].cb);
    freeRec(slot);
    --live_;

    cur_tick_ = when;
    ++executed_;
    // The callback may schedule new events and reallocate the arena;
    // no references into it may be held across this call.
    cb();
}

bool
EventQueue::runOne()
{
    std::uint32_t prev = npos;
    std::size_t bucket = 0;
    std::uint32_t slot = findNext(&prev, &bucket);
    if (slot == npos)
        return false;
    fire(slot, prev, bucket);
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    for (;;) {
        std::uint32_t prev = npos;
        std::size_t bucket = 0;
        std::uint32_t slot = findNext(&prev, &bucket);
        if (slot == npos || arena_[slot].when > limit)
            break;
        fire(slot, prev, bucket);
        ++count;
    }
    return count;
}

void
EventQueue::maybeResize()
{
    const std::size_t nbuckets = buckets_.size();
    if (live_ > nbuckets * 2)
        rebuild(nbuckets * 2);
    else if (nbuckets > initialBuckets && live_ < nbuckets / 8)
        rebuild(nbuckets / 2);
}

void
EventQueue::rebuild(std::size_t nbuckets)
{
    // Re-derive the bucket width from the live span so that the
    // average occupancy stays O(1): width = span / count, rounded to a
    // power of two.  Deterministic -- a function of queue contents
    // only.
    Tick min_when = maxTick;
    Tick max_when = 0;
    for (const Rec &rec : arena_) {
        if (!rec.live)
            continue;
        min_when = std::min(min_when, rec.when);
        max_when = std::max(max_when, rec.when);
    }
    if (live_ > 0) {
        const Tick span = max_when - min_when;
        const Tick per_bucket = span / live_ + 1;
        log2_width_ = std::min(
            maxLog2Width,
            static_cast<unsigned>(std::bit_width(per_bucket) - 1));
    }

    buckets_.assign(nbuckets, npos);
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(arena_.size()); ++slot) {
        if (arena_[slot].live)
            linkIntoBucket(slot);
    }
}

void
EventQueue::reset()
{
    arena_.clear();
    free_head_ = npos;
    buckets_.assign(initialBuckets, npos);
    log2_width_ = initialLog2Width;
    live_ = 0;
    cur_tick_ = 0;
    next_seq_ = 1;
    executed_ = 0;
}

} // namespace uvmsim
