/**
 * @file
 * Minimal command-line option parsing shared by the bench and example
 * binaries.
 *
 * Supported syntax: "--name=value" and bare "--flag" (which reads as
 * boolean true).  Anything not starting with "--" is collected as a
 * positional argument.  Unknown options are allowed: harnesses query
 * only the names they understand.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uvmsim
{

/** Parsed command-line options. */
class Options
{
  public:
    Options() = default;

    /** Parse argv; never throws, malformed numerics fatal() on access. */
    Options(int argc, const char *const *argv);

    /** True if --name or --name=value was given. */
    bool has(const std::string &name) const;

    /** String value; the default when absent. */
    std::string get(const std::string &name,
                    const std::string &def = "") const;

    /** Unsigned integer value; fatal() if present but unparsable. */
    std::uint64_t getUint(const std::string &name, std::uint64_t def) const;

    /** Floating-point value; fatal() if present but unparsable. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean value: absent => def; bare flag or true/1/yes => true. */
    bool getBool(const std::string &name, bool def = false) const;

    /** Positional (non --) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /**
     * Parse a comma-separated list value into its elements, e.g.
     * --benchmarks=bfs,nw,srad.  Returns def_list when absent.
     */
    std::vector<std::string>
    getList(const std::string &name,
            const std::vector<std::string> &def_list) const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace uvmsim
