/**
 * @file
 * Status and error reporting helpers, following the gem5 idiom.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in
 *             uvmsim itself).  Aborts, so a core dump / debugger catch
 *             is possible.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, impossible parameters).  Exits with a
 *             non-zero status.
 * warn()   -- something is modelled approximately; results may still be
 *             usable.
 * inform() -- purely informational status output.
 *
 * Debug tracing is controlled by named flags (e.g. "GMMU", "PCIe"),
 * enabled programmatically or via the UVMSIM_DEBUG environment variable
 * (comma-separated list of flags, or "All").
 */

#pragma once

#include <mutex>
#include <string>

namespace uvmsim
{

/**
 * Mutex serializing human-facing stderr output.  Every reporting
 * helper in this file locks it around its write so lines from
 * parallel simulation runs (see api/run_executor.hh) never interleave
 * mid-line; code emitting its own multi-part progress lines to stderr
 * should lock it too.
 */
std::mutex &outputMutex();

/**
 * True when the calling process is a fork()ed child of the process
 * that loaded this library (detected via a pid captured before
 * main()).  fatal() uses this to die through _Exit in workers so a
 * child never re-flushes stdio buffers inherited from its parent or
 * runs the parent's atexit/static-destructor state; fork orchestrators
 * (tools/uvmsim_sweep) rely on the same guarantee.
 */
bool inForkedChild();

/** Print an error describing a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error describing a user/configuration problem and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about approximate or suspicious behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

namespace debug
{

/** Enable trace output for a named debug flag ("All" enables all). */
void enableFlag(const std::string &flag);

/** Disable trace output for a named debug flag. */
void disableFlag(const std::string &flag);

/** Return true if the given debug flag is currently enabled. */
bool flagEnabled(const std::string &flag);

/** Remove all enabled flags (including any set from the environment). */
void clearFlags();

/**
 * Emit one trace line, prefixed by the flag name, if the flag is
 * enabled.  Callers normally use the DTRACE macro below so the
 * formatting arguments are not evaluated when tracing is off.
 */
void tracePrintf(const std::string &flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace debug

/** Trace macro: DTRACE("GMMU", "fault at page %lu", page). */
#define DTRACE(flag, ...)                                                   \
    do {                                                                    \
        if (::uvmsim::debug::flagEnabled(flag))                             \
            ::uvmsim::debug::tracePrintf(flag, __VA_ARGS__);                \
    } while (0)

} // namespace uvmsim
