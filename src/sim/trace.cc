#include "trace.hh"

#include <cstdio>

#include "sim/atomic_file.hh"
#include "sim/logging.hh"

namespace uvmsim::trace
{

namespace
{

struct CategoryEntry
{
    const char *name;
    Category category;
};

constexpr CategoryEntry categoryTable[] = {
    {"fault", Category::fault},         {"prefetch", Category::prefetch},
    {"migration", Category::migration}, {"eviction", Category::eviction},
    {"pcie", Category::pcie},           {"kernel", Category::kernel},
};

/** Ticks (ps) to the Chrome trace's microsecond timebase, exactly. */
void
appendMicros(std::string &out, Tick t)
{
    // Integral microseconds plus the sub-microsecond picosecond
    // remainder, printed with fixed width so output is deterministic
    // and round-trips the full tick resolution.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / oneMicrosecond),
                  static_cast<unsigned long long>(t % oneMicrosecond));
    out += buf;
}

} // namespace

unsigned
parseSpec(const std::string &spec)
{
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        if (token == "all") {
            mask |= allCategories;
            continue;
        }
        bool known = false;
        for (const CategoryEntry &entry : categoryTable) {
            if (token == entry.name) {
                mask |= static_cast<unsigned>(entry.category);
                known = true;
                break;
            }
        }
        if (!known) {
            fatal("unknown trace category '%s' (all|fault|prefetch|"
                  "migration|eviction|pcie|kernel)",
                  token.c_str());
        }
    }
    return mask;
}

const char *
categoryName(Category c)
{
    for (const CategoryEntry &entry : categoryTable) {
        if (entry.category == c)
            return entry.name;
    }
    return "unknown";
}

void
Tracer::addSink(TraceSink *sink)
{
    if (!sink)
        panic("Tracer::addSink(nullptr)");
    sinks_.push_back(sink);
}

void
Tracer::finish(Tick end)
{
    for (TraceSink *sink : sinks_)
        sink->finish(end);
}

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : path_(path), tmp_path_(atomicTempPath(path))
{
    // Stream into a temp sibling; finish() renames it onto path_, so
    // an interrupted run never leaves a truncated trace behind.
    out_.open(tmp_path_, std::ios::out | std::ios::trunc);
    if (!out_)
        fatal("cannot open trace output file '%s'", tmp_path_.c_str());
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    writeThreadNames();
}

ChromeTraceSink::~ChromeTraceSink()
{
    // A sink destroyed without finish() still leaves valid JSON
    // behind, so aborted runs remain loadable.
    if (!finished_)
        finish(0);
}

void
ChromeTraceSink::writeThreadNames()
{
    // One Chrome "thread" lane per category, labelled up front.
    bool first = true;
    for (const CategoryEntry &entry : categoryTable) {
        if (!first)
            out_ << ',';
        first = false;
        out_ << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
             << "\"tid\":" << static_cast<unsigned>(entry.category)
             << ",\"args\":{\"name\":\"" << entry.name << "\"}}";
    }
}

void
ChromeTraceSink::record(const Event &event)
{
    if (finished_)
        panic("ChromeTraceSink::record after finish");

    std::string line = ",\n{\"name\":\"";
    line += event.name;
    line += "\",\"cat\":\"";
    line += categoryName(event.category);
    line += "\",\"ph\":\"";
    line += event.duration > 0 ? 'X' : 'i';
    line += "\",\"ts\":";
    appendMicros(line, event.start);
    if (event.duration > 0) {
        line += ",\"dur\":";
        appendMicros(line, event.duration);
    } else {
        // Instant events are scoped to the whole process.
        line += ",\"s\":\"p\"";
    }
    line += ",\"pid\":0,\"tid\":";
    line += std::to_string(static_cast<unsigned>(event.category));
    line += ",\"args\":{\"pages\":";
    line += std::to_string(event.pages);
    line += ",\"bytes\":";
    line += std::to_string(event.bytes);
    line += ",\"value\":";
    line += std::to_string(event.value);
    line += ",\"aux\":";
    line += std::to_string(event.aux);
    line += ",\"tenant\":";
    line += std::to_string(event.tenant);
    line += "}}";
    out_ << line;
    ++events_;
}

void
ChromeTraceSink::finish(Tick end)
{
    if (finished_)
        return;
    finished_ = true;
    out_ << "\n],\"otherData\":{\"simEndUs\":\"";
    std::string tail;
    appendMicros(tail, end);
    out_ << tail << "\"}}\n";
    out_.close();
    if (!out_)
        fatal("error writing trace output file '%s'", tmp_path_.c_str());
    publishTempFile(tmp_path_, path_);
}

} // namespace uvmsim::trace
