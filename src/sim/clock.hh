/**
 * @file
 * Clock-domain helper mapping between cycles and ticks.
 *
 * Components that think in cycles (the SMs, the page-table walker) hold
 * a Clock describing their domain and convert at the boundary to the
 * picosecond ticks used by the EventQueue.
 */

#pragma once

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace uvmsim
{

/** A fixed-frequency clock domain. */
class Clock
{
  public:
    /** Construct from a period in ticks (picoseconds). */
    explicit Clock(Tick period)
        : period_(period)
    {
        if (period_ == 0)
            panic("Clock constructed with zero period");
    }

    /** Construct a clock from a frequency in MHz. */
    static Clock
    fromMHz(double mhz)
    {
        if (mhz <= 0.0)
            panic("Clock::fromMHz requires a positive frequency");
        return Clock(periodFromMHz(mhz));
    }

    /** The clock period in ticks. */
    Tick period() const { return period_; }

    /** The clock frequency in Hz. */
    double
    frequencyHz() const
    {
        return static_cast<double>(oneSecond) / static_cast<double>(period_);
    }

    /** Convert a cycle count in this domain to a tick duration. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** Convert a tick duration to whole elapsed cycles (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

    /**
     * The first clock edge at or after the given tick.  Useful when a
     * component must act on cycle boundaries.
     */
    Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % period_;
        return rem == 0 ? t : t + (period_ - rem);
    }

  private:
    Tick period_;
};

} // namespace uvmsim
