#include "stats.hh"

#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace uvmsim::stats
{

std::string
renderValue(double v)
{
    std::ostringstream oss;
    if (std::floor(v) == v && std::abs(v) < 1e15) {
        oss << static_cast<long long>(v);
    } else {
        oss << std::setprecision(std::numeric_limits<double>::max_digits10)
            << v;
    }
    return oss.str();
}

std::string
Stat::render() const
{
    return renderValue(value());
}

std::string
Counter::render() const
{
    return std::to_string(value_);
}

Histogram::Histogram(std::string name, std::string desc, double bucket_lo,
                     double bucket_width, std::size_t num_buckets)
    : Stat(std::move(name), std::move(desc)),
      lo_(bucket_lo),
      width_(bucket_width)
{
    if (bucket_width <= 0.0)
        panic("Histogram %s: bucket width must be positive", this->name().c_str());
    if (num_buckets == 0)
        panic("Histogram %s: need at least one bucket", this->name().c_str());
    buckets_.assign(num_buckets, 0);
}

void
Histogram::sample(double v)
{
    if (samples_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++samples_;
    sum_ += v;

    if (v < lo_) {
        ++underflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= buckets_.size()) {
        // The range is top-edge inclusive: a sample exactly at
        // lo + width * num_buckets belongs to the last bucket (a
        // maximum-size 2MB transfer is a legal size, not overflow).
        const double hi =
            lo_ + width_ * static_cast<double>(buckets_.size());
        if (v > hi) {
            ++overflow_;
            return;
        }
        idx = buckets_.size() - 1;
    }
    ++buckets_[idx];
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    underflow_ = overflow_ = samples_ = 0;
    sum_ = min_ = max_ = 0.0;
}

std::string
Histogram::render() const
{
    std::ostringstream oss;
    oss << "samples=" << samples_ << " mean=" << std::setprecision(6)
        << mean() << " min=" << minSample() << " max=" << maxSample();
    return oss.str();
}

void
StatRegistry::add(Stat *stat)
{
    if (!stat)
        panic("StatRegistry::add(nullptr)");
    auto [it, inserted] = stats_.emplace(stat->name(), stat);
    (void)it;
    if (!inserted)
        panic("duplicate stat name '%s'", stat->name().c_str());
}

void
StatRegistry::remove(const std::string &name)
{
    stats_.erase(name);
}

Stat *
StatRegistry::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
}

Stat &
StatRegistry::at(const std::string &name) const
{
    Stat *s = find(name);
    if (!s)
        panic("unknown stat '%s'", name.c_str());
    return *s;
}

std::vector<Stat *>
StatRegistry::all() const
{
    std::vector<Stat *> out;
    out.reserve(stats_.size());
    for (const auto &[name, stat] : stats_)
        out.push_back(stat);
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    std::size_t widest = 0;
    for (const auto &[name, stat] : stats_)
        widest = std::max(widest, name.size());

    for (const auto &[name, stat] : stats_) {
        os << std::left << std::setw(static_cast<int>(widest) + 2) << name
           << std::setw(24) << stat->render() << "# " << stat->description()
           << '\n';
    }
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &[name, stat] : stats_)
        os << name << ',' << renderValue(stat->value()) << '\n';
}

} // namespace uvmsim::stats
