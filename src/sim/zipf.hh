/**
 * @file
 * Deterministic Zipfian sampler.
 *
 * The standard Gray et al. ("Quickly Generating Billion-Record
 * Synthetic Databases") rejection-free construction: O(n) setup to
 * compute the harmonic normalizer, O(1) per draw.  Used by the
 * database buffer-pool workload class and the fuzz generator's
 * skewed access pattern, with all randomness drawn from the
 * simulator's Rng so runs stay reproducible from their seed.
 */

#pragma once

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace uvmsim
{

/** Draws ranks in [0, n) with P(rank) proportional to 1/(rank+1)^theta. */
class Zipfian
{
  public:
    /**
     * @param n     Number of items; must be > 0.
     * @param theta Skew in [0, 1); 0.99 is the YCSB default, ~0.86
     *              matches TPC-C's customer skew.
     */
    explicit Zipfian(std::uint64_t n, double theta = 0.99)
        : n_(n),
          theta_(theta)
    {
        if (n == 0)
            panic("Zipfian over zero items");
        zetan_ = zeta(n, theta);
        const double zeta2 = zeta(n < 2 ? n : 2, theta);
        alpha_ = 1.0 / (1.0 - theta);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n),
                               1.0 - theta)) /
               (1.0 - zeta2 / zetan_);
    }

    /** Sample one rank; 0 is the hottest item. */
    std::uint64_t
    draw(Rng &rng) const
    {
        if (n_ == 1)
            return 0;
        const double u = rng.real();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        const auto rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= n_ ? n_ - 1 : rank;
    }

    std::uint64_t items() const { return n_; }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

} // namespace uvmsim
