#include "options.hh"

#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"

namespace uvmsim
{

Options::Options(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::size_t eq = body.find('=');
        std::string name =
            eq == std::string::npos ? body : body.substr(0, eq);
        if (name.empty())
            fatal("malformed option '%s'", arg.c_str());
        // Duplicates are almost always a typo in a long command line;
        // silently keeping the last one hides it.
        if (values_.count(name))
            fatal("option --%s given more than once", name.c_str());
        values_[name] =
            eq == std::string::npos ? "true" : body.substr(eq + 1);
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Options::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::uint64_t
Options::getUint(const std::string &name, std::uint64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &text = it->second;
    // strtoull happily wraps "-5" to a huge value and saturates on
    // overflow; both must be rejected, as must an empty value.
    if (text.empty() || text[0] == '-' || text[0] == '+')
        fatal("option --%s expects an unsigned integer, got '%s'",
              name.c_str(), text.c_str());
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
    if (!end || end == text.c_str() || *end != '\0' || errno == ERANGE)
        fatal("option --%s expects an unsigned integer, got '%s'",
              name.c_str(), text.c_str());
    return v;
}

double
Options::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &text = it->second;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (!end || end == text.c_str() || *end != '\0' || errno == ERANGE)
        fatal("option --%s expects a number, got '%s'", name.c_str(),
              text.c_str());
    return v;
}

bool
Options::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("option --%s expects a boolean, got '%s'", name.c_str(), v.c_str());
}

std::vector<std::string>
Options::getList(const std::string &name,
                 const std::vector<std::string> &def_list) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def_list;
    std::vector<std::string> out;
    const std::string &spec = it->second;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(start, comma - start);
        if (!item.empty())
            out.push_back(item);
        start = comma + 1;
    }
    return out;
}

} // namespace uvmsim
