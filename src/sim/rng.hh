/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in the simulator (the random prefetcher, the
 * random eviction policy, workload irregularity) draws from instances of
 * this generator so that a run is exactly reproducible from its seed.
 * The algorithm is xorshift64*, which is fast, has a 2^64-1 period and
 * passes the statistical tests that matter at simulation scale.
 */

#pragma once

#include <cstdint>

#include "sim/logging.hh"

namespace uvmsim
{

/** A small deterministic xorshift64* PRNG. */
class Rng
{
  public:
    /** Construct with a seed; zero seeds are remapped (xorshift needs
     *  non-zero state). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound == 0");
        // Rejection sampling to avoid modulo bias for large bounds.
        const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
        std::uint64_t v = next();
        while (v >= limit)
            v = next();
        return v % bound;
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi)
            panic("Rng::inRange called with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        // 53 random mantissa bits.
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** Derive an independent child generator (for per-component seeds). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    std::uint64_t state_;
};

} // namespace uvmsim
