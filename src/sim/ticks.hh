/**
 * @file
 * Fundamental simulated-time types and unit helpers.
 *
 * Simulated time is measured in Ticks, where one tick is one picosecond.
 * This matches the gem5 convention and lets heterogeneous clock domains
 * (the 1481 MHz GPU core clock, the PCI-e link, microsecond-scale driver
 * latencies) compose without accumulating rounding error.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace uvmsim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** The maximum representable tick; used as "never" / "no limit". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** One picosecond expressed in ticks (the base unit). */
constexpr Tick onePicosecond = 1;
/** One nanosecond expressed in ticks. */
constexpr Tick oneNanosecond = 1000 * onePicosecond;
/** One microsecond expressed in ticks. */
constexpr Tick oneMicrosecond = 1000 * oneNanosecond;
/** One millisecond expressed in ticks. */
constexpr Tick oneMillisecond = 1000 * oneMicrosecond;
/** One second expressed in ticks. */
constexpr Tick oneSecond = 1000 * oneMillisecond;

/** Convert a tick count to (fractional) nanoseconds. */
constexpr double
ticksToNanoseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneNanosecond);
}

/** Convert a tick count to (fractional) microseconds. */
constexpr double
ticksToMicroseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneMicrosecond);
}

/** Convert a tick count to (fractional) milliseconds. */
constexpr double
ticksToMilliseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneMillisecond);
}

/** Convert a tick count to (fractional) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSecond);
}

/** Convert whole nanoseconds to ticks. */
constexpr Tick
nanoseconds(std::uint64_t ns)
{
    return ns * oneNanosecond;
}

/** Convert whole microseconds to ticks. */
constexpr Tick
microseconds(std::uint64_t us)
{
    return us * oneMicrosecond;
}

/** Convert whole milliseconds to ticks. */
constexpr Tick
milliseconds(std::uint64_t ms)
{
    return ms * oneMillisecond;
}

/**
 * Convert a frequency in MHz to the corresponding clock period in ticks,
 * rounded to the nearest picosecond.
 */
constexpr Tick
periodFromMHz(double mhz)
{
    // period [ps] = 1e6 / f[MHz]
    return static_cast<Tick>(1.0e6 / mhz + 0.5);
}

/** Sizes, in bytes, of the units the paper reasons in. */
constexpr std::uint64_t sizeKiB = 1024;
constexpr std::uint64_t sizeMiB = 1024 * sizeKiB;
constexpr std::uint64_t sizeGiB = 1024 * sizeMiB;

/** Convert KiB to bytes. */
constexpr std::uint64_t
kib(std::uint64_t n)
{
    return n * sizeKiB;
}

/** Convert MiB to bytes. */
constexpr std::uint64_t
mib(std::uint64_t n)
{
    return n * sizeMiB;
}

} // namespace uvmsim
