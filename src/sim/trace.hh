/**
 * @file
 * Event tracing: the simulation observability substrate.
 *
 * The paper's argument is temporal -- fault batches, prefetch
 * balancing, eviction thrashing and PCI-e bandwidth collapse under
 * over-subscription are all *interplays over time* -- but aggregate
 * end-of-run statistics flatten that structure away.  This layer lets
 * every component publish its lifecycle as typed events:
 *
 *   - the GMMU fault path (raise, MSHR merge, service window,
 *     prefetch decision, migration start/arrival),
 *   - the eviction path (victim selection, drain, write-back),
 *   - the PCI-e link (per-transfer start/duration with queue depth),
 *   - kernel launch boundaries.
 *
 * Events flow through a Tracer into any number of TraceSinks.  Two
 * sinks ship with the simulator: analysis::EpochTimeline folds events
 * into fixed-interval time-series (faults/epoch, migrated bytes/epoch,
 * achieved PCI-e GB/s, resident footprint...) and ChromeTraceSink
 * exports the Chrome trace_event JSON format, viewable directly in
 * chrome://tracing or https://ui.perfetto.dev.
 *
 * Tracing is strictly opt-in: components hold a `Tracer *` that is
 * null by default, and every emission site is guarded by that null
 * check, so a run without --trace pays one predicted-not-taken branch
 * per site and nothing else.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace uvmsim::trace
{

/** Event categories, selectable via the --trace=<spec> mask. */
enum class Category : unsigned
{
    fault = 1u << 0,     //!< Far-fault raise/merge/service windows.
    prefetch = 1u << 1,  //!< Prefetcher migration-set decisions.
    migration = 1u << 2, //!< Migration start / arrival.
    eviction = 1u << 3,  //!< Victim selection / drain / write-back.
    pcie = 1u << 4,      //!< Individual link transfers.
    kernel = 1u << 5,    //!< Kernel launch boundaries.
};

/** Bitwise-or of every category. */
constexpr unsigned allCategories = 0x3f;

/**
 * Parse a --trace specification: "all" or a comma-separated list of
 * category names (fault,prefetch,migration,eviction,pcie,kernel).
 * fatal()s on an unknown name; an empty spec parses to 0 (disabled).
 */
unsigned parseSpec(const std::string &spec);

/** Human name of one category (for the Chrome trace "cat" field). */
const char *categoryName(Category c);

/** What an event is, machine-readably (sinks switch on this). */
enum class Kind
{
    faultRaised,      //!< Primary far-fault entered the fault queue.
    faultMerged,      //!< Fault merged onto an in-flight MSHR entry.
    faultService,     //!< One fault-engine service window (has duration).
    prefetchDecision, //!< Prefetcher chose a migration set.
    migrationStart,   //!< Migration scheduled onto the link.
    migrationArrived, //!< Migration landed; PTEs validated.
    userPrefetch,     //!< User-directed prefetch batch scheduled.
    evictionSelect,   //!< Policy picked a victim set.
    evictionDrain,    //!< Victims invalidated and freed/written back.
    oversubscribed,   //!< The over-subscription latch tripped.
    pcieTransfer,     //!< One link transfer occupying the channel.
    kernelRun,        //!< One kernel execution (has duration).
};

/** One trace event.  Instant when duration == 0. */
struct Event
{
    Kind kind;
    Category category;
    /** Static display name; must outlive the sinks (string literal). */
    const char *name;
    /** Event start time. */
    Tick start = 0;
    /** Duration; 0 renders as an instant event. */
    Tick duration = 0;
    /** Number of 4KB pages involved (0 when not applicable). */
    std::uint64_t pages = 0;
    /** Bytes moved (0 when not applicable). */
    std::uint64_t bytes = 0;
    /**
     * Kind-specific detail: the page number for fault events, the
     * channel queue depth for pcieTransfer (transfers already
     * occupying or waiting on the channel when this one was
     * scheduled), the kernel index for kernelRun, 0 = h2d / 1 = d2h
     * in `aux` below.
     */
    std::uint64_t value = 0;
    /** Secondary detail (pcieTransfer: 0 = h2d, 1 = d2h). */
    std::uint64_t aux = 0;
    /**
     * Tenant the event is attributed to: the subject page's owner for
     * fault/prefetch/migration/eviction events, the launching stream
     * for kernelRun, the latching tenant for oversubscribed.  Always
     * 0 on single-tenant runs and for pcieTransfer (the link is
     * shared).
     */
    std::uint32_t tenant = 0;
};

/** Where events go.  Implementations must not outlive their writers. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Fold in one event.  Called in simulation order. */
    virtual void record(const Event &event) = 0;

    /** The run ended at `end`; flush any buffered output. */
    virtual void finish(Tick end) { (void)end; }
};

/**
 * The per-run event router: applies the category mask and fans
 * accepted events out to every attached sink.  Components hold a
 * `Tracer *` (null = tracing disabled) and guard emissions with it.
 */
class Tracer
{
  public:
    /** @param category_mask Bitwise-or of accepted Category bits. */
    explicit Tracer(unsigned category_mask)
        : mask_(category_mask)
    {}

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Whether a category is selected (cheap pre-check for callers
     *  that would otherwise assemble an expensive event). */
    bool
    wants(Category c) const
    {
        return (mask_ & static_cast<unsigned>(c)) != 0;
    }

    /** Attach a sink; the caller keeps ownership. */
    void addSink(TraceSink *sink);

    /** Route one event to every sink (dropped if masked out). */
    void
    record(const Event &event)
    {
        if (!wants(event.category))
            return;
        for (TraceSink *sink : sinks_)
            sink->record(event);
    }

    /** Tell every sink the run is over. */
    void finish(Tick end);

  private:
    unsigned mask_;
    std::vector<TraceSink *> sinks_;
};

/**
 * Streams events as Chrome trace_event JSON ("X" complete events and
 * "i" instants on one thread lane per category), loadable in
 * chrome://tracing and Perfetto.  Output is written incrementally so
 * memory stays O(1) in the event count; finish() writes the footer
 * that makes the file well-formed JSON.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /**
     * Streams into a temp sibling of `path`; finish() (or the
     * destructor) atomically renames it into place, so `path` is only
     * ever a complete, loadable JSON document.  fatal()s if the temp
     * file cannot be opened.
     */
    explicit ChromeTraceSink(const std::string &path);

    ~ChromeTraceSink() override;

    void record(const Event &event) override;
    void finish(Tick end) override;

    /** Number of events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    void writeThreadNames();

    std::ofstream out_;
    std::string path_;
    std::string tmp_path_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

} // namespace uvmsim::trace
