/**
 * @file
 * The discrete-event simulation kernel.
 *
 * Every timed behaviour in the simulator -- a warp finishing a compute
 * burst, a PCI-e transfer completing, the GMMU finishing a fault-handling
 * window -- is an Event scheduled on the single global EventQueue owned
 * by the Simulator.  Events with equal timestamps are ordered by an
 * explicit priority and then by insertion order, so simulations are
 * fully deterministic.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/ticks.hh"

namespace uvmsim
{

/**
 * A time-ordered queue of callbacks.
 *
 * The queue advances simulated time: executing an event sets the current
 * tick to that event's timestamp.  Scheduling into the past is a
 * simulator bug and panics.
 */
class EventQueue
{
  public:
    /** Opaque handle identifying a scheduled event; 0 is never valid. */
    using EventId = std::uint64_t;

    /** The callable executed when an event fires. */
    using Callback = std::function<void()>;

    /** Handle value that never names a live event. */
    static constexpr EventId invalidEventId = 0;

    /** Default tie-break priority; lower runs first at equal ticks. */
    static constexpr int defaultPriority = 0;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when     Absolute firing time; must be >= curTick().
     * @param priority Tie-break among events at the same tick (lower
     *                 value fires first).
     * @param cb       Callback to run.
     * @return A handle usable with deschedule().
     */
    EventId schedule(Tick when, int priority, Callback cb);

    /** Schedule with the default priority. */
    EventId
    schedule(Tick when, Callback cb)
    {
        return schedule(when, defaultPriority, std::move(cb));
    }

    /** Schedule relative to the current tick. */
    EventId
    scheduleAfter(Tick delay, Callback cb)
    {
        return schedule(cur_tick_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event existed and was cancelled; false if it
     *         already fired or was already cancelled.
     */
    bool deschedule(EventId id);

    /** True if there is at least one live (non-cancelled) event. */
    bool empty() const { return callbacks_.empty(); }

    /** Number of live scheduled events. */
    std::size_t pending() const { return callbacks_.size(); }

    /** Total number of events executed since construction/reset. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Execute the single next live event, advancing time to it.
     *
     * @return true if an event was executed, false if the queue was
     *         empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next event lies beyond
     * the limit tick.
     *
     * @param limit Run no event scheduled strictly after this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Drop all events and reset time to zero. */
    void reset();

  private:
    /** Heap entry; callbacks live in callbacks_ so cancellation is O(1). */
    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
    };

    /** Ordering: earliest tick, then lowest priority, then FIFO by id. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_map<EventId, Callback> callbacks_;
    Tick cur_tick_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace uvmsim
