/**
 * @file
 * The discrete-event simulation kernel.
 *
 * Every timed behaviour in the simulator -- a warp finishing a compute
 * burst, a PCI-e transfer completing, the GMMU finishing a fault-handling
 * window -- is an Event scheduled on the single global EventQueue owned
 * by the Simulator.  Events with equal timestamps are ordered by an
 * explicit priority and then by insertion order, so simulations are
 * fully deterministic.
 *
 * The queue is a bucketed calendar queue (Brown, CACM'88): event
 * records are small POD-ish structs kept in a free-list arena, hashed
 * into time buckets of power-of-two width.  Scheduling performs no
 * heap allocation for the common simulator events -- callbacks whose
 * captured state fits EventCallback's inline buffer are stored in the
 * arena record itself, and the hottest call sites (SM issue/complete,
 * GMMU walks) use the raw function-pointer form, avoiding type-erased
 * dispatch machinery entirely.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace uvmsim
{

/**
 * A move-only callable with small-buffer storage, sized so every
 * per-access event closure in the simulator fits without touching the
 * heap.  Three storage forms, cheapest first:
 *
 *  - a raw function pointer plus (context, argument) words -- the
 *    "POD event" form the hot paths use;
 *  - any callable up to inlineBytes that is nothrow-move-constructible,
 *    stored inline;
 *  - anything bigger, boxed on the heap (rare; cold paths only).
 */
class EventCallback
{
  public:
    /** The raw-function form: fn(ctx, arg). */
    using PodFn = void (*)(void *ctx, std::uint64_t arg);

    /** Inline storage size; covers every hot-path closure. */
    static constexpr std::size_t inlineBytes = 48;

    EventCallback() noexcept : ops_(nullptr) {}

    /** POD event: direct function-pointer dispatch, no type erasure. */
    EventCallback(PodFn fn, void *ctx, std::uint64_t arg) noexcept
        : ops_(&pod_ops_)
    {
        ::new (static_cast<void *>(buf_)) PodThunk{fn, ctx, arg};
    }

    /** Wrap any callable; inline when it fits, heap-boxed otherwise. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fd = std::decay_t<F>;
        if constexpr (sizeof(Fd) <= inlineBytes &&
                      alignof(Fd) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fd>) {
            ::new (static_cast<void *>(buf_)) Fd(std::forward<F>(f));
            ops_ = &inline_ops_<Fd>;
        } else {
            *reinterpret_cast<Fd **>(buf_) =
                new Fd(std::forward<F>(f));
            ops_ = &heap_ops_<Fd>;
        }
    }

    EventCallback(EventCallback &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** Whether a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the held callable. */
    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** Drop the held callable. */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** Construct the POD form in place (no temporary, no relocation). */
    void
    emplacePod(PodFn fn, void *ctx, std::uint64_t arg) noexcept
    {
        reset();
        ::new (static_cast<void *>(buf_)) PodThunk{fn, ctx, arg};
        ops_ = &pod_ops_;
    }

  private:
    struct PodThunk
    {
        PodFn fn;
        void *ctx;
        std::uint64_t arg;
    };

    /** Manual vtable: one static table per stored type. */
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    static void
    podInvoke(void *storage)
    {
        auto *t = static_cast<PodThunk *>(storage);
        t->fn(t->ctx, t->arg);
    }

    static void
    podRelocate(void *dst, void *src) noexcept
    {
        std::memcpy(dst, src, sizeof(PodThunk));
    }

    static void podDestroy(void *) noexcept {}

    static constexpr Ops pod_ops_{podInvoke, podRelocate, podDestroy};

    template <typename Fd>
    static constexpr Ops inline_ops_{
        [](void *storage) { (*static_cast<Fd *>(storage))(); },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fd(std::move(*static_cast<Fd *>(src)));
            static_cast<Fd *>(src)->~Fd();
        },
        [](void *storage) noexcept { static_cast<Fd *>(storage)->~Fd(); },
    };

    template <typename Fd>
    static constexpr Ops heap_ops_{
        [](void *storage) { (**static_cast<Fd **>(storage))(); },
        [](void *dst, void *src) noexcept {
            std::memcpy(dst, src, sizeof(Fd *));
        },
        [](void *storage) noexcept { delete *static_cast<Fd **>(storage); },
    };

    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
    const Ops *ops_;
};

/**
 * A time-ordered calendar queue of callbacks.
 *
 * The queue advances simulated time: executing an event sets the current
 * tick to that event's timestamp.  Scheduling into the past is a
 * simulator bug and panics.
 */
class EventQueue
{
  public:
    /** Opaque handle identifying a scheduled event; 0 is never valid. */
    using EventId = std::uint64_t;

    /** The callable executed when an event fires. */
    using Callback = EventCallback;

    /** Handle value that never names a live event. */
    static constexpr EventId invalidEventId = 0;

    /** Default tie-break priority; lower runs first at equal ticks. */
    static constexpr int defaultPriority = 0;

    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when     Absolute firing time; must be >= curTick().
     * @param priority Tie-break among events at the same tick (lower
     *                 value fires first).
     * @param cb       Callback to run.
     * @return A handle usable with deschedule().
     */
    EventId schedule(Tick when, int priority, Callback cb);

    /** Schedule with the default priority. */
    EventId
    schedule(Tick when, Callback cb)
    {
        return schedule(when, defaultPriority, std::move(cb));
    }

    /** Schedule relative to the current tick. */
    EventId
    scheduleAfter(Tick delay, Callback cb)
    {
        return schedule(cur_tick_ + delay, std::move(cb));
    }

    /**
     * POD fast path: schedule fn(ctx, arg) at an absolute tick with
     * the default priority.  The thunk is built directly inside the
     * arena record -- no allocation, no type erasure, no relocation.
     */
    EventId scheduleCall(Tick when, EventCallback::PodFn fn, void *ctx,
                         std::uint64_t arg);

    /** POD fast path, relative to the current tick. */
    EventId
    scheduleCallAfter(Tick delay, EventCallback::PodFn fn, void *ctx,
                      std::uint64_t arg)
    {
        return scheduleCall(cur_tick_ + delay, fn, ctx, arg);
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event existed and was cancelled; false if it
     *         already fired or was already cancelled.
     */
    bool deschedule(EventId id);

    /** True if there is at least one live (non-cancelled) event. */
    bool empty() const { return live_ == 0; }

    /** Number of live scheduled events. */
    std::size_t pending() const { return live_; }

    /** Total number of events executed since construction/reset. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Execute the single next live event, advancing time to it.
     *
     * @return true if an event was executed, false if the queue was
     *         empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next event lies beyond
     * the limit tick.
     *
     * @param limit Run no event scheduled strictly after this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Drop all events and reset time to zero. */
    void reset();

    /** Calendar geometry, exposed for tests: bucket count. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Calendar geometry, exposed for tests: log2 of bucket width. */
    unsigned bucketWidthLog2() const { return log2_width_; }

  private:
    /** Sentinel index for "no record". */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /** One arena slot: an event record or a free-list link. */
    struct Rec
    {
        Tick when = 0;
        std::uint64_t seq = 0; //!< Insertion order, the final tie-break.
        Callback cb;
        std::uint32_t next = npos; //!< Bucket chain / free-list link.
        std::uint32_t gen = 0;     //!< Guards stale EventIds.
        int priority = 0;
        bool live = false;
    };

    /** Fires a strictly before b. */
    static bool
    firesBefore(const Rec &a, const Rec &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    std::uint32_t allocRec();
    void freeRec(std::uint32_t slot);

    /** The bucket a tick hashes to under the current geometry. */
    std::size_t
    bucketOf(Tick when) const
    {
        return static_cast<std::size_t>(when >> log2_width_) &
               (buckets_.size() - 1);
    }

    /** Sorted insert of a record into its bucket chain. */
    void linkIntoBucket(std::uint32_t slot);

    /**
     * Locate the earliest live record.
     * @return Slot index, or npos when empty; *prev_out gets the
     *         predecessor slot in the bucket chain (npos when head),
     *         *bucket_out the bucket index.
     */
    std::uint32_t findNext(std::uint32_t *prev_out,
                           std::size_t *bucket_out) const;

    /** Unlink a located record and run its callback. */
    void fire(std::uint32_t slot, std::uint32_t prev,
              std::size_t bucket);

    /** Grow/shrink the calendar to match the live event count. */
    void maybeResize();
    void rebuild(std::size_t nbuckets);

    std::vector<Rec> arena_;
    std::uint32_t free_head_ = npos;

    std::vector<std::uint32_t> buckets_; //!< Heads of sorted chains.
    unsigned log2_width_ = 10;           //!< Bucket width = 2^n ticks.

    std::size_t live_ = 0;
    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace uvmsim
