file(REMOVE_RECURSE
  "../bench/table1_pcie_bandwidth"
  "../bench/table1_pcie_bandwidth.pdb"
  "CMakeFiles/table1_pcie_bandwidth.dir/table1_pcie_bandwidth.cc.o"
  "CMakeFiles/table1_pcie_bandwidth.dir/table1_pcie_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pcie_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
