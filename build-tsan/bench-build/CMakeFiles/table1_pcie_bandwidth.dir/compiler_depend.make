# Empty compiler generated dependencies file for table1_pcie_bandwidth.
# This may be replaced when dependencies are built.
