# Empty dependencies file for ablation_prefetcher_baselines.
# This may be replaced when dependencies are built.
