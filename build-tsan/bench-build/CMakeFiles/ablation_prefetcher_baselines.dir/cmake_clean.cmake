file(REMOVE_RECURSE
  "../bench/ablation_prefetcher_baselines"
  "../bench/ablation_prefetcher_baselines.pdb"
  "CMakeFiles/ablation_prefetcher_baselines.dir/ablation_prefetcher_baselines.cc.o"
  "CMakeFiles/ablation_prefetcher_baselines.dir/ablation_prefetcher_baselines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetcher_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
