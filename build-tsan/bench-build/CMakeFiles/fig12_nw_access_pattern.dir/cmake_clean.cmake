file(REMOVE_RECURSE
  "../bench/fig12_nw_access_pattern"
  "../bench/fig12_nw_access_pattern.pdb"
  "CMakeFiles/fig12_nw_access_pattern.dir/fig12_nw_access_pattern.cc.o"
  "CMakeFiles/fig12_nw_access_pattern.dir/fig12_nw_access_pattern.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nw_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
