# Empty compiler generated dependencies file for fig12_nw_access_pattern.
# This may be replaced when dependencies are built.
