file(REMOVE_RECURSE
  "../bench/fig06_oversubscription_sensitivity"
  "../bench/fig06_oversubscription_sensitivity.pdb"
  "CMakeFiles/fig06_oversubscription_sensitivity.dir/fig06_oversubscription_sensitivity.cc.o"
  "CMakeFiles/fig06_oversubscription_sensitivity.dir/fig06_oversubscription_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_oversubscription_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
