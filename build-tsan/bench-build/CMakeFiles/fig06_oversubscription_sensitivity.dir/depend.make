# Empty dependencies file for fig06_oversubscription_sensitivity.
# This may be replaced when dependencies are built.
