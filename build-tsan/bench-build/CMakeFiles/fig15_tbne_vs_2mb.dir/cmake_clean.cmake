file(REMOVE_RECURSE
  "../bench/fig15_tbne_vs_2mb"
  "../bench/fig15_tbne_vs_2mb.pdb"
  "CMakeFiles/fig15_tbne_vs_2mb.dir/fig15_tbne_vs_2mb.cc.o"
  "CMakeFiles/fig15_tbne_vs_2mb.dir/fig15_tbne_vs_2mb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tbne_vs_2mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
