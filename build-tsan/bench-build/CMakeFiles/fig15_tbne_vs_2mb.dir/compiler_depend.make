# Empty compiler generated dependencies file for fig15_tbne_vs_2mb.
# This may be replaced when dependencies are built.
