file(REMOVE_RECURSE
  "../bench/fig10_pages_evicted"
  "../bench/fig10_pages_evicted.pdb"
  "CMakeFiles/fig10_pages_evicted.dir/fig10_pages_evicted.cc.o"
  "CMakeFiles/fig10_pages_evicted.dir/fig10_pages_evicted.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pages_evicted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
