# Empty dependencies file for fig10_pages_evicted.
# This may be replaced when dependencies are built.
