# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig03_prefetcher_kernel_time.
