# Empty dependencies file for fig03_prefetcher_kernel_time.
# This may be replaced when dependencies are built.
