file(REMOVE_RECURSE
  "../bench/fig03_prefetcher_kernel_time"
  "../bench/fig03_prefetcher_kernel_time.pdb"
  "CMakeFiles/fig03_prefetcher_kernel_time.dir/fig03_prefetcher_kernel_time.cc.o"
  "CMakeFiles/fig03_prefetcher_kernel_time.dir/fig03_prefetcher_kernel_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_prefetcher_kernel_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
