# Empty dependencies file for micro_components.
# This may be replaced when dependencies are built.
