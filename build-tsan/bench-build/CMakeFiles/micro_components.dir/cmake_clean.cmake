file(REMOVE_RECURSE
  "../bench/micro_components"
  "../bench/micro_components.pdb"
  "CMakeFiles/micro_components.dir/micro_components.cc.o"
  "CMakeFiles/micro_components.dir/micro_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
