# Empty compiler generated dependencies file for fig14_lru_reservation.
# This may be replaced when dependencies are built.
