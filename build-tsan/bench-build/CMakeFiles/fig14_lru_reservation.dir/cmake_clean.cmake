file(REMOVE_RECURSE
  "../bench/fig14_lru_reservation"
  "../bench/fig14_lru_reservation.pdb"
  "CMakeFiles/fig14_lru_reservation.dir/fig14_lru_reservation.cc.o"
  "CMakeFiles/fig14_lru_reservation.dir/fig14_lru_reservation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_lru_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
