file(REMOVE_RECURSE
  "../bench/fig16_thrashing"
  "../bench/fig16_thrashing.pdb"
  "CMakeFiles/fig16_thrashing.dir/fig16_thrashing.cc.o"
  "CMakeFiles/fig16_thrashing.dir/fig16_thrashing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
