# Empty compiler generated dependencies file for fig16_thrashing.
# This may be replaced when dependencies are built.
