file(REMOVE_RECURSE
  "../bench/ablation_gpu_model"
  "../bench/ablation_gpu_model.pdb"
  "CMakeFiles/ablation_gpu_model.dir/ablation_gpu_model.cc.o"
  "CMakeFiles/ablation_gpu_model.dir/ablation_gpu_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
