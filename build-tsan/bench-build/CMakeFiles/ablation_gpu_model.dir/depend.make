# Empty dependencies file for ablation_gpu_model.
# This may be replaced when dependencies are built.
