file(REMOVE_RECURSE
  "../bench/fig05_far_faults"
  "../bench/fig05_far_faults.pdb"
  "CMakeFiles/fig05_far_faults.dir/fig05_far_faults.cc.o"
  "CMakeFiles/fig05_far_faults.dir/fig05_far_faults.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_far_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
