# Empty compiler generated dependencies file for fig05_far_faults.
# This may be replaced when dependencies are built.
