file(REMOVE_RECURSE
  "../bench/fig13_tbn_oversubscription"
  "../bench/fig13_tbn_oversubscription.pdb"
  "CMakeFiles/fig13_tbn_oversubscription.dir/fig13_tbn_oversubscription.cc.o"
  "CMakeFiles/fig13_tbn_oversubscription.dir/fig13_tbn_oversubscription.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tbn_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
