# Empty dependencies file for fig13_tbn_oversubscription.
# This may be replaced when dependencies are built.
