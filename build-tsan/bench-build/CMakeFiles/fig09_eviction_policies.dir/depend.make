# Empty dependencies file for fig09_eviction_policies.
# This may be replaced when dependencies are built.
