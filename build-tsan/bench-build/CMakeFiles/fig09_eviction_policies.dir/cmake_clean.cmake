file(REMOVE_RECURSE
  "../bench/fig09_eviction_policies"
  "../bench/fig09_eviction_policies.pdb"
  "CMakeFiles/fig09_eviction_policies.dir/fig09_eviction_policies.cc.o"
  "CMakeFiles/fig09_eviction_policies.dir/fig09_eviction_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_eviction_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
