# Empty dependencies file for fig11_combined_policies.
# This may be replaced when dependencies are built.
