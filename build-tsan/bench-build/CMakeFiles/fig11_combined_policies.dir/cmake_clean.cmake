file(REMOVE_RECURSE
  "../bench/fig11_combined_policies"
  "../bench/fig11_combined_policies.pdb"
  "CMakeFiles/fig11_combined_policies.dir/fig11_combined_policies.cc.o"
  "CMakeFiles/fig11_combined_policies.dir/fig11_combined_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_combined_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
