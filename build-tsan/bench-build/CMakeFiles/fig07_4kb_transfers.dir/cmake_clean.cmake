file(REMOVE_RECURSE
  "../bench/fig07_4kb_transfers"
  "../bench/fig07_4kb_transfers.pdb"
  "CMakeFiles/fig07_4kb_transfers.dir/fig07_4kb_transfers.cc.o"
  "CMakeFiles/fig07_4kb_transfers.dir/fig07_4kb_transfers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_4kb_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
