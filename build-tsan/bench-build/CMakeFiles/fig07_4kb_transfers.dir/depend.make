# Empty dependencies file for fig07_4kb_transfers.
# This may be replaced when dependencies are built.
