# Empty compiler generated dependencies file for ablation_design_choices.
# This may be replaced when dependencies are built.
