file(REMOVE_RECURSE
  "../bench/ablation_design_choices"
  "../bench/ablation_design_choices.pdb"
  "CMakeFiles/ablation_design_choices.dir/ablation_design_choices.cc.o"
  "CMakeFiles/ablation_design_choices.dir/ablation_design_choices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
