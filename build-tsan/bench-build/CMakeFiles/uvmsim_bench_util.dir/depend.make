# Empty dependencies file for uvmsim_bench_util.
# This may be replaced when dependencies are built.
