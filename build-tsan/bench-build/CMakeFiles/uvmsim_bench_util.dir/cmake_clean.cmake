file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/uvmsim_bench_util.dir/bench_util.cc.o.d"
  "libuvmsim_bench_util.a"
  "libuvmsim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
