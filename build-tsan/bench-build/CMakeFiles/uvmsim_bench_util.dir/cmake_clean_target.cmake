file(REMOVE_RECURSE
  "libuvmsim_bench_util.a"
)
