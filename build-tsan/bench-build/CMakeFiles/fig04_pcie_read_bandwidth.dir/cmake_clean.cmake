file(REMOVE_RECURSE
  "../bench/fig04_pcie_read_bandwidth"
  "../bench/fig04_pcie_read_bandwidth.pdb"
  "CMakeFiles/fig04_pcie_read_bandwidth.dir/fig04_pcie_read_bandwidth.cc.o"
  "CMakeFiles/fig04_pcie_read_bandwidth.dir/fig04_pcie_read_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pcie_read_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
