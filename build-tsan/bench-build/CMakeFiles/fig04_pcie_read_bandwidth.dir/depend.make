# Empty dependencies file for fig04_pcie_read_bandwidth.
# This may be replaced when dependencies are built.
