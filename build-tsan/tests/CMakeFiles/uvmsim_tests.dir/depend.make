# Empty dependencies file for uvmsim_tests.
# This may be replaced when dependencies are built.
