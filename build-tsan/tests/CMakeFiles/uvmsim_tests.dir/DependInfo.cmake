
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/access_pattern_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/analysis/access_pattern_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/analysis/access_pattern_test.cc.o.d"
  "/root/repo/tests/api/run_executor_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/api/run_executor_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/api/run_executor_test.cc.o.d"
  "/root/repo/tests/bench/bench_util_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/bench/bench_util_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/bench/bench_util_test.cc.o.d"
  "/root/repo/tests/core/eviction_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/eviction_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/eviction_test.cc.o.d"
  "/root/repo/tests/core/extended_policies_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/extended_policies_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/extended_policies_test.cc.o.d"
  "/root/repo/tests/core/fault_engine_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/fault_engine_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/fault_engine_test.cc.o.d"
  "/root/repo/tests/core/gmmu_fuzz_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/gmmu_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/gmmu_fuzz_test.cc.o.d"
  "/root/repo/tests/core/gmmu_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/gmmu_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/gmmu_test.cc.o.d"
  "/root/repo/tests/core/hardening_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/hardening_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/hardening_test.cc.o.d"
  "/root/repo/tests/core/large_page_tree_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/large_page_tree_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/large_page_tree_test.cc.o.d"
  "/root/repo/tests/core/managed_space_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/managed_space_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/managed_space_test.cc.o.d"
  "/root/repo/tests/core/policies_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/policies_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/policies_test.cc.o.d"
  "/root/repo/tests/core/prefetcher_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/prefetcher_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/prefetcher_test.cc.o.d"
  "/root/repo/tests/core/residency_oracle_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/residency_oracle_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/residency_oracle_test.cc.o.d"
  "/root/repo/tests/core/residency_tracker_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/residency_tracker_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/residency_tracker_test.cc.o.d"
  "/root/repo/tests/core/tbn_sequences_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/tbn_sequences_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/tbn_sequences_test.cc.o.d"
  "/root/repo/tests/core/tree_property_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/tree_property_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/tree_property_test.cc.o.d"
  "/root/repo/tests/core/user_prefetch_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/user_prefetch_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/user_prefetch_test.cc.o.d"
  "/root/repo/tests/core/walker_mshr_limits_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/core/walker_mshr_limits_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/core/walker_mshr_limits_test.cc.o.d"
  "/root/repo/tests/gpu/dispatch_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/dispatch_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/dispatch_test.cc.o.d"
  "/root/repo/tests/gpu/gpu_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/gpu_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/gpu_test.cc.o.d"
  "/root/repo/tests/gpu/l2_dram_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/l2_dram_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/l2_dram_test.cc.o.d"
  "/root/repo/tests/gpu/sm_features_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/sm_features_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/gpu/sm_features_test.cc.o.d"
  "/root/repo/tests/integration/figure_shapes_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/integration/figure_shapes_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/integration/figure_shapes_test.cc.o.d"
  "/root/repo/tests/integration/golden_regression_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/integration/golden_regression_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/integration/golden_regression_test.cc.o.d"
  "/root/repo/tests/integration/parallel_determinism_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/integration/parallel_determinism_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/integration/parallel_determinism_test.cc.o.d"
  "/root/repo/tests/integration/policy_matrix_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/integration/policy_matrix_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/integration/policy_matrix_test.cc.o.d"
  "/root/repo/tests/integration/simulation_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/integration/simulation_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/integration/simulation_test.cc.o.d"
  "/root/repo/tests/interconnect/bandwidth_model_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/interconnect/bandwidth_model_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/interconnect/bandwidth_model_test.cc.o.d"
  "/root/repo/tests/interconnect/pcie_link_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/interconnect/pcie_link_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/interconnect/pcie_link_test.cc.o.d"
  "/root/repo/tests/mem/frame_allocator_mshr_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/mem/frame_allocator_mshr_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/mem/frame_allocator_mshr_test.cc.o.d"
  "/root/repo/tests/mem/page_table_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/mem/page_table_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/mem/page_table_test.cc.o.d"
  "/root/repo/tests/mem/tlb_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/mem/tlb_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/mem/tlb_test.cc.o.d"
  "/root/repo/tests/mem/types_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/mem/types_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/mem/types_test.cc.o.d"
  "/root/repo/tests/sim/clock_options_logging_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/sim/clock_options_logging_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/sim/clock_options_logging_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/rng_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/sim/rng_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/sim/rng_test.cc.o.d"
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/sim/stats_test.cc.o.d"
  "/root/repo/tests/sim/stress_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/sim/stress_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/sim/stress_test.cc.o.d"
  "/root/repo/tests/sim/ticks_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/sim/ticks_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/sim/ticks_test.cc.o.d"
  "/root/repo/tests/workloads/benchmark_specifics_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/workloads/benchmark_specifics_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/workloads/benchmark_specifics_test.cc.o.d"
  "/root/repo/tests/workloads/trace_file_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/workloads/trace_file_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/workloads/trace_file_test.cc.o.d"
  "/root/repo/tests/workloads/workload_test.cc" "tests/CMakeFiles/uvmsim_tests.dir/workloads/workload_test.cc.o" "gcc" "tests/CMakeFiles/uvmsim_tests.dir/workloads/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/bench-build/CMakeFiles/uvmsim_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/api/CMakeFiles/uvmsim_api.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/uvmsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/uvmsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/uvmsim_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interconnect/CMakeFiles/uvmsim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/uvmsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
