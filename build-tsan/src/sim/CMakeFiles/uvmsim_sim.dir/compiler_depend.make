# Empty compiler generated dependencies file for uvmsim_sim.
# This may be replaced when dependencies are built.
