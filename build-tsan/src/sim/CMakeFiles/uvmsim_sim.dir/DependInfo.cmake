
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/uvmsim_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/uvmsim_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/sim/CMakeFiles/uvmsim_sim.dir/logging.cc.o" "gcc" "src/sim/CMakeFiles/uvmsim_sim.dir/logging.cc.o.d"
  "/root/repo/src/sim/options.cc" "src/sim/CMakeFiles/uvmsim_sim.dir/options.cc.o" "gcc" "src/sim/CMakeFiles/uvmsim_sim.dir/options.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/uvmsim_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/uvmsim_sim.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
