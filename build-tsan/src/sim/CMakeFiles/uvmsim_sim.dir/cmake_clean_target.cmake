file(REMOVE_RECURSE
  "libuvmsim_sim.a"
)
