file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/uvmsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/uvmsim_sim.dir/logging.cc.o"
  "CMakeFiles/uvmsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/uvmsim_sim.dir/options.cc.o"
  "CMakeFiles/uvmsim_sim.dir/options.cc.o.d"
  "CMakeFiles/uvmsim_sim.dir/stats.cc.o"
  "CMakeFiles/uvmsim_sim.dir/stats.cc.o.d"
  "libuvmsim_sim.a"
  "libuvmsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
