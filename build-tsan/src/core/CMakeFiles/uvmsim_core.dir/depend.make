# Empty dependencies file for uvmsim_core.
# This may be replaced when dependencies are built.
