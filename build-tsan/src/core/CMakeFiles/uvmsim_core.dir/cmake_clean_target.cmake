file(REMOVE_RECURSE
  "libuvmsim_core.a"
)
