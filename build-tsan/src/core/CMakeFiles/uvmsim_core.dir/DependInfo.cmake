
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/eviction.cc" "src/core/CMakeFiles/uvmsim_core.dir/eviction.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/eviction.cc.o.d"
  "/root/repo/src/core/gmmu.cc" "src/core/CMakeFiles/uvmsim_core.dir/gmmu.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/gmmu.cc.o.d"
  "/root/repo/src/core/large_page_tree.cc" "src/core/CMakeFiles/uvmsim_core.dir/large_page_tree.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/large_page_tree.cc.o.d"
  "/root/repo/src/core/managed_space.cc" "src/core/CMakeFiles/uvmsim_core.dir/managed_space.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/managed_space.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/uvmsim_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/policies.cc.o.d"
  "/root/repo/src/core/prefetcher.cc" "src/core/CMakeFiles/uvmsim_core.dir/prefetcher.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/prefetcher.cc.o.d"
  "/root/repo/src/core/residency_tracker.cc" "src/core/CMakeFiles/uvmsim_core.dir/residency_tracker.cc.o" "gcc" "src/core/CMakeFiles/uvmsim_core.dir/residency_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interconnect/CMakeFiles/uvmsim_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
