file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_core.dir/eviction.cc.o"
  "CMakeFiles/uvmsim_core.dir/eviction.cc.o.d"
  "CMakeFiles/uvmsim_core.dir/gmmu.cc.o"
  "CMakeFiles/uvmsim_core.dir/gmmu.cc.o.d"
  "CMakeFiles/uvmsim_core.dir/large_page_tree.cc.o"
  "CMakeFiles/uvmsim_core.dir/large_page_tree.cc.o.d"
  "CMakeFiles/uvmsim_core.dir/managed_space.cc.o"
  "CMakeFiles/uvmsim_core.dir/managed_space.cc.o.d"
  "CMakeFiles/uvmsim_core.dir/policies.cc.o"
  "CMakeFiles/uvmsim_core.dir/policies.cc.o.d"
  "CMakeFiles/uvmsim_core.dir/prefetcher.cc.o"
  "CMakeFiles/uvmsim_core.dir/prefetcher.cc.o.d"
  "CMakeFiles/uvmsim_core.dir/residency_tracker.cc.o"
  "CMakeFiles/uvmsim_core.dir/residency_tracker.cc.o.d"
  "libuvmsim_core.a"
  "libuvmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
