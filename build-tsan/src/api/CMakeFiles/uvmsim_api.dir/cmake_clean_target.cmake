file(REMOVE_RECURSE
  "libuvmsim_api.a"
)
