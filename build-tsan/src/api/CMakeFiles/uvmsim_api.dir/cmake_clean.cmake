file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_api.dir/run_executor.cc.o"
  "CMakeFiles/uvmsim_api.dir/run_executor.cc.o.d"
  "CMakeFiles/uvmsim_api.dir/simulator.cc.o"
  "CMakeFiles/uvmsim_api.dir/simulator.cc.o.d"
  "libuvmsim_api.a"
  "libuvmsim_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
