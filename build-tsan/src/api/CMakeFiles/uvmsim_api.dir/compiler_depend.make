# Empty compiler generated dependencies file for uvmsim_api.
# This may be replaced when dependencies are built.
