file(REMOVE_RECURSE
  "libuvmsim_workloads.a"
)
