file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_workloads.dir/atax.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/atax.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/backprop.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/backprop.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/bfs.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/bfs.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/gemm.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/gemm.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/hotspot.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/hotspot.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/kmeans.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/nw.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/nw.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/pathfinder.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/pathfinder.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/srad.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/srad.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/trace_file.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/trace_file.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/trace_util.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/trace_util.cc.o.d"
  "CMakeFiles/uvmsim_workloads.dir/workload.cc.o"
  "CMakeFiles/uvmsim_workloads.dir/workload.cc.o.d"
  "libuvmsim_workloads.a"
  "libuvmsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
