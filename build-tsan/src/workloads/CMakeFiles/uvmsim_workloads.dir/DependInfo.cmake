
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/atax.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/atax.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/atax.cc.o.d"
  "/root/repo/src/workloads/backprop.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/backprop.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/bfs.cc.o.d"
  "/root/repo/src/workloads/gemm.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/gemm.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/gemm.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/hotspot.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/nw.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/nw.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/pathfinder.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/pathfinder.cc.o.d"
  "/root/repo/src/workloads/srad.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/srad.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/srad.cc.o.d"
  "/root/repo/src/workloads/trace_file.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/trace_file.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/trace_file.cc.o.d"
  "/root/repo/src/workloads/trace_util.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/trace_util.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/trace_util.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/uvmsim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/uvmsim_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/uvmsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interconnect/CMakeFiles/uvmsim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
