# Empty dependencies file for uvmsim_workloads.
# This may be replaced when dependencies are built.
