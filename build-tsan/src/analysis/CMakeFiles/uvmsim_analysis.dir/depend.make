# Empty dependencies file for uvmsim_analysis.
# This may be replaced when dependencies are built.
