file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_analysis.dir/access_pattern.cc.o"
  "CMakeFiles/uvmsim_analysis.dir/access_pattern.cc.o.d"
  "libuvmsim_analysis.a"
  "libuvmsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
