file(REMOVE_RECURSE
  "libuvmsim_analysis.a"
)
