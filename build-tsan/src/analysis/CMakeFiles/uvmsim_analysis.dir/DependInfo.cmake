
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/access_pattern.cc" "src/analysis/CMakeFiles/uvmsim_analysis.dir/access_pattern.cc.o" "gcc" "src/analysis/CMakeFiles/uvmsim_analysis.dir/access_pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
