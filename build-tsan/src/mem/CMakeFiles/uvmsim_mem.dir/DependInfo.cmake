
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/frame_allocator.cc" "src/mem/CMakeFiles/uvmsim_mem.dir/frame_allocator.cc.o" "gcc" "src/mem/CMakeFiles/uvmsim_mem.dir/frame_allocator.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/mem/CMakeFiles/uvmsim_mem.dir/mshr.cc.o" "gcc" "src/mem/CMakeFiles/uvmsim_mem.dir/mshr.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/uvmsim_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/uvmsim_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/uvmsim_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/uvmsim_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
