file(REMOVE_RECURSE
  "libuvmsim_mem.a"
)
