file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_mem.dir/frame_allocator.cc.o"
  "CMakeFiles/uvmsim_mem.dir/frame_allocator.cc.o.d"
  "CMakeFiles/uvmsim_mem.dir/mshr.cc.o"
  "CMakeFiles/uvmsim_mem.dir/mshr.cc.o.d"
  "CMakeFiles/uvmsim_mem.dir/page_table.cc.o"
  "CMakeFiles/uvmsim_mem.dir/page_table.cc.o.d"
  "CMakeFiles/uvmsim_mem.dir/tlb.cc.o"
  "CMakeFiles/uvmsim_mem.dir/tlb.cc.o.d"
  "libuvmsim_mem.a"
  "libuvmsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
