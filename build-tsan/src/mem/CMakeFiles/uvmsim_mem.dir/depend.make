# Empty dependencies file for uvmsim_mem.
# This may be replaced when dependencies are built.
