file(REMOVE_RECURSE
  "libuvmsim_interconnect.a"
)
