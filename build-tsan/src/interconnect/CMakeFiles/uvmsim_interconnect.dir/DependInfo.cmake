
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/bandwidth_model.cc" "src/interconnect/CMakeFiles/uvmsim_interconnect.dir/bandwidth_model.cc.o" "gcc" "src/interconnect/CMakeFiles/uvmsim_interconnect.dir/bandwidth_model.cc.o.d"
  "/root/repo/src/interconnect/pcie_link.cc" "src/interconnect/CMakeFiles/uvmsim_interconnect.dir/pcie_link.cc.o" "gcc" "src/interconnect/CMakeFiles/uvmsim_interconnect.dir/pcie_link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
