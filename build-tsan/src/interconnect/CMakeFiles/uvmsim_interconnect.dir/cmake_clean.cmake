file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_interconnect.dir/bandwidth_model.cc.o"
  "CMakeFiles/uvmsim_interconnect.dir/bandwidth_model.cc.o.d"
  "CMakeFiles/uvmsim_interconnect.dir/pcie_link.cc.o"
  "CMakeFiles/uvmsim_interconnect.dir/pcie_link.cc.o.d"
  "libuvmsim_interconnect.a"
  "libuvmsim_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
