# Empty compiler generated dependencies file for uvmsim_interconnect.
# This may be replaced when dependencies are built.
