file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_gpu.dir/gpu.cc.o"
  "CMakeFiles/uvmsim_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/uvmsim_gpu.dir/l2_cache.cc.o"
  "CMakeFiles/uvmsim_gpu.dir/l2_cache.cc.o.d"
  "CMakeFiles/uvmsim_gpu.dir/sm.cc.o"
  "CMakeFiles/uvmsim_gpu.dir/sm.cc.o.d"
  "libuvmsim_gpu.a"
  "libuvmsim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
