
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu.cc" "src/gpu/CMakeFiles/uvmsim_gpu.dir/gpu.cc.o" "gcc" "src/gpu/CMakeFiles/uvmsim_gpu.dir/gpu.cc.o.d"
  "/root/repo/src/gpu/l2_cache.cc" "src/gpu/CMakeFiles/uvmsim_gpu.dir/l2_cache.cc.o" "gcc" "src/gpu/CMakeFiles/uvmsim_gpu.dir/l2_cache.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/gpu/CMakeFiles/uvmsim_gpu.dir/sm.cc.o" "gcc" "src/gpu/CMakeFiles/uvmsim_gpu.dir/sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/uvmsim_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interconnect/CMakeFiles/uvmsim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
