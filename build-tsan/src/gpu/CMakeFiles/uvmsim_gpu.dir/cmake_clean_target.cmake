file(REMOVE_RECURSE
  "libuvmsim_gpu.a"
)
