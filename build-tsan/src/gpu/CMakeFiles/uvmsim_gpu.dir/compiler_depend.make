# Empty compiler generated dependencies file for uvmsim_gpu.
# This may be replaced when dependencies are built.
