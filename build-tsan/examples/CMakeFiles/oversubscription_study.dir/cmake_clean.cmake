file(REMOVE_RECURSE
  "CMakeFiles/oversubscription_study.dir/oversubscription_study.cpp.o"
  "CMakeFiles/oversubscription_study.dir/oversubscription_study.cpp.o.d"
  "oversubscription_study"
  "oversubscription_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversubscription_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
