# Empty compiler generated dependencies file for oversubscription_study.
# This may be replaced when dependencies are built.
