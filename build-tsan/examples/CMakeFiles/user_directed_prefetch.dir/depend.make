# Empty dependencies file for user_directed_prefetch.
# This may be replaced when dependencies are built.
