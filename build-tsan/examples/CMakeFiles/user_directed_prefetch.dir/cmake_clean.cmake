file(REMOVE_RECURSE
  "CMakeFiles/user_directed_prefetch.dir/user_directed_prefetch.cpp.o"
  "CMakeFiles/user_directed_prefetch.dir/user_directed_prefetch.cpp.o.d"
  "user_directed_prefetch"
  "user_directed_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_directed_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
