# Empty dependencies file for custom_workload.
# This may be replaced when dependencies are built.
