file(REMOVE_RECURSE
  "CMakeFiles/custom_workload.dir/custom_workload.cpp.o"
  "CMakeFiles/custom_workload.dir/custom_workload.cpp.o.d"
  "custom_workload"
  "custom_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
