
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pattern_analysis.cpp" "examples/CMakeFiles/pattern_analysis.dir/pattern_analysis.cpp.o" "gcc" "examples/CMakeFiles/pattern_analysis.dir/pattern_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/api/CMakeFiles/uvmsim_api.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/uvmsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/uvmsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/uvmsim_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interconnect/CMakeFiles/uvmsim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/uvmsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/uvmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/uvmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
