# Empty compiler generated dependencies file for pattern_analysis.
# This may be replaced when dependencies are built.
