file(REMOVE_RECURSE
  "CMakeFiles/pattern_analysis.dir/pattern_analysis.cpp.o"
  "CMakeFiles/pattern_analysis.dir/pattern_analysis.cpp.o.d"
  "pattern_analysis"
  "pattern_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
