# Empty compiler generated dependencies file for policy_advisor.
# This may be replaced when dependencies are built.
