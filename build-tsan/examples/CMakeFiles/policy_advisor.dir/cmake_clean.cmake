file(REMOVE_RECURSE
  "CMakeFiles/policy_advisor.dir/policy_advisor.cpp.o"
  "CMakeFiles/policy_advisor.dir/policy_advisor.cpp.o.d"
  "policy_advisor"
  "policy_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
