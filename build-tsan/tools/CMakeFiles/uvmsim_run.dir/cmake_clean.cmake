file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_run.dir/uvmsim_run.cc.o"
  "CMakeFiles/uvmsim_run.dir/uvmsim_run.cc.o.d"
  "uvmsim_run"
  "uvmsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
