# Empty compiler generated dependencies file for uvmsim_run.
# This may be replaced when dependencies are built.
