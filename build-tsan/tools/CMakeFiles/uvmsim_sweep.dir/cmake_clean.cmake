file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_sweep.dir/uvmsim_sweep.cc.o"
  "CMakeFiles/uvmsim_sweep.dir/uvmsim_sweep.cc.o.d"
  "uvmsim_sweep"
  "uvmsim_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
