# Empty dependencies file for uvmsim_sweep.
# This may be replaced when dependencies are built.
