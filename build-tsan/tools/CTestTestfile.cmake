# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_run_smoke "/root/repo/build-tsan/tools/uvmsim_run" "--workload=backprop" "--scale=0.1" "--sms=4" "--stats")
set_tests_properties(cli_run_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_trace_smoke "/root/repo/build-tsan/tools/uvmsim_run" "--trace=/root/repo/examples/traces/vecadd.trace")
set_tests_properties(cli_run_trace_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_list "/root/repo/build-tsan/tools/uvmsim_run" "--list")
set_tests_properties(cli_run_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_smoke "/root/repo/build-tsan/tools/uvmsim_sweep" "--axis=eviction" "--values=LRU4K,TBNe" "--benchmarks=backprop" "--scale=0.1" "--metric=pages_evicted")
set_tests_properties(cli_sweep_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_parallel_smoke "/root/repo/build-tsan/tools/uvmsim_sweep" "--axis=eviction" "--values=LRU4K,TBNe" "--benchmarks=backprop,pathfinder" "--scale=0.1" "--metric=pages_evicted" "--jobs=4")
set_tests_properties(cli_sweep_parallel_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_multi_workload_smoke "/root/repo/build-tsan/tools/uvmsim_run" "--workload=backprop,pathfinder" "--scale=0.1" "--sms=4" "--jobs=2")
set_tests_properties(cli_run_multi_workload_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
