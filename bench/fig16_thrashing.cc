/**
 * @file
 * Figure 16: total pages thrashed (evicted and later re-migrated)
 * under TBNe versus 2MB large-page eviction, at 110% and 125% memory
 * over-subscription, with TBNp prefetching.
 *
 * Expected shape: backprop and pathfinder show zero thrashing (no
 * reuse); for bfs/hotspot/nw/srad the Figure 15 improvement of TBNe
 * over 2MB eviction is explained by a large reduction in thrashing.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 16",
                       "pages thrashed: TBNe vs 2MB eviction at 110% "
                       "and 125% over-subscription");

    bench::printRow("benchmark",
                    {"2MB@110", "TBNe@110", "2MB@125", "TBNe@125"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (double pct : {110.0, 125.0}) {
            for (EvictionKind ev :
                 {EvictionKind::lru2mb,
                  EvictionKind::treeBasedNeighborhood}) {
                SimConfig cfg;
                cfg.prefetcher_before =
                    PrefetcherKind::treeBasedNeighborhood;
                cfg.prefetcher_after =
                    PrefetcherKind::treeBasedNeighborhood;
                cfg.eviction = ev;
                cfg.oversubscription_percent = pct;
                row.push_back(batch.add(name, cfg, params));
            }
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> cells;
        for (std::size_t h : handles[b])
            cells.push_back(
                bench::fmtInt(batch.result(h).pagesThrashed()));
        bench::printRow(benchmarks[b], cells);
    }
    std::printf("# paper shape: no thrashing for streaming benchmarks; "
                "TBNe thrashes far less than 2MB eviction\n");
    return 0;
}
