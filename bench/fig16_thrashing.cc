/**
 * @file
 * Figure 16: total pages thrashed (evicted and later re-migrated)
 * under TBNe versus 2MB large-page eviction, at 110% and 125% memory
 * over-subscription, with TBNp prefetching.
 *
 * Expected shape: backprop and pathfinder show zero thrashing (no
 * reuse); for bfs/hotspot/nw/srad the Figure 15 improvement of TBNe
 * over 2MB eviction is explained by a large reduction in thrashing.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 16",
                       "pages thrashed: TBNe vs 2MB eviction at 110% "
                       "and 125% over-subscription");

    bench::printRow("benchmark",
                    {"2MB@110", "TBNe@110", "2MB@125", "TBNe@125"});

    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        std::vector<std::string> cells;
        for (double pct : {110.0, 125.0}) {
            for (EvictionKind ev :
                 {EvictionKind::lru2mb,
                  EvictionKind::treeBasedNeighborhood}) {
                SimConfig cfg;
                cfg.prefetcher_before =
                    PrefetcherKind::treeBasedNeighborhood;
                cfg.prefetcher_after =
                    PrefetcherKind::treeBasedNeighborhood;
                cfg.eviction = ev;
                cfg.oversubscription_percent = pct;
                cells.push_back(bench::fmtInt(
                    bench::run(name, cfg, params).pagesThrashed()));
            }
        }
        bench::printRow(name, cells);
    }
    std::printf("# paper shape: no thrashing for streaming benchmarks; "
                "TBNe thrashes far less than 2MB eviction\n");
    return 0;
}
