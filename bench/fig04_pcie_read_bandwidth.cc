/**
 * @file
 * Figure 4: average PCI-e read-channel bandwidth achieved by each
 * hardware prefetcher against no prefetching.
 *
 * Expected shape: none and Rp pin at the 4KB bandwidth (~3.2 GB/s);
 * SLp reaches the 64KB class; TBNp approaches the 1MB-class ~11 GB/s
 * because its grouped transfers amortize the activation overhead.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 4",
                       "average PCI-e read bandwidth (GB/s) per "
                       "prefetcher, no over-subscription");

    const std::vector<PrefetcherKind> prefetchers = {
        PrefetcherKind::none, PrefetcherKind::random,
        PrefetcherKind::sequentialLocal,
        PrefetcherKind::treeBasedNeighborhood};

    bench::printRow("benchmark",
                    {"none", "Rp", "SLp", "TBNp"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (PrefetcherKind pf : prefetchers) {
            SimConfig cfg;
            cfg.prefetcher_before = pf;
            cfg.prefetcher_after = pf;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    std::vector<std::vector<double>> columns(prefetchers.size());
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> cells;
        for (std::size_t i = 0; i < prefetchers.size(); ++i) {
            double bw =
                batch.result(handles[b][i]).avgReadBandwidthGBps();
            columns[i].push_back(bw);
            cells.push_back(bench::fmt(bw, 2));
        }
        bench::printRow(benchmarks[b], cells);
    }

    std::vector<std::string> means;
    for (const auto &col : columns)
        means.push_back(bench::fmt(bench::geomean(col), 2));
    bench::printRow("geomean", means);
    std::printf("# paper shape: none~3.2, SLp mid, TBNp approaches "
                "the 1MB-transfer bandwidth\n");
    return 0;
}
