/**
 * @file
 * Hot-path micro-benchmarks (google-benchmark) for the pooled/flat
 * simulator core: the calendar EventQueue's POD and lambda scheduling
 * paths, the intrusive index-linked ResidencyTracker, the
 * implicit-heap LargePageTree walks, and the rewritten L2 tag store
 * and open-addressing TLB.  Companion to bench/micro_components.cc;
 * these isolate the operations the hot-path overhaul targeted so a
 * regression in any one structure is visible without a full sweep.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/large_page_tree.hh"
#include "core/residency_tracker.hh"
#include "gpu/l2_cache.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace uvmsim
{

namespace
{

constexpr Addr base = 0x100000000ull;

void
podNop(void *, std::uint64_t)
{
}

/** The POD fast path: one arena record, no virtual dispatch setup. */
void
BM_EventSchedulePodFire(benchmark::State &state)
{
    EventQueue eq;
    const int batch = 256;
    for (auto _ : state) {
        Tick now = eq.curTick();
        for (int i = 0; i < batch; ++i)
            eq.scheduleCall(now + 1 + (i % 7), &podNop, nullptr, i);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventSchedulePodFire);

/** The generic path: lambda construction plus ops-table dispatch. */
void
BM_EventScheduleLambdaFire(benchmark::State &state)
{
    EventQueue eq;
    const int batch = 256;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        Tick now = eq.curTick();
        for (int i = 0; i < batch; ++i)
            eq.schedule(now + 1 + (i % 7), [&sink, i] { sink += i; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleLambdaFire);

/** Schedule/deschedule churn: arena slot reuse and bucket unlinking. */
void
BM_EventDescheduleChurn(benchmark::State &state)
{
    EventQueue eq;
    const int batch = 256;
    std::vector<EventQueue::EventId> ids(batch);
    for (auto _ : state) {
        Tick now = eq.curTick();
        for (int i = 0; i < batch; ++i)
            ids[i] = eq.scheduleCall(now + 1 + i, &podNop, nullptr, i);
        for (int i = 0; i < batch; i += 2)
            eq.deschedule(ids[i]);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDescheduleChurn);

/** Wide tick spread: forces calendar width rebuilds and lap scans. */
void
BM_EventCalendarSpread(benchmark::State &state)
{
    const int batch = 512;
    Rng rng(7);
    std::vector<Tick> delays(batch);
    for (int i = 0; i < batch; ++i)
        delays[i] = 1 + rng.below(1ull << (1 + i % 24));
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < batch; ++i)
            eq.scheduleCall(delays[i], &podNop, nullptr, i);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventCalendarSpread);

/** Resident/evict churn through the intrusive arenas. */
void
BM_ResidencyResidentEvictChurn(benchmark::State &state)
{
    ResidencyTracker rt;
    const std::uint64_t span = 4 * pagesPerLargePage;
    PageNum first = pageOf(base);
    for (std::uint64_t p = 0; p < span; p += 2)
        rt.onResident(first + p);
    Rng rng(11);
    for (auto _ : state) {
        PageNum page = first + rng.below(span);
        if (rt.isTracked(page))
            rt.onEvicted(page);
        else
            rt.onResident(page);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResidencyResidentEvictChurn);

/** Pure touch path: flat-LRU splice plus hierarchy move-to-front. */
void
BM_ResidencyTouchHot(benchmark::State &state)
{
    ResidencyTracker rt;
    const std::uint64_t span = 2 * pagesPerLargePage;
    PageNum first = pageOf(base);
    for (std::uint64_t p = 0; p < span; ++p)
        rt.onResident(first + p);
    Rng rng(13);
    for (auto _ : state)
        rt.onAccess(first + rng.below(span));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResidencyTouchHot);

/** All five victim queries against a populated tracker. */
void
BM_ResidencyVictimQueries(benchmark::State &state)
{
    ResidencyTracker rt;
    const std::uint64_t span = 8 * pagesPerLargePage;
    PageNum first = pageOf(base);
    for (std::uint64_t p = 0; p < span; p += 3)
        rt.onResident(first + p);
    Rng rng(17);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt.lruPageVictim(64));
        benchmark::DoNotOptimize(rt.mruPageVictim());
        benchmark::DoNotOptimize(rt.randomPageVictim(rng));
        benchmark::DoNotOptimize(rt.lruBlockVictim(64));
        benchmark::DoNotOptimize(rt.lruLargePageVictim(64));
    }
    state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_ResidencyVictimQueries);

/** Mark/unmark with the ancestor-counter updates. */
void
BM_TreeMarkUnmark(benchmark::State &state)
{
    LargePageTree tree(base, 32);
    PageNum first = pageOf(base);
    Rng rng(19);
    for (auto _ : state) {
        PageNum page = first + rng.below(pagesPerLargePage);
        if (tree.pageMarked(page))
            tree.unmarkPage(page);
        else
            tree.markPage(page);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeMarkUnmark);

/** Full fill/drain balancing walks over the implicit heap. */
void
BM_TreeFillDrainCycle(benchmark::State &state)
{
    PageNum first = pageOf(base);
    for (auto _ : state) {
        LargePageTree tree(base, 32);
        tree.faultFill(first);
        tree.faultFill(first + pagesPerLargePage / 2);
        for (std::uint32_t leaf = 0; leaf < 32; leaf += 4)
            tree.evictDrain(leaf);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeFillDrainCycle);

/** Aggregate reads for every node: one array load each. */
void
BM_TreeNodeWalk(benchmark::State &state)
{
    LargePageTree tree(base, 32);
    tree.faultFill(pageOf(base));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (std::uint32_t h = 0; h <= tree.rootHeight(); ++h)
            for (std::uint32_t i = 0; i < (32u >> h); ++i)
                sink += tree.nodeMarkedBytes(h, i);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 63);
}
BENCHMARK(BM_TreeNodeWalk);

/** L2 tag-store probe at the paper geometry (miss-dominated). */
void
BM_L2CacheAccess(benchmark::State &state)
{
    L2Cache l2(4ull << 20, 16, 128, "bench_l2");
    Rng rng(23);
    const Addr span = 64ull << 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            l2.access(base + (rng.below(span) & ~Addr{127}), false));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2CacheAccess);

/** 48-set L1 geometry: exercises the fastmod set index. */
void
BM_L1CacheAccess(benchmark::State &state)
{
    L2Cache l1(24ull << 10, 4, 128, "bench_l1");
    Rng rng(29);
    const Addr span = 1ull << 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            l1.access(base + (rng.below(span) & ~Addr{127}), false));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1CacheAccess);

/** Open-addressing TLB: hit-heavy lookup mix with LRU reordering. */
void
BM_TlbLookupInsert(benchmark::State &state)
{
    Tlb tlb("bench_tlb", 64);
    PageNum first = pageOf(base);
    for (std::uint64_t p = 0; p < 64; ++p)
        tlb.insert(first + p);
    Rng rng(31);
    for (auto _ : state) {
        PageNum page = first + rng.below(96);
        if (!tlb.lookup(page))
            tlb.insert(page);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupInsert);

} // namespace

} // namespace uvmsim

BENCHMARK_MAIN();
