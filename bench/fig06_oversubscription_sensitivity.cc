/**
 * @file
 * Figure 6: sensitivity of kernel execution time to the percentage of
 * memory over-subscription and to a memory-threshold free-page
 * buffer.
 *
 * Configuration per the paper: TBNp is active until device capacity
 * is reached; upon over-subscription the prefetcher is disabled and
 * 4KB pages migrate on demand; eviction is LRU-4KB.  Values are
 * slowdowns relative to the fits-in-memory run.
 *
 * Expected shape: drastic degradation even at 105%; maintaining a
 * free-page buffer makes things *worse* (the prefetcher is disabled
 * earlier), contrary to the usual intuition about pre-eviction.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

struct Setting
{
    const char *label;
    double oversub;
    double buffer;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader(
        "Figure 6",
        "kernel slowdown vs no over-subscription; TBNp until capacity "
        "then on-demand 4KB; LRU-4KB eviction");

    const std::vector<Setting> settings = {
        {"105%", 105.0, 0.0},      {"110%", 110.0, 0.0},
        {"115%", 115.0, 0.0},      {"125%", 125.0, 0.0},
        {"110%+buf5", 110.0, 5.0}, {"110%+buf10", 110.0, 10.0},
    };

    std::vector<std::string> header{"fits_ms"};
    for (const auto &s : settings)
        header.push_back(s.label);
    bench::printRow("benchmark", header);

    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        SimConfig fits;
        fits.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
        fits.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
        double base_ms = bench::run(name, fits, params).kernelTimeMs();

        std::vector<std::string> cells{bench::fmt(base_ms)};
        for (const auto &s : settings) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = EvictionKind::lru4k;
            cfg.oversubscription_percent = s.oversub;
            cfg.free_buffer_percent = s.buffer;
            double ms = bench::run(name, cfg, params).kernelTimeMs();
            cells.push_back(bench::fmt(ms / base_ms, 2) + "x");
        }
        bench::printRow(name, cells);
    }
    std::printf("# paper shape: sharp slowdowns at small "
                "over-subscription; the free-page buffer hurts\n");
    return 0;
}
