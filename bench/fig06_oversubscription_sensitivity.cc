/**
 * @file
 * Figure 6: sensitivity of kernel execution time to the percentage of
 * memory over-subscription and to a memory-threshold free-page
 * buffer.
 *
 * Configuration per the paper: TBNp is active until device capacity
 * is reached; upon over-subscription the prefetcher is disabled and
 * 4KB pages migrate on demand; eviction is LRU-4KB.  Values are
 * slowdowns relative to the fits-in-memory run.
 *
 * Expected shape: drastic degradation even at 105%; maintaining a
 * free-page buffer makes things *worse* (the prefetcher is disabled
 * earlier), contrary to the usual intuition about pre-eviction.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

struct Setting
{
    const char *label;
    double oversub;
    double buffer;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader(
        "Figure 6",
        "kernel slowdown vs no over-subscription; TBNp until capacity "
        "then on-demand 4KB; LRU-4KB eviction");

    const std::vector<Setting> settings = {
        {"105%", 105.0, 0.0},      {"110%", 110.0, 0.0},
        {"115%", 115.0, 0.0},      {"125%", 125.0, 0.0},
        {"110%+buf5", 110.0, 5.0}, {"110%+buf10", 110.0, 10.0},
    };

    std::vector<std::string> header{"fits_ms"};
    for (const auto &s : settings)
        header.push_back(s.label);
    bench::printRow("benchmark", header);

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::size_t> fits_handles;
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        SimConfig fits;
        fits.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
        fits.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
        fits_handles.push_back(batch.add(name, fits, params));

        std::vector<std::size_t> row;
        for (const auto &s : settings) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = EvictionKind::lru4k;
            cfg.oversubscription_percent = s.oversub;
            cfg.free_buffer_percent = s.buffer;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        double base_ms = batch.result(fits_handles[b]).kernelTimeMs();
        std::vector<std::string> cells{bench::fmt(base_ms)};
        for (std::size_t h : handles[b]) {
            double ms = batch.result(h).kernelTimeMs();
            cells.push_back(bench::fmt(ms / base_ms, 2) + "x");
        }
        bench::printRow(benchmarks[b], cells);
    }
    std::printf("# paper shape: sharp slowdowns at small "
                "over-subscription; the free-page buffer hurts\n");
    return 0;
}
