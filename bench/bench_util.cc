#include "bench_util.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace uvmsim::bench
{

std::vector<std::string>
selectedBenchmarks(const Options &opts)
{
    return opts.getList("benchmarks", allWorkloadNames());
}

WorkloadParams
workloadParams(const Options &opts)
{
    WorkloadParams params;
    params.size_scale = opts.getDouble("scale", 1.0);
    params.seed = opts.getUint("seed", 42);
    return params;
}

void
printHeader(const std::string &figure, const std::string &what)
{
    std::printf("# %s\n", figure.c_str());
    std::printf("# %s\n", what.c_str());
    std::printf("# uvmsim -- reproduction of Ganguly et al., ISCA'19\n");
}

void
printRow(const std::string &label, const std::vector<std::string> &cells)
{
    std::printf("%-12s", label.c_str());
    for (const auto &cell : cells)
        std::printf(" %14s", cell.c_str());
    std::printf("\n");
    std::fflush(stdout);
}

std::string
fmt(double v, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << v;
    return oss.str();
}

std::string
fmtInt(double v)
{
    return std::to_string(static_cast<long long>(v + 0.5));
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

RunResult
run(const std::string &benchmark, const SimConfig &config,
    const WorkloadParams &params)
{
    std::fprintf(stderr, "[bench] %-10s prefetch=%s/%s evict=%s "
                 "oversub=%.0f%% buffer=%.0f%% reserve=%.0f%%...\n",
                 benchmark.c_str(),
                 toString(config.prefetcher_before).c_str(),
                 toString(config.prefetcher_after).c_str(),
                 toString(config.eviction).c_str(),
                 config.oversubscription_percent,
                 config.free_buffer_percent, config.lru_reserve_percent);
    return runBenchmark(benchmark, config, params);
}

} // namespace uvmsim::bench
