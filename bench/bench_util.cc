#include "bench_util.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <optional>
#include <sstream>

#include "api/result_store.hh"

namespace uvmsim::bench
{

namespace
{

/** One "[bench] ..." progress line, serialized against other output. */
void
progressLine(const std::string &benchmark, const SimConfig &config,
             const char *counter)
{
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "[bench%s] %-10s prefetch=%s/%s evict=%s "
                 "oversub=%.0f%% buffer=%.0f%% reserve=%.0f%%...\n",
                 counter, benchmark.c_str(),
                 toString(config.prefetcher_before).c_str(),
                 toString(config.prefetcher_after).c_str(),
                 toString(config.eviction).c_str(),
                 config.oversubscription_percent,
                 config.free_buffer_percent, config.lru_reserve_percent);
}

} // namespace

std::vector<std::string>
selectedBenchmarks(const Options &opts)
{
    return opts.getList("benchmarks", allWorkloadNames());
}

WorkloadParams
workloadParams(const Options &opts)
{
    WorkloadParams params;
    params.size_scale = opts.getDouble("scale", 1.0);
    params.seed = opts.getUint("seed", 42);
    return params;
}

std::size_t
jobCount(const Options &opts)
{
    return static_cast<std::size_t>(opts.getUint("jobs", 0));
}

void
applyTraceOptions(SimConfig &config, const Options &opts,
                  const std::string &label)
{
    config.trace_spec = opts.get("trace", "");
    if (config.trace_spec.empty())
        return;
    config.trace_out = opts.get("trace-out", "uvmsim_bench");
    if (!label.empty())
        config.trace_out += "-" + label;
    config.epoch_ticks =
        opts.getUint("epoch-ticks", config.epoch_ticks);
}

void
printHeader(const std::string &figure, const std::string &what)
{
    std::printf("# %s\n", figure.c_str());
    std::printf("# %s\n", what.c_str());
    std::printf("# uvmsim -- reproduction of Ganguly et al., ISCA'19\n");
}

void
printRow(const std::string &label, const std::vector<std::string> &cells)
{
    std::printf("%-12s", label.c_str());
    for (const auto &cell : cells)
        std::printf(" %14s", cell.c_str());
    std::printf("\n");
    std::fflush(stdout);
}

std::string
fmt(double v, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << v;
    return oss.str();
}

std::string
fmtInt(double v)
{
    return std::to_string(static_cast<long long>(v + 0.5));
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (!(v > 0.0))
            fatal("geomean requires positive values, got %g", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

RunResult
run(const std::string &benchmark, const SimConfig &config,
    const WorkloadParams &params)
{
    progressLine(benchmark, config, "");
    return runBenchmark(benchmark, config, params);
}

std::vector<RunResult>
runAll(const std::vector<RunJob> &jobs, const Options &opts)
{
    // --trace on any harness: every cell of the sweep gets its own
    // uniquely named artifact pair (and its own cache key, so traced
    // duplicates still each write their files).
    std::vector<RunJob> batch = jobs;
    if (opts.has("trace")) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            applyTraceOptions(batch[i].config, opts,
                              batch[i].workload + "-" +
                                  std::to_string(i));
        }
    }

    // --store: share cells with other harnesses/runs through the
    // persistent store (declared before the executor so it outlives
    // the pool that reads through it).
    std::optional<ResultStore> store;
    if (opts.has("store"))
        store.emplace(opts.get("store"));
    RunExecutor executor(jobCount(opts));
    if (store)
        executor.attachStore(&*store);
    if (opts.has("cache-bytes"))
        executor.setCacheCapacity(opts.getUint(
            "cache-bytes", RunExecutor::default_cache_bytes));
    std::atomic<std::size_t> started{0};
    const std::size_t total = batch.size();
    auto progress = [&started, total](const RunJob &job, std::size_t) {
        char counter[32];
        std::snprintf(counter, sizeof(counter), " %zu/%zu",
                      started.fetch_add(1) + 1, total);
        progressLine(job.workload, job.config, counter);
    };
    return executor.runBatch(batch, progress);
}

} // namespace uvmsim::bench
