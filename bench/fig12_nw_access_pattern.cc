/**
 * @file
 * Figure 12: page access pattern of the nw benchmark without
 * eviction, at iterations 60 and 70.
 *
 * Reproduces the paper's scatter data: for each tracked iteration it
 * prints (core_cycle, virtual_page_number) samples.  The signature
 * shape is a set of page bands spaced far apart in the virtual
 * address space, re-accessed repeatedly across the iteration -- the
 * reason nw prefers small eviction granularity (Sec. 7.2).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);
    std::vector<std::uint64_t> tracked{
        opts.getUint("iter-a", 60), opts.getUint("iter-b", 70)};
    const std::uint64_t max_samples = opts.getUint("samples", 400);

    bench::printHeader("Figure 12",
                       "nw page access pattern (cycle, virtual page) "
                       "at two mid-run iterations, no eviction");

    auto workload = makeWorkload("nw", params);
    SimConfig cfg;
    cfg.oversubscription_percent = 0.0; // no eviction
    Simulator sim(cfg);

    // Record kernel windows and all page accesses, then filter.
    struct Window
    {
        Tick start, end;
    };
    std::map<std::uint64_t, Window> windows;
    std::vector<std::pair<Tick, PageNum>> samples;

    sim.setKernelObserver([&](std::uint64_t idx, const std::string &,
                              Tick start, Tick end) {
        windows[idx] = Window{start, end};
    });
    sim.setAccessObserver([&](Tick t, PageNum p, bool) {
        samples.emplace_back(t, p);
    });

    sim.run(*workload);

    const Tick core_period = cfg.gpu.corePeriod();
    for (std::uint64_t iter : tracked) {
        auto it = windows.find(iter);
        if (it == windows.end()) {
            std::printf("# iteration %llu not reached\n",
                        static_cast<unsigned long long>(iter));
            continue;
        }
        std::vector<std::pair<Tick, PageNum>> in_window;
        for (const auto &[t, p] : samples) {
            if (t >= it->second.start && t <= it->second.end)
                in_window.emplace_back(t, p);
        }
        std::printf("\n# iteration %llu: %zu accesses, cycles %llu..%llu\n",
                    static_cast<unsigned long long>(iter),
                    in_window.size(),
                    static_cast<unsigned long long>(it->second.start /
                                                    core_period),
                    static_cast<unsigned long long>(it->second.end /
                                                    core_period));
        bench::printRow("iter" + std::to_string(iter),
                        {"core_cycle", "virtual_page"});
        std::size_t stride =
            std::max<std::size_t>(1, in_window.size() / max_samples);
        PageNum min_p = ~PageNum{0}, max_p = 0;
        for (std::size_t i = 0; i < in_window.size(); i += stride) {
            const auto &[t, p] = in_window[i];
            bench::printRow("", {std::to_string(t / core_period),
                                 std::to_string(p)});
            min_p = std::min(min_p, p);
            max_p = std::max(max_p, p);
        }
        std::printf("# page span in iteration: %llu pages\n",
                    static_cast<unsigned long long>(max_p - min_p));
    }
    std::printf("\n# paper shape: widely spaced page bands accessed "
                "repeatedly within each iteration\n");
    return 0;
}
