/**
 * @file
 * Figure 13: sensitivity of the TBNe+TBNp combination to the memory
 * over-subscription percentage.
 *
 * Expected shape: backprop and pathfinder flat (streaming); the other
 * benchmarks scale roughly linearly; nw degrades by an order of
 * magnitude because of its localized sparse reuse (Sec. 7.3).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 13",
                       "TBNe+TBNp slowdown vs over-subscription "
                       "percentage (relative to fits-in-memory)");

    const std::vector<double> levels = {110.0, 125.0, 150.0};

    bench::printRow("benchmark",
                    {"fits_ms", "110%", "125%", "150%"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::size_t> fits_handles;
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        SimConfig fits;
        fits.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
        fits.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
        fits_handles.push_back(batch.add(name, fits, params));

        std::vector<std::size_t> row;
        for (double pct : levels) {
            SimConfig cfg = fits;
            cfg.eviction = EvictionKind::treeBasedNeighborhood;
            cfg.oversubscription_percent = pct;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        double base_ms = batch.result(fits_handles[b]).kernelTimeMs();
        std::vector<std::string> cells{bench::fmt(base_ms)};
        for (std::size_t h : handles[b]) {
            double ms = batch.result(h).kernelTimeMs();
            cells.push_back(bench::fmt(ms / base_ms, 2) + "x");
        }
        bench::printRow(benchmarks[b], cells);
    }
    std::printf("# paper shape: streaming flat, others roughly linear, "
                "nw degrades dramatically\n");
    return 0;
}
