/**
 * @file
 * Figure 13: sensitivity of the TBNe+TBNp combination to the memory
 * over-subscription percentage.
 *
 * Expected shape: backprop and pathfinder flat (streaming); the other
 * benchmarks scale roughly linearly; nw degrades by an order of
 * magnitude because of its localized sparse reuse (Sec. 7.3).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 13",
                       "TBNe+TBNp slowdown vs over-subscription "
                       "percentage (relative to fits-in-memory)");

    const std::vector<double> levels = {110.0, 125.0, 150.0};

    bench::printRow("benchmark",
                    {"fits_ms", "110%", "125%", "150%"});

    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        SimConfig fits;
        fits.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
        fits.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
        double base_ms = bench::run(name, fits, params).kernelTimeMs();

        std::vector<std::string> cells{bench::fmt(base_ms)};
        for (double pct : levels) {
            SimConfig cfg = fits;
            cfg.eviction = EvictionKind::treeBasedNeighborhood;
            cfg.oversubscription_percent = pct;
            double ms = bench::run(name, cfg, params).kernelTimeMs();
            cells.push_back(bench::fmt(ms / base_ms, 2) + "x");
        }
        bench::printRow(name, cells);
    }
    std::printf("# paper shape: streaming flat, others roughly linear, "
                "nw degrades dramatically\n");
    return 0;
}
