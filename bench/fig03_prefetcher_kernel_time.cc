/**
 * @file
 * Figure 3: kernel execution time with different hardware prefetching
 * schemes against no hardware prefetching (no over-subscription).
 *
 * Prints per-benchmark kernel time in milliseconds for none/Rp/SLp/
 * TBNp plus the speedup of each prefetcher over on-demand paging --
 * the paper's bars are exactly these speedups.  Expected shape: every
 * prefetcher beats none; TBNp is the best.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 3",
                       "kernel execution time (ms) per prefetcher, "
                       "working set fits in device memory");

    const std::vector<PrefetcherKind> prefetchers = {
        PrefetcherKind::none, PrefetcherKind::random,
        PrefetcherKind::sequentialLocal,
        PrefetcherKind::treeBasedNeighborhood};

    bench::printRow("benchmark", {"none_ms", "Rp_ms", "SLp_ms",
                                  "TBNp_ms", "Rp_x", "SLp_x", "TBNp_x"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::map<std::string, std::map<PrefetcherKind, std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        for (PrefetcherKind pf : prefetchers) {
            SimConfig cfg;
            cfg.prefetcher_before = pf;
            cfg.prefetcher_after = pf;
            cfg.oversubscription_percent = 0.0;
            handles[name][pf] = batch.add(name, cfg, params);
        }
    }
    batch.run();

    std::map<PrefetcherKind, std::vector<double>> speedups;
    for (const std::string &name : benchmarks) {
        std::map<PrefetcherKind, double> ms;
        for (PrefetcherKind pf : prefetchers)
            ms[pf] = batch.result(handles[name][pf]).kernelTimeMs();
        double base = ms[PrefetcherKind::none];
        for (PrefetcherKind pf : prefetchers) {
            if (pf != PrefetcherKind::none)
                speedups[pf].push_back(base / ms[pf]);
        }
        bench::printRow(
            name,
            {bench::fmt(ms[PrefetcherKind::none]),
             bench::fmt(ms[PrefetcherKind::random]),
             bench::fmt(ms[PrefetcherKind::sequentialLocal]),
             bench::fmt(ms[PrefetcherKind::treeBasedNeighborhood]),
             bench::fmt(base / ms[PrefetcherKind::random], 2),
             bench::fmt(base / ms[PrefetcherKind::sequentialLocal], 2),
             bench::fmt(base / ms[PrefetcherKind::treeBasedNeighborhood],
                        2)});
    }

    bench::printRow(
        "geomean",
        {"-", "-", "-", "-",
         bench::fmt(bench::geomean(speedups[PrefetcherKind::random]), 2),
         bench::fmt(
             bench::geomean(speedups[PrefetcherKind::sequentialLocal]),
             2),
         bench::fmt(bench::geomean(
                        speedups[PrefetcherKind::treeBasedNeighborhood]),
                    2)});
    std::printf("# paper shape: TBNp best everywhere; all prefetchers "
                ">> on-demand paging\n");
    return 0;
}
