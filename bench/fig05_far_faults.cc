/**
 * @file
 * Figure 5: total number of far-faults encountered during kernel
 * execution for each hardware prefetcher against no prefetching.
 *
 * Expected shape: on-demand paging faults once per touched 4KB page;
 * SLp cuts that by up to 16x (one fault per 64KB block); TBNp cuts it
 * further because balancing prefetches entire neighbourhoods ahead of
 * the faulting wavefront.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 5",
                       "total far-faults per prefetcher, no "
                       "over-subscription");

    const std::vector<PrefetcherKind> prefetchers = {
        PrefetcherKind::none, PrefetcherKind::random,
        PrefetcherKind::sequentialLocal,
        PrefetcherKind::treeBasedNeighborhood};

    bench::printRow("benchmark",
                    {"none", "Rp", "SLp", "TBNp", "TBNp_reduction"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (PrefetcherKind pf : prefetchers) {
            SimConfig cfg;
            cfg.prefetcher_before = pf;
            cfg.prefetcher_after = pf;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        std::vector<double> faults;
        for (std::size_t h : handles[b])
            faults.push_back(batch.result(h).farFaults());
        bench::printRow(name,
                        {bench::fmtInt(faults[0]), bench::fmtInt(faults[1]),
                         bench::fmtInt(faults[2]), bench::fmtInt(faults[3]),
                         bench::fmt(faults[0] / faults[3], 1) + "x"});
    }
    std::printf("# paper shape: locality-aware prefetching within 2MB "
                "removes almost all far-faults\n");
    return 0;
}
