/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it sweeps the relevant configurations over the seven benchmarks and
 * prints the same rows/series the paper reports, normalized the same
 * way.  Command-line options (see printStandardOptions) select subsets
 * for quick runs.
 */

#ifndef UVMSIM_BENCH_BENCH_UTIL_HH
#define UVMSIM_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "api/simulator.hh"
#include "sim/options.hh"

namespace uvmsim::bench
{

/** The benchmark list selected by --benchmarks (default: all 7). */
std::vector<std::string> selectedBenchmarks(const Options &opts);

/** Workload parameters honoring --scale / --seed. */
WorkloadParams workloadParams(const Options &opts);

/** Print the standard header: figure id, description, options. */
void printHeader(const std::string &figure, const std::string &what);

/** Print one aligned row: first column the label, then values. */
void printRow(const std::string &label,
              const std::vector<std::string> &cells);

/** Format helpers. */
std::string fmt(double v, int precision = 3);
std::string fmtInt(double v);

/** Geometric mean of positive values. */
double geomean(const std::vector<double> &values);

/**
 * Run one benchmark under a config, echoing a progress line to
 * stderr so long sweeps are watchable.
 */
RunResult run(const std::string &benchmark, const SimConfig &config,
              const WorkloadParams &params);

} // namespace uvmsim::bench

#endif // UVMSIM_BENCH_BENCH_UTIL_HH
