/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it sweeps the relevant configurations over the seven benchmarks and
 * prints the same rows/series the paper reports, normalized the same
 * way.  Command-line options (see printStandardOptions) select subsets
 * for quick runs.
 *
 * Harnesses queue every (benchmark, config) cell of their sweep into a
 * Batch, execute it once -- in parallel on a RunExecutor pool sized by
 * --jobs -- and then format rows from the resolved results.  Output is
 * bit-identical for every --jobs value; only wall-clock time changes.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/run_executor.hh"
#include "api/simulator.hh"
#include "sim/logging.hh"
#include "sim/options.hh"

namespace uvmsim::bench
{

/** The benchmark list selected by --benchmarks (default: all 7). */
std::vector<std::string> selectedBenchmarks(const Options &opts);

/** Workload parameters honoring --scale / --seed. */
WorkloadParams workloadParams(const Options &opts);

/**
 * Worker-pool size selected by --jobs (0 and the default mean
 * hardware concurrency; --jobs=1 restores serial execution).
 */
std::size_t jobCount(const Options &opts);

/**
 * Event-tracing wiring shared by every harness: when --trace=<spec>
 * was given, apply it (plus --trace-out / --epoch-ticks) to the
 * config.  `label` distinguishes the artifacts of concurrent runs --
 * each traced cell writes <trace-out>-<label>.trace.json and
 * <trace-out>-<label>.epochs.csv.  No-op without --trace.
 */
void applyTraceOptions(SimConfig &config, const Options &opts,
                       const std::string &label);

/** Print the standard header: figure id, description, options. */
void printHeader(const std::string &figure, const std::string &what);

/** Print one aligned row: first column the label, then values. */
void printRow(const std::string &label,
              const std::vector<std::string> &cells);

/** Format helpers. */
std::string fmt(double v, int precision = 3);
std::string fmtInt(double v);

/**
 * Geometric mean.  Returns 0.0 for an empty input; fatal()s on
 * non-positive values (their logarithm is undefined, so any result
 * would be garbage).
 */
double geomean(const std::vector<double> &values);

/**
 * Run one benchmark under a config, echoing a progress line to
 * stderr so long sweeps are watchable.
 */
RunResult run(const std::string &benchmark, const SimConfig &config,
              const WorkloadParams &params);

/**
 * Run a whole batch of jobs on a RunExecutor pool sized by --jobs,
 * echoing one progress line per simulated job.  Results come back in
 * submission order; duplicate sweep points are simulated once.  With
 * --store=DIR, cells are read through / written back to a persistent
 * result store shared with uvmsim_sweep and other harness runs;
 * --cache-bytes=N bounds the in-process result cache.
 */
std::vector<RunResult> runAll(const std::vector<RunJob> &jobs,
                              const Options &opts);

/**
 * Deferred sweep execution for the figure harnesses: add() every cell
 * up front (it returns a handle), run() the whole batch through
 * runAll(), then read result(handle) while formatting rows.
 */
class Batch
{
  public:
    explicit Batch(const Options &opts)
        : opts_(opts)
    {}

    /** Queue one run; the handle resolves after run(). */
    std::size_t
    add(const std::string &benchmark, const SimConfig &config,
        const WorkloadParams &params)
    {
        if (ran_)
            fatal("bench::Batch: add() after run()");
        jobs_.push_back(RunJob{benchmark, config, params});
        return jobs_.size() - 1;
    }

    /** Execute every queued job (parallel, deterministic). */
    void
    run()
    {
        if (ran_)
            fatal("bench::Batch: run() called twice");
        results_ = runAll(jobs_, opts_);
        ran_ = true;
    }

    /** The result for a handle returned by add(). */
    const RunResult &
    result(std::size_t handle) const
    {
        if (!ran_)
            fatal("bench::Batch: result() before run()");
        if (handle >= results_.size())
            fatal("bench::Batch: bad handle %zu", handle);
        return results_[handle];
    }

    std::size_t size() const { return jobs_.size(); }

  private:
    const Options &opts_;
    std::vector<RunJob> jobs_;
    std::vector<RunResult> results_;
    bool ran_ = false;
};

} // namespace uvmsim::bench
