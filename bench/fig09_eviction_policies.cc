/**
 * @file
 * Figure 9: effect of the eviction policy in isolation on kernel
 * execution time.
 *
 * Per the paper: TBNp is active before reaching capacity; upon
 * over-subscription the prefetcher is disabled and 4KB pages migrate
 * on demand, so only the eviction policy differs.  Working set is
 * 110% of device memory.
 *
 * Expected shape: backprop and pathfinder are insensitive (streaming);
 * for the iterative benchmarks Random beats LRU (random victims break
 * the pathological LRU/loop interaction), and kernel time correlates
 * with the number of pages evicted (Figure 10).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 9",
                       "kernel time (ms) per eviction policy; "
                       "prefetcher disabled after capacity; WS=110%");

    const std::vector<EvictionKind> policies = {
        EvictionKind::lru4k, EvictionKind::random4k,
        EvictionKind::sequentialLocal,
        EvictionKind::treeBasedNeighborhood};

    bench::printRow("benchmark",
                    {"LRU4K_ms", "Re_ms", "SLe_ms", "TBNe_ms",
                     "Re_vs_LRU"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (EvictionKind ev : policies) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = ev;
            cfg.oversubscription_percent = 110.0;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        std::vector<double> ms;
        for (std::size_t h : handles[b])
            ms.push_back(batch.result(h).kernelTimeMs());
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(ms[2]), bench::fmt(ms[3]),
                         bench::fmt(ms[0] / ms[1], 2) + "x"});
    }
    std::printf("# paper shape: streaming benchmarks flat; Re beats "
                "LRU for iterative benchmarks\n");
    return 0;
}
