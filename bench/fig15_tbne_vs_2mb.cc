/**
 * @file
 * Figure 15: TBNe against static 2MB large-page LRU eviction (the
 * granularity real NVIDIA GPUs use), with TBNp prefetching, working
 * set 110% of device memory.
 *
 * Expected shape: TBNe's adaptive 64KB..1MB granularity beats static
 * 2MB eviction (paper: 18.5% on average, up to 52%) by avoiding the
 * large-page thrashing of repetitive kernel launches; streaming
 * benchmarks are equal.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 15",
                       "TBNe vs 2MB LRU eviction, TBNp prefetching; "
                       "WS=110%");

    bench::printRow("benchmark",
                    {"LRU2MB_ms", "TBNe_ms", "improvement"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    const EvictionKind kinds[2] = {EvictionKind::lru2mb,
                                   EvictionKind::treeBasedNeighborhood};
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (int i = 0; i < 2; ++i) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.eviction = kinds[i];
            cfg.oversubscription_percent = 110.0;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    std::vector<double> improvements;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        double ms[2];
        for (int i = 0; i < 2; ++i)
            ms[i] = batch.result(handles[b][i]).kernelTimeMs();
        double improvement = (ms[0] - ms[1]) / ms[0] * 100.0;
        improvements.push_back(ms[0] / ms[1]);
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(improvement, 1) + "%"});
    }
    bench::printRow("geomean_x",
                    {"-", "-", bench::fmt(bench::geomean(improvements),
                                          3) + "x"});
    std::printf("# paper: TBNe averages 18.5%% (up to 52%%) better "
                "than 2MB eviction\n");
    return 0;
}
