/**
 * @file
 * Figure 15: TBNe against static 2MB large-page LRU eviction (the
 * granularity real NVIDIA GPUs use), with TBNp prefetching, working
 * set 110% of device memory.
 *
 * Expected shape: TBNe's adaptive 64KB..1MB granularity beats static
 * 2MB eviction (paper: 18.5% on average, up to 52%) by avoiding the
 * large-page thrashing of repetitive kernel launches; streaming
 * benchmarks are equal.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 15",
                       "TBNe vs 2MB LRU eviction, TBNp prefetching; "
                       "WS=110%");

    bench::printRow("benchmark",
                    {"LRU2MB_ms", "TBNe_ms", "improvement"});

    std::vector<double> improvements;
    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        double ms[2];
        EvictionKind kinds[2] = {EvictionKind::lru2mb,
                                 EvictionKind::treeBasedNeighborhood};
        for (int i = 0; i < 2; ++i) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.eviction = kinds[i];
            cfg.oversubscription_percent = 110.0;
            ms[i] = bench::run(name, cfg, params).kernelTimeMs();
        }
        double improvement = (ms[0] - ms[1]) / ms[0] * 100.0;
        improvements.push_back(ms[0] / ms[1]);
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(improvement, 1) + "%"});
    }
    bench::printRow("geomean_x",
                    {"-", "-", bench::fmt(bench::geomean(improvements),
                                          3) + "x"});
    std::printf("# paper: TBNe averages 18.5%% (up to 52%%) better "
                "than 2MB eviction\n");
    return 0;
}
