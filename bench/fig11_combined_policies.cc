/**
 * @file
 * Figure 11: combinations of eviction policy and hardware prefetcher
 * after over-subscription (TBNp active before capacity in all cases;
 * working set 110% of device memory):
 *
 *   (i)   LRU-4KB eviction + no prefetching (the naive baseline)
 *   (ii)  Re + Rp
 *   (iii) SLe + SLp
 *   (iv)  TBNe + TBNp
 *
 * Expected shape: (iii) and (iv) drastically outperform (i) and (ii);
 * TBNe+TBNp is best on average (the paper reports an average 93%
 * improvement over (i)); nw is the exception where SLe+SLp wins
 * because its sparse-localized reuse favours 64KB granularity.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

struct Combo
{
    const char *label;
    EvictionKind eviction;
    PrefetcherKind prefetcher_after;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 11",
                       "kernel time (ms) for eviction+prefetcher "
                       "combinations; WS=110%");

    const std::vector<Combo> combos = {
        {"LRU4K+none", EvictionKind::lru4k, PrefetcherKind::none},
        {"Re+Rp", EvictionKind::random4k, PrefetcherKind::random},
        {"SLe+SLp", EvictionKind::sequentialLocal,
         PrefetcherKind::sequentialLocal},
        {"TBNe+TBNp", EvictionKind::treeBasedNeighborhood,
         PrefetcherKind::treeBasedNeighborhood},
    };

    bench::printRow("benchmark",
                    {"LRU4K+none", "Re+Rp", "SLe+SLp", "TBNe+TBNp",
                     "TBN_speedup"});

    std::vector<double> tbn_speedups;
    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        std::vector<double> ms;
        for (const Combo &combo : combos) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = combo.prefetcher_after;
            cfg.eviction = combo.eviction;
            cfg.oversubscription_percent = 110.0;
            ms.push_back(bench::run(name, cfg, params).kernelTimeMs());
        }
        double speedup = ms[0] / ms[3];
        tbn_speedups.push_back(speedup);
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(ms[2]), bench::fmt(ms[3]),
                         bench::fmt(speedup, 2) + "x"});
    }

    double avg = bench::geomean(tbn_speedups);
    bench::printRow("geomean", {"-", "-", "-", "-",
                                bench::fmt(avg, 2) + "x"});
    std::printf("# paper: TBNe+TBNp averages ~93%% improvement over "
                "LRU4K+none (about 1.9x); SLe+SLp wins on nw\n");
    return 0;
}
