/**
 * @file
 * Figure 11: combinations of eviction policy and hardware prefetcher
 * after over-subscription (TBNp active before capacity in all cases;
 * working set 110% of device memory):
 *
 *   (i)   LRU-4KB eviction + no prefetching (the naive baseline)
 *   (ii)  Re + Rp
 *   (iii) SLe + SLp
 *   (iv)  TBNe + TBNp
 *
 * Expected shape: (iii) and (iv) drastically outperform (i) and (ii);
 * TBNe+TBNp is best on average (the paper reports an average 93%
 * improvement over (i)); nw is the exception where SLe+SLp wins
 * because its sparse-localized reuse favours 64KB granularity.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

struct Combo
{
    const char *label;
    EvictionKind eviction;
    PrefetcherKind prefetcher_after;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 11",
                       "kernel time (ms) for eviction+prefetcher "
                       "combinations; WS=110%");

    const std::vector<Combo> combos = {
        {"LRU4K+none", EvictionKind::lru4k, PrefetcherKind::none},
        {"Re+Rp", EvictionKind::random4k, PrefetcherKind::random},
        {"SLe+SLp", EvictionKind::sequentialLocal,
         PrefetcherKind::sequentialLocal},
        {"TBNe+TBNp", EvictionKind::treeBasedNeighborhood,
         PrefetcherKind::treeBasedNeighborhood},
    };

    bench::printRow("benchmark",
                    {"LRU4K+none", "Re+Rp", "SLe+SLp", "TBNe+TBNp",
                     "TBN_speedup"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (const Combo &combo : combos) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = combo.prefetcher_after;
            cfg.eviction = combo.eviction;
            cfg.oversubscription_percent = 110.0;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    std::vector<double> tbn_speedups;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        std::vector<double> ms;
        for (std::size_t h : handles[b])
            ms.push_back(batch.result(h).kernelTimeMs());
        double speedup = ms[0] / ms[3];
        tbn_speedups.push_back(speedup);
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(ms[2]), bench::fmt(ms[3]),
                         bench::fmt(speedup, 2) + "x"});
    }

    double avg = bench::geomean(tbn_speedups);
    bench::printRow("geomean", {"-", "-", "-", "-",
                                bench::fmt(avg, 2) + "x"});
    std::printf("# paper: TBNe+TBNp averages ~93%% improvement over "
                "LRU4K+none (about 1.9x); SLe+SLp wins on nw\n");
    return 0;
}
