/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * hot data structures -- tree balancing, the hierarchical LRU, the
 * page table, the event queue, and the PCI-e timing model.  These are
 * regression guards for simulator performance, not paper artifacts.
 */

#include <benchmark/benchmark.h>

#include "core/large_page_tree.hh"
#include "core/residency_tracker.hh"
#include "interconnect/bandwidth_model.hh"
#include "mem/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace uvmsim
{

namespace
{

constexpr Addr base = 0x100000000ull;

void
BM_TreeFaultFill(benchmark::State &state)
{
    for (auto _ : state) {
        LargePageTree tree(base, 32);
        for (std::uint32_t leaf = 0; leaf < 32; ++leaf)
            benchmark::DoNotOptimize(
                tree.faultFill(tree.leafFirstPage(leaf)));
    }
}
BENCHMARK(BM_TreeFaultFill);

void
BM_TreeEvictDrain(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        LargePageTree tree(base, 32);
        for (std::uint32_t leaf = 0; leaf < 32; ++leaf)
            tree.faultFill(tree.leafFirstPage(leaf));
        state.ResumeTiming();
        for (std::uint32_t leaf = 0; leaf < 32; ++leaf)
            benchmark::DoNotOptimize(tree.evictDrain(leaf));
    }
}
BENCHMARK(BM_TreeEvictDrain);

void
BM_TreeRandomChurn(benchmark::State &state)
{
    LargePageTree tree(base, 32);
    Rng rng(1);
    for (auto _ : state) {
        PageNum page = pageOf(base) + rng.below(pagesPerLargePage);
        if (tree.pageMarked(page))
            benchmark::DoNotOptimize(tree.evictDrain(tree.leafOf(page)));
        else
            benchmark::DoNotOptimize(tree.faultFill(page));
    }
}
BENCHMARK(BM_TreeRandomChurn);

void
BM_ResidencyTouch(benchmark::State &state)
{
    ResidencyTracker rt;
    const std::uint64_t pages = 4096;
    for (PageNum p = 0; p < pages; ++p)
        rt.onResident(p);
    Rng rng(2);
    for (auto _ : state)
        rt.onAccess(rng.below(pages));
}
BENCHMARK(BM_ResidencyTouch);

void
BM_ResidencyBlockVictim(benchmark::State &state)
{
    ResidencyTracker rt;
    for (PageNum p = 0; p < 8192; ++p)
        rt.onResident(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.lruBlockVictim(
            static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_ResidencyBlockVictim)->Arg(0)->Arg(256)->Arg(1024);

void
BM_PageTableChurn(benchmark::State &state)
{
    PageTable pt;
    Rng rng(3);
    for (auto _ : state) {
        PageNum p = rng.below(1 << 20);
        if (pt.isValid(p))
            pt.invalidatePage(p);
        else
            pt.mapPage(p, p);
    }
}
BENCHMARK(BM_PageTableChurn);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(1000 - i), [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_BandwidthLookup(benchmark::State &state)
{
    PcieBandwidthModel model;
    Rng rng(4);
    for (auto _ : state) {
        std::uint64_t bytes = pageSize * (1 + rng.below(512));
        benchmark::DoNotOptimize(model.transferLatency(bytes));
    }
}
BENCHMARK(BM_BandwidthLookup);

} // namespace

} // namespace uvmsim

BENCHMARK_MAIN();
