/**
 * @file
 * Figure 14: effect of reserving a percentage of the LRU page list
 * from eviction (Sec. 5.3/7.4), with TBNe+TBNp at 110% working set.
 *
 * Expected shape: streaming benchmarks unaffected; 10% reservation
 * helps the iterative benchmarks (the pages about to be evicted are
 * exactly the ones the next iteration touches first); 20% can hurt
 * some benchmarks by squeezing the usable pool too hard.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 14",
                       "kernel time (ms) vs LRU reservation; "
                       "TBNe+TBNp; WS=110%");

    const std::vector<double> reservations = {0.0, 10.0, 20.0};

    bench::printRow("benchmark",
                    {"reserve0_ms", "reserve10_ms", "reserve20_ms",
                     "best"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (double pct : reservations) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.eviction = EvictionKind::treeBasedNeighborhood;
            cfg.oversubscription_percent = 110.0;
            cfg.lru_reserve_percent = pct;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        std::vector<double> ms;
        for (std::size_t h : handles[b])
            ms.push_back(batch.result(h).kernelTimeMs());
        std::size_t best = 0;
        for (std::size_t i = 1; i < ms.size(); ++i) {
            if (ms[i] < ms[best])
                best = i;
        }
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(ms[2]),
                         std::to_string(
                             static_cast<int>(reservations[best])) +
                             "%"});
    }
    std::printf("# paper shape: 10%% helps reuse benchmarks; higher "
                "reservation can backfire\n");
    return 0;
}
