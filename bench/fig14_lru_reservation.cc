/**
 * @file
 * Figure 14: effect of reserving a percentage of the LRU page list
 * from eviction (Sec. 5.3/7.4), with TBNe+TBNp at 110% working set.
 *
 * Expected shape: streaming benchmarks unaffected; 10% reservation
 * helps the iterative benchmarks (the pages about to be evicted are
 * exactly the ones the next iteration touches first); 20% can hurt
 * some benchmarks by squeezing the usable pool too hard.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 14",
                       "kernel time (ms) vs LRU reservation; "
                       "TBNe+TBNp; WS=110%");

    const std::vector<double> reservations = {0.0, 10.0, 20.0};

    bench::printRow("benchmark",
                    {"reserve0_ms", "reserve10_ms", "reserve20_ms",
                     "best"});

    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        std::vector<double> ms;
        for (double pct : reservations) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.eviction = EvictionKind::treeBasedNeighborhood;
            cfg.oversubscription_percent = 110.0;
            cfg.lru_reserve_percent = pct;
            ms.push_back(bench::run(name, cfg, params).kernelTimeMs());
        }
        std::size_t best = 0;
        for (std::size_t i = 1; i < ms.size(); ++i) {
            if (ms[i] < ms[best])
                best = i;
        }
        bench::printRow(name,
                        {bench::fmt(ms[0]), bench::fmt(ms[1]),
                         bench::fmt(ms[2]),
                         std::to_string(
                             static_cast<int>(reservations[best])) +
                             "%"});
    }
    std::printf("# paper shape: 10%% helps reuse benchmarks; higher "
                "reservation can backfire\n");
    return 0;
}
