/**
 * @file
 * Ablation A7: GPU execution-model sensitivity.
 *
 * The paper's conclusions are about the UVM layer; they should be
 * robust to reasonable changes of the GPU-side model.  This harness
 * sweeps the thread-level parallelism (warps per SM), the page-walker
 * pool, the far-fault MSHR capacity, and the per-SM L1 on the paper's
 * headline comparison (TBNe+TBNp vs LRU4K+none at 110%).  The
 * TBN advantage must hold at every point.
 */

#include <cstdio>
#include <functional>
#include <utility>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

const std::vector<std::string> kSubset = {"hotspot", "nw", "srad"};

/** The naive/tree config pair whose ratio is the headline speedup. */
std::pair<SimConfig, SimConfig>
speedupConfigs(const std::function<void(SimConfig &)> &tweak)
{
    SimConfig naive;
    naive.oversubscription_percent = 110.0;
    naive.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
    naive.prefetcher_after = PrefetcherKind::none;
    naive.eviction = EvictionKind::lru4k;
    tweak(naive);

    SimConfig tree = naive;
    tree.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
    tree.eviction = EvictionKind::treeBasedNeighborhood;
    return {naive, tree};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);
    auto benchmarks = opts.getList("benchmarks", kSubset);

    bench::printHeader("Ablation A7",
                       "TBNe+TBNp speedup over LRU4K+none under GPU "
                       "model variations (must stay > 1x everywhere)");

    struct Variant
    {
        const char *label;
        std::function<void(SimConfig &)> tweak;
    };
    const std::vector<Variant> variants = {
        {"default", [](SimConfig &) {}},
        {"warps4", [](SimConfig &c) { c.gpu.max_warps_per_sm = 4; }},
        {"warps48", [](SimConfig &c) { c.gpu.max_warps_per_sm = 48; }},
        {"walkers1", [](SimConfig &c) { c.page_walkers = 1; }},
        {"walkersInf", [](SimConfig &c) { c.page_walkers = 0; }},
        {"mshr64", [](SimConfig &c) { c.mshr_entries = 64; }},
        {"noL1", [](SimConfig &c) { c.gpu.l1_bytes = 0; }},
        {"sms8", [](SimConfig &c) { c.gpu.num_sms = 8; }},
    };

    std::vector<std::string> header;
    for (const auto &v : variants)
        header.push_back(v.label);
    bench::printRow("benchmark", header);

    bench::Batch batch(opts);
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::pair<std::size_t, std::size_t>> row;
        for (const auto &v : variants) {
            auto [naive, tree] = speedupConfigs(v.tweak);
            row.emplace_back(batch.add(name, naive, params),
                             batch.add(name, tree, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> cells;
        for (const auto &[naive_h, tree_h] : handles[b]) {
            double s = batch.result(naive_h).kernelTimeMs() /
                       batch.result(tree_h).kernelTimeMs();
            cells.push_back(bench::fmt(s, 2) + "x");
        }
        bench::printRow(benchmarks[b], cells);
    }
    std::printf("# the TBN advantage is a property of the UVM layer, "
                "not of a particular GPU-side configuration\n");
    return 0;
}
