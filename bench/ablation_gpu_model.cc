/**
 * @file
 * Ablation A7: GPU execution-model sensitivity.
 *
 * The paper's conclusions are about the UVM layer; they should be
 * robust to reasonable changes of the GPU-side model.  This harness
 * sweeps the thread-level parallelism (warps per SM), the page-walker
 * pool, the far-fault MSHR capacity, and the per-SM L1 on the paper's
 * headline comparison (TBNe+TBNp vs LRU4K+none at 110%).  The
 * TBN advantage must hold at every point.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

const std::vector<std::string> kSubset = {"hotspot", "nw", "srad"};

double
speedup(const std::string &name, const WorkloadParams &params,
        std::function<void(SimConfig &)> tweak)
{
    SimConfig naive;
    naive.oversubscription_percent = 110.0;
    naive.prefetcher_before = PrefetcherKind::treeBasedNeighborhood;
    naive.prefetcher_after = PrefetcherKind::none;
    naive.eviction = EvictionKind::lru4k;
    tweak(naive);

    SimConfig tree = naive;
    tree.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
    tree.eviction = EvictionKind::treeBasedNeighborhood;

    double naive_ms = bench::run(name, naive, params).kernelTimeMs();
    double tree_ms = bench::run(name, tree, params).kernelTimeMs();
    return naive_ms / tree_ms;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);
    auto benchmarks = opts.getList("benchmarks", kSubset);

    bench::printHeader("Ablation A7",
                       "TBNe+TBNp speedup over LRU4K+none under GPU "
                       "model variations (must stay > 1x everywhere)");

    struct Variant
    {
        const char *label;
        std::function<void(SimConfig &)> tweak;
    };
    const std::vector<Variant> variants = {
        {"default", [](SimConfig &) {}},
        {"warps4", [](SimConfig &c) { c.gpu.max_warps_per_sm = 4; }},
        {"warps48", [](SimConfig &c) { c.gpu.max_warps_per_sm = 48; }},
        {"walkers1", [](SimConfig &c) { c.page_walkers = 1; }},
        {"walkersInf", [](SimConfig &c) { c.page_walkers = 0; }},
        {"mshr64", [](SimConfig &c) { c.mshr_entries = 64; }},
        {"noL1", [](SimConfig &c) { c.gpu.l1_bytes = 0; }},
        {"sms8", [](SimConfig &c) { c.gpu.num_sms = 8; }},
    };

    std::vector<std::string> header;
    for (const auto &v : variants)
        header.push_back(v.label);
    bench::printRow("benchmark", header);

    for (const std::string &name : benchmarks) {
        std::vector<std::string> cells;
        for (const auto &v : variants) {
            double s = speedup(name, params, v.tweak);
            cells.push_back(bench::fmt(s, 2) + "x");
        }
        bench::printRow(name, cells);
    }
    std::printf("# the TBN advantage is a property of the UVM layer, "
                "not of a particular GPU-side configuration\n");
    return 0;
}
