/**
 * @file
 * Ablations of the modeling/design choices DESIGN.md calls out:
 *
 *  A2 -- PCI-e timing model: interpolated Table 1 vs the affine
 *        alpha + size/B fit.
 *  A3 -- far-fault service latency: the 30us GTC-2017 figure vs the
 *        45us the paper measured on real hardware (Sec. 6.1).
 *  A4 -- whole-unit write-back (Sec. 5.1) vs dirty-page-only.
 *  A5 -- MRU eviction vs LRU reservation as the anti-thrash fix the
 *        paper's Sec. 5.3 compares qualitatively.
 *
 * Each table reports kernel time (ms) on a representative subset.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

const std::vector<std::string> kSubset = {"backprop", "hotspot", "nw",
                                          "srad"};

std::vector<std::string>
subset(const Options &opts)
{
    return opts.getList("benchmarks", kSubset);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Ablations A2-A5",
                       "modeling/design choice sensitivity (kernel ms)");

    // Phase 1: queue every cell of every section into one batch.
    const auto names = subset(opts);
    bench::Batch batch(opts);

    std::vector<std::vector<std::size_t>> a2_handles;
    for (const std::string &name : names) {
        std::vector<std::size_t> row;
        for (PcieModelKind kind :
             {PcieModelKind::interpolated, PcieModelKind::affine}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
            cfg.pcie_model = kind;
            row.push_back(batch.add(name, cfg, params));
        }
        a2_handles.push_back(row);
    }

    std::vector<std::vector<std::size_t>> a3_handles;
    for (const std::string &name : names) {
        std::vector<std::size_t> row;
        for (std::uint64_t us : {30ull, 45ull, 60ull}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
            cfg.fault_latency = microseconds(us);
            row.push_back(batch.add(name, cfg, params));
        }
        a3_handles.push_back(row);
    }

    std::vector<std::vector<std::size_t>> a4_handles;
    for (const std::string &name : names) {
        std::vector<std::size_t> row;
        for (bool whole : {true, false}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
            cfg.eviction = EvictionKind::treeBasedNeighborhood;
            cfg.oversubscription_percent = 110.0;
            cfg.whole_unit_writeback = whole;
            row.push_back(batch.add(name, cfg, params));
        }
        a4_handles.push_back(row);
    }

    struct Variant
    {
        EvictionKind ev;
        double reserve;
    };
    std::vector<std::vector<std::size_t>> a5_handles;
    for (const std::string &name : names) {
        std::vector<std::size_t> row;
        for (const Variant &v :
             {Variant{EvictionKind::lru4k, 0.0},
              Variant{EvictionKind::mru4k, 0.0},
              Variant{EvictionKind::lru4k, 10.0}}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = v.ev;
            cfg.lru_reserve_percent = v.reserve;
            cfg.oversubscription_percent = 110.0;
            row.push_back(batch.add(name, cfg, params));
        }
        a5_handles.push_back(row);
    }

    std::vector<std::vector<std::size_t>> a6_handles;
    for (const std::string &name : names) {
        std::vector<std::size_t> row;
        for (std::uint32_t faults_per_window : {1u, 4u, 16u}) {
            SimConfig cfg;
            cfg.prefetcher_before = PrefetcherKind::none;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.fault_batch_size = faults_per_window;
            row.push_back(batch.add(name, cfg, params));
        }
        a6_handles.push_back(row);
    }

    batch.run();

    // Phase 2: format each section from the resolved results.
    auto printSection = [&](const std::vector<std::vector<std::size_t>>
                                &handles) {
        for (std::size_t b = 0; b < names.size(); ++b) {
            std::vector<std::string> cells;
            for (std::size_t h : handles[b])
                cells.push_back(
                    bench::fmt(batch.result(h).kernelTimeMs()));
            bench::printRow(names[b], cells);
        }
    };

    std::printf("\n## A2: PCI-e timing model (TBNp, fits)\n");
    bench::printRow("benchmark", {"interpolated", "affine"});
    printSection(a2_handles);

    std::printf("\n## A3: far-fault service latency (TBNp, fits)\n");
    bench::printRow("benchmark", {"30us", "45us", "60us"});
    printSection(a3_handles);

    std::printf("\n## A4: write-back policy (TBNe+TBNp, WS=110%%)\n");
    bench::printRow("benchmark", {"whole_unit", "dirty_only"});
    printSection(a4_handles);

    std::printf("\n## A5: anti-thrash fix: MRU vs 10%% LRU reservation "
                "(4KB on-demand after capacity, WS=110%%)\n");
    bench::printRow("benchmark", {"LRU", "MRU", "LRU+reserve10"});
    printSection(a5_handles);

    std::printf("\n## A6: fault services per 45us window "
                "(no prefetching -- the worst case for seriality)\n");
    bench::printRow("benchmark", {"batch1", "batch4", "batch16"});
    printSection(a6_handles);

    std::printf("\n# A2: shapes must be insensitive to the fit choice. "
                "A3: on-demand-dominated runs scale with latency.\n"
                "# A4: whole-unit write-back costs little (duplex "
                "channel). A5: MRU helps loops but is pattern-fragile.\n");
    return 0;
}
