/**
 * @file
 * Ablations of the modeling/design choices DESIGN.md calls out:
 *
 *  A2 -- PCI-e timing model: interpolated Table 1 vs the affine
 *        alpha + size/B fit.
 *  A3 -- far-fault service latency: the 30us GTC-2017 figure vs the
 *        45us the paper measured on real hardware (Sec. 6.1).
 *  A4 -- whole-unit write-back (Sec. 5.1) vs dirty-page-only.
 *  A5 -- MRU eviction vs LRU reservation as the anti-thrash fix the
 *        paper's Sec. 5.3 compares qualitatively.
 *
 * Each table reports kernel time (ms) on a representative subset.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

namespace
{

const std::vector<std::string> kSubset = {"backprop", "hotspot", "nw",
                                          "srad"};

std::vector<std::string>
subset(const Options &opts)
{
    return opts.getList("benchmarks", kSubset);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Ablations A2-A5",
                       "modeling/design choice sensitivity (kernel ms)");

    // ---- A2: PCI-e model kind (TBNp, fits in memory) ----
    std::printf("\n## A2: PCI-e timing model (TBNp, fits)\n");
    bench::printRow("benchmark", {"interpolated", "affine"});
    for (const std::string &name : subset(opts)) {
        std::vector<std::string> cells;
        for (PcieModelKind kind :
             {PcieModelKind::interpolated, PcieModelKind::affine}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
            cfg.pcie_model = kind;
            cells.push_back(bench::fmt(
                bench::run(name, cfg, params).kernelTimeMs()));
        }
        bench::printRow(name, cells);
    }

    // ---- A3: fault service latency ----
    std::printf("\n## A3: far-fault service latency (TBNp, fits)\n");
    bench::printRow("benchmark", {"30us", "45us", "60us"});
    for (const std::string &name : subset(opts)) {
        std::vector<std::string> cells;
        for (std::uint64_t us : {30ull, 45ull, 60ull}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
            cfg.fault_latency = microseconds(us);
            cells.push_back(bench::fmt(
                bench::run(name, cfg, params).kernelTimeMs()));
        }
        bench::printRow(name, cells);
    }

    // ---- A4: whole-unit write-back vs dirty-only (TBNe+TBNp, 110%) ----
    std::printf("\n## A4: write-back policy (TBNe+TBNp, WS=110%%)\n");
    bench::printRow("benchmark", {"whole_unit", "dirty_only"});
    for (const std::string &name : subset(opts)) {
        std::vector<std::string> cells;
        for (bool whole : {true, false}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::treeBasedNeighborhood;
            cfg.eviction = EvictionKind::treeBasedNeighborhood;
            cfg.oversubscription_percent = 110.0;
            cfg.whole_unit_writeback = whole;
            cells.push_back(bench::fmt(
                bench::run(name, cfg, params).kernelTimeMs()));
        }
        bench::printRow(name, cells);
    }

    // ---- A5: MRU vs LRU reservation (prefetch disabled after cap) ----
    std::printf("\n## A5: anti-thrash fix: MRU vs 10%% LRU reservation "
                "(4KB on-demand after capacity, WS=110%%)\n");
    bench::printRow("benchmark", {"LRU", "MRU", "LRU+reserve10"});
    for (const std::string &name : subset(opts)) {
        std::vector<std::string> cells;
        struct Variant
        {
            EvictionKind ev;
            double reserve;
        };
        for (const Variant &v :
             {Variant{EvictionKind::lru4k, 0.0},
              Variant{EvictionKind::mru4k, 0.0},
              Variant{EvictionKind::lru4k, 10.0}}) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = v.ev;
            cfg.lru_reserve_percent = v.reserve;
            cfg.oversubscription_percent = 110.0;
            cells.push_back(bench::fmt(
                bench::run(name, cfg, params).kernelTimeMs()));
        }
        bench::printRow(name, cells);
    }

    // ---- A6: fault-engine batch size (on-demand paging) ----
    std::printf("\n## A6: fault services per 45us window "
                "(no prefetching -- the worst case for seriality)\n");
    bench::printRow("benchmark", {"batch1", "batch4", "batch16"});
    for (const std::string &name : subset(opts)) {
        std::vector<std::string> cells;
        for (std::uint32_t batch : {1u, 4u, 16u}) {
            SimConfig cfg;
            cfg.prefetcher_before = PrefetcherKind::none;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.fault_batch_size = batch;
            cells.push_back(bench::fmt(
                bench::run(name, cfg, params).kernelTimeMs()));
        }
        bench::printRow(name, cells);
    }

    std::printf("\n# A2: shapes must be insensitive to the fit choice. "
                "A3: on-demand-dominated runs scale with latency.\n"
                "# A4: whole-unit write-back costs little (duplex "
                "channel). A5: MRU helps loops but is pattern-fragile.\n");
    return 0;
}
