/**
 * @file
 * Figure 10: total number of 4KB pages evicted by each eviction
 * scheme (companion to Figure 9 -- kernel performance is highly
 * correlated with this count).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 10",
                       "4KB pages evicted per eviction policy; "
                       "prefetcher disabled after capacity; WS=110%");

    const std::vector<EvictionKind> policies = {
        EvictionKind::lru4k, EvictionKind::random4k,
        EvictionKind::sequentialLocal,
        EvictionKind::treeBasedNeighborhood};

    bench::printRow("benchmark", {"LRU4K", "Re", "SLe", "TBNe"});

    const auto benchmarks = bench::selectedBenchmarks(opts);
    bench::Batch batch(opts);
    std::vector<std::vector<std::size_t>> handles;
    for (const std::string &name : benchmarks) {
        std::vector<std::size_t> row;
        for (EvictionKind ev : policies) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = ev;
            cfg.oversubscription_percent = 110.0;
            row.push_back(batch.add(name, cfg, params));
        }
        handles.push_back(row);
    }
    batch.run();

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> cells;
        for (std::size_t h : handles[b])
            cells.push_back(
                bench::fmtInt(batch.result(h).pagesEvicted()));
        bench::printRow(benchmarks[b], cells);
    }
    std::printf("# paper shape: eviction counts track the Figure 9 "
                "kernel times\n");
    return 0;
}
