/**
 * @file
 * Figure 10: total number of 4KB pages evicted by each eviction
 * scheme (companion to Figure 9 -- kernel performance is highly
 * correlated with this count).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace uvmsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    auto params = bench::workloadParams(opts);

    bench::printHeader("Figure 10",
                       "4KB pages evicted per eviction policy; "
                       "prefetcher disabled after capacity; WS=110%");

    const std::vector<EvictionKind> policies = {
        EvictionKind::lru4k, EvictionKind::random4k,
        EvictionKind::sequentialLocal,
        EvictionKind::treeBasedNeighborhood};

    bench::printRow("benchmark", {"LRU4K", "Re", "SLe", "TBNe"});

    for (const std::string &name : bench::selectedBenchmarks(opts)) {
        std::vector<std::string> cells;
        for (EvictionKind ev : policies) {
            SimConfig cfg;
            cfg.prefetcher_before =
                PrefetcherKind::treeBasedNeighborhood;
            cfg.prefetcher_after = PrefetcherKind::none;
            cfg.eviction = ev;
            cfg.oversubscription_percent = 110.0;
            cells.push_back(bench::fmtInt(
                bench::run(name, cfg, params).pagesEvicted()));
        }
        bench::printRow(name, cells);
    }
    std::printf("# paper shape: eviction counts track the Figure 9 "
                "kernel times\n");
    return 0;
}
